"""Arithmetic checks on degraded fleet reports.

A merged shard report is allowed to cover *less* than the whole fleet —
that is the chaos plane's whole point — but what it declares must be
internally consistent: covered hosts are the sum of the shards that came
home, the covered population is exactly those hosts times the guests per
host, the audited weight never exceeds what was covered, and the grade
follows mechanically from coverage and absorbed faults.  The gauntlet
and the shard tests hold every report they produce to these identities.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..fleet.aggregate import FLEET_REPORT_SCHEMA
from ..fleet.shard import (
    FLEET_COVERAGE_SCHEMA,
    GRADE_DEGRADED,
    GRADE_PARTIAL,
    GRADE_TRUSTED,
    REPORT_GRADES,
)

__all__ = ["check_chaos_report"]


def check_chaos_report(report: Mapping[str, Any]) -> List[str]:
    """Verify a merged shard report's coverage arithmetic.

    Returns a list of human-readable problems; empty means the report's
    declared coverage, grade and totals are mutually consistent.
    """
    problems: List[str] = []

    def bad(message: str) -> None:
        problems.append(message)

    if report.get("schema") != FLEET_REPORT_SCHEMA:
        bad(f"report schema is {report.get('schema')!r}, "
            f"expected {FLEET_REPORT_SCHEMA!r}")
        return problems
    coverage = report.get("coverage")
    if not isinstance(coverage, Mapping):
        bad("report carries no coverage section")
        return problems
    if coverage.get("schema") != FLEET_COVERAGE_SCHEMA:
        bad(f"coverage schema is {coverage.get('schema')!r}, "
            f"expected {FLEET_COVERAGE_SCHEMA!r}")

    grade = coverage.get("grade")
    if grade not in REPORT_GRADES:
        bad(f"unknown report grade {grade!r}")

    fleet: Dict[str, Any] = dict(report.get("fleet", {}))
    hosts_total = coverage.get("hosts_total")
    if hosts_total != fleet.get("hosts"):
        bad(f"hosts_total {hosts_total!r} does not match the fleet spec's "
            f"hosts {fleet.get('hosts')!r}")

    shards = coverage.get("shards", [])
    ok_shards = [s for s in shards if s.get("status") == "ok"]
    failed_shards = [s for s in shards if s.get("status") == "failed"]
    if len(ok_shards) + len(failed_shards) != len(shards):
        bad("shard statuses other than ok/failed present")
    if coverage.get("shards_ok") != len(ok_shards):
        bad(f"shards_ok {coverage.get('shards_ok')!r} does not match the "
            f"{len(ok_shards)} ok entries in the shard list")
    if coverage.get("shards_failed") != len(failed_shards):
        bad(f"shards_failed {coverage.get('shards_failed')!r} does not "
            f"match the {len(failed_shards)} failed entries")
    if coverage.get("shards_total") != len(shards):
        bad(f"shards_total {coverage.get('shards_total')!r} does not "
            f"match the {len(shards)} shard entries")

    # The declared spans must partition [0, hosts_total) contiguously.
    spans = sorted((tuple(s.get("hosts", ())) for s in shards))
    expected_lo = 0
    for lo, hi in spans:
        if lo != expected_lo:
            bad(f"shard spans leave a gap/overlap at host {expected_lo} "
                f"(next span starts at {lo})")
            break
        expected_lo = hi
    else:
        if spans and isinstance(hosts_total, int) \
                and expected_lo != hosts_total:
            bad(f"shard spans end at host {expected_lo}, "
                f"not hosts_total {hosts_total}")

    hosts_covered = coverage.get("hosts_covered")
    covered_from_shards = sum(s["hosts"][1] - s["hosts"][0]
                              for s in ok_shards)
    if hosts_covered != covered_from_shards:
        bad(f"hosts_covered {hosts_covered!r} does not equal the "
            f"{covered_from_shards} hosts of the ok shards")

    population = coverage.get("population")
    if population != report.get("population"):
        bad(f"coverage population {population!r} disagrees with the "
            f"report's {report.get('population')!r}")
    population_covered = coverage.get("population_covered")
    guests = fleet.get("guests")
    if isinstance(hosts_covered, int) and isinstance(guests, int) \
            and population_covered != hosts_covered * guests:
        bad(f"population_covered {population_covered!r} is not "
            f"hosts_covered * guests = {hosts_covered * guests}")

    # Top-level population_covered appears exactly when coverage < total
    # (full-coverage reports stay byte-identical to unsharded ones).
    if population_covered == population:
        if "population_covered" in report:
            bad("full-coverage report carries a redundant top-level "
                "population_covered key")
    else:
        if report.get("population_covered") != population_covered:
            bad(f"top-level population_covered "
                f"{report.get('population_covered')!r} disagrees with "
                f"coverage's {population_covered!r}")

    audited = report.get("audited_weight")
    if isinstance(population_covered, int) \
            and audited != population_covered - report.get("failed_weight", 0):
        bad(f"audited_weight {audited!r} is not population_covered - "
            f"failed_weight")

    faults = coverage.get("faults_absorbed")
    faults_from_shards = sum(int(s.get("faults_absorbed", 0))
                             for s in ok_shards)
    if faults != faults_from_shards:
        bad(f"faults_absorbed {faults!r} does not equal the "
            f"{faults_from_shards} absorbed by ok shards")

    # Grade follows mechanically from coverage and absorbed faults.
    if isinstance(hosts_covered, int) and isinstance(hosts_total, int):
        if hosts_covered < hosts_total:
            expected = GRADE_PARTIAL
        elif faults_from_shards > 0:
            expected = GRADE_DEGRADED
        else:
            expected = GRADE_TRUSTED
        if grade != expected:
            bad(f"grade {grade!r} inconsistent with coverage "
                f"({hosts_covered}/{hosts_total} hosts, "
                f"{faults_from_shards} faults absorbed): "
                f"expected {expected}")

    return problems
