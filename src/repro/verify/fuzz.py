"""Randomized differential conformance harness.

The invariant checker (:mod:`repro.verify.invariants`) proves conservation
laws *within* one run.  This module generates seeded random scenarios —
workload × attack × HZ × accounting scheme × scheduler × hardware-fault
plan — and checks the properties that only hold *across* runs:

* **serial/batch conformance** — running a scenario directly through
  :func:`~repro.analysis.experiment.run_experiment` and through
  :class:`~repro.runner.BatchRunner` must produce field-identical results
  (the simulator is deterministic given a spec);
* **cross-scheduler agreement** — the victim's ground-truth user+lib CPU
  time is a property of its op stream, not of the scheduling policy, so it
  must agree exactly across CFS, O(1) and round-robin whenever the attack
  itself is schedule-independent;
* **detection soundness** — scenarios may carry a deliberate accounting
  corruption (``inject``); the checker *must* flag those runs (a clean
  pass on a corrupted run is a false negative and counts as a failure).

Every violation is shrunk to a minimal scenario and saved as a replayable
JSON spec; ``repro fuzz --replay FILE`` re-runs it and verifies the
outcome digest bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.figures import paper_workload_params
from ..config import MachineConfig, SchedulerConfig, default_config
from ..runner.pool import BatchRunner
from ..runner.specs import ExperimentSpec, run_spec
from .invariants import InvariantViolation

#: Attacks whose effect on the victim's own user+lib work is independent of
#: the scheduling policy: they tamper with the platform (shell, libraries)
#: before launch, not with timing.  Only these participate in the
#: cross-scheduler oracle-equality check; timing attacks (scheduling,
#: irq-flood, thrashing, fault-flood) legitimately interleave differently
#: per scheduler and are covered by the in-run invariants instead.
SCHEDULE_INDEPENDENT_ATTACKS = frozenset(
    {"none", "shell", "library-ctor", "library-subst"})

DEFAULT_SCHEDULERS: Tuple[str, ...] = ("cfs", "o1", "rr")

#: Corruption kinds understood by :func:`make_injector`.
INJECT_KINDS: Tuple[str, ...] = ("double-tick", "drop-exit", "oracle-skim")


@dataclass(frozen=True)
class Scenario:
    """One fuzz case: everything needed to rebuild the runs, by value."""

    seed: int
    hz: int = 250
    accounting: str = "tick"
    process_aware: bool = False
    charge_switch_to: str = "prev"
    program: str = "O"
    program_kwargs: Dict[str, Any] = field(default_factory=dict)
    attack: str = "none"
    attack_kwargs: Dict[str, Any] = field(default_factory=dict)
    schedulers: Tuple[str, ...] = DEFAULT_SCHEDULERS
    #: When set, a deliberate accounting corruption is installed and the
    #: expectation inverts: the run must *raise* InvariantViolation.
    inject: Optional[str] = None
    #: When set, a :class:`~repro.faults.FaultPlan` mapping of injected
    #: hardware faults — the run must still satisfy every invariant (the
    #: watchdog's catch-up keeps conservation exact; TSC faults are
    #: read-side only).
    faults: Optional[Dict[str, Any]] = None
    #: SMP dimension: runs on an ``nproc``-CPU machine.  Serial/batch and
    #: cross-scheduler conformance must hold there too.
    nproc: int = 1
    #: Time-plane dimension: a :class:`~repro.timesync.TimeSyncSpec`
    #: mapping attaching a (possibly attacked) sync daemon to the host.
    #: Serial/batch conformance and the timesync-conservation invariant
    #: must hold under it.
    timesync: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["schedulers"] = list(self.schedulers)
        if doc.get("nproc") == 1:
            # Pre-SMP replay specs (and their digests) carry no nproc key;
            # keep the uniprocessor encoding identical.
            doc.pop("nproc")
        if doc.get("timesync") is None:
            # Same rule for the time plane: sync-free replay specs stay
            # byte-identical to pre-timesync ones.
            doc.pop("timesync")
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Scenario":
        doc = dict(doc)
        doc["schedulers"] = tuple(doc.get("schedulers", DEFAULT_SCHEDULERS))
        doc["program_kwargs"] = dict(doc.get("program_kwargs", {}))
        doc["attack_kwargs"] = dict(doc.get("attack_kwargs", {}))
        doc["faults"] = dict(doc["faults"]) if doc.get("faults") else None
        doc["timesync"] = (dict(doc["timesync"])
                           if doc.get("timesync") else None)
        return cls(**doc)

    def config(self, scheduler: str) -> MachineConfig:
        return default_config(
            hz=self.hz,
            accounting=self.accounting,
            process_aware_irq_accounting=self.process_aware,
            charge_switch_to=self.charge_switch_to,
            seed=self.seed,
            nproc=self.nproc,
            scheduler=SchedulerConfig(kind=scheduler))

    def spec(self, scheduler: str) -> ExperimentSpec:
        return ExperimentSpec(
            program=self.program,
            program_kwargs=dict(self.program_kwargs),
            attack=None if self.attack == "none" else self.attack,
            attack_kwargs=dict(self.attack_kwargs),
            cfg=self.config(scheduler),
            check_invariants=True,
            faults=dict(self.faults) if self.faults else None,
            timesync=dict(self.timesync) if self.timesync else None,
            label=f"fuzz-{self.seed}:{scheduler}")


@dataclass
class ScenarioReport:
    """Outcome of :func:`run_scenario`: per-scheduler results + failures."""

    scenario: Scenario
    #: scheduler → ExperimentResult.to_dict() (or an error record).
    runs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def digest(self) -> str:
        """Stable content hash of the whole outcome — replay compares
        digests, so a replay is bit-identical iff every billed nanosecond,
        oracle bucket and failure message matches."""
        doc = {"scenario": self.scenario.to_dict(), "runs": self.runs,
               "failures": self.failures}
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------

def generate_scenario(rng: random.Random,
                      inject_probability: float = 0.0) -> Scenario:
    """Draw one random scenario from ``rng`` (fully determined by it)."""
    hz = rng.choice([100, 250, 1000])
    scale = rng.choice([0.01, 0.02, 0.05])
    inject = None
    if rng.random() < inject_probability:
        inject = rng.choice(INJECT_KINDS)
    # Hardware faults ride along on non-corrupted scenarios: the invariants
    # must hold under them, and serial/batch must still agree bit-exactly.
    faults = None
    if inject is None and rng.random() < 0.25:
        faults = _draw_faults(rng)
    if inject is not None:
        # Detection legs must observe the corruption: a workload shorter
        # than one jiffy never ticks, so a tick-level corruption would be
        # vacuously "missed".  Pin a busyloop spanning ~15 jiffies.
        program, program_kwargs = "busyloop", _busyloop_kwargs(hz)
        attack, attack_kwargs = "none", {}
    else:
        program = rng.choice(["O", "P", "W", "B"])
        program_kwargs = dict(paper_workload_params(scale)[program])
        attack, attack_kwargs = _draw_attack(rng, scale)
    scenario = Scenario(
        seed=rng.randrange(1, 2**31),
        hz=hz,
        accounting=rng.choice(["tick", "tsc", "dual"]),
        process_aware=rng.random() < 0.5,
        charge_switch_to=rng.choice(["prev", "next"]),
        program=program,
        program_kwargs=program_kwargs,
        attack=attack,
        attack_kwargs=attack_kwargs,
        inject=inject,
        faults=faults)
    # SMP dimension, drawn *last* so its addition left every earlier draw
    # — and thus every pre-SMP pinned-seed scenario — unchanged.  Fault
    # plans stay on uniprocessors (their injectors target CPU 0's timer).
    if inject is None and faults is None and rng.random() < 0.25:
        scenario = replace(scenario, nproc=rng.choice([2, 4]))
    # Time-plane dimension, drawn after SMP for the same reason: earlier
    # pinned seeds draw identical scenarios.  Uniprocessor hosts only —
    # the sync plane and an SMP host are each plenty of interleaving.
    if inject is None and faults is None and scenario.nproc == 1 \
            and rng.random() < 0.25:
        scenario = replace(scenario, timesync=_draw_timesync(rng))
    return scenario


def _draw_faults(rng: random.Random) -> Dict[str, Any]:
    """Draw a random hardware-fault plan (as a FaultPlan mapping)."""
    from ..faults import sweep_plan

    plan = sweep_plan(rng.choice([0.05, 0.1, 0.2]),
                      watchdog=rng.random() < 0.5).to_dict()
    if rng.random() < 0.3:
        plan["tick_delay_prob"] = 0.2
        plan["tick_delay_max_ns"] = int(rng.choice([500_000, 2_000_000]))
    if rng.random() < 0.3:
        plan["irq_storm_pps"] = float(rng.choice([2_000, 10_000]))
    return plan


def _draw_timesync(rng: random.Random) -> Dict[str, Any]:
    """Draw a random time-plane spec (as a TimeSyncSpec mapping)."""
    kind = rng.choice(["honest", "delay-asym", "master", "tamper", "loss"])
    attack: Dict[str, Any] = {}
    if kind == "delay-asym":
        attack["delay_asymmetry_ns"] = int(
            rng.choice([1_000_000, 4_000_000, 10_000_000]))
    elif kind == "master":
        attack["master_offset_ns"] = int(
            rng.choice([2_000_000, 5_000_000]))
        if rng.random() < 0.5:
            attack["master_drift_ppb"] = 30_000
    elif kind == "tamper":
        attack["tamper_prob"] = 0.3
        attack["tamper_ns"] = 2_000_000
    elif kind == "loss":
        attack["loss_prob"] = float(rng.choice([0.3, 0.7]))
    doc: Dict[str, Any] = {
        "protocol": rng.choice(["ptp", "ntp"]),
        "drift_ppb": int(rng.choice([0, 20_000, 50_000])),
        "link_jitter_ns": int(rng.choice([0, 100_000])),
        "defense": rng.random() < 0.5,
    }
    if attack:
        doc["attack"] = attack
    return doc


def _busyloop_kwargs(hz: int, jiffies: int = 15) -> Dict[str, Any]:
    """Busyloop kwargs sized to run for about ``jiffies`` timer ticks."""
    cfg = default_config(hz=hz)
    total_cycles = cfg.cpu_freq_hz * jiffies // hz
    return {"total_cycles": int(total_cycles), "chunk": 10_000_000}


def _draw_attack(rng: random.Random, scale: float):
    attack = rng.choice([
        "none", "none",  # keep a healthy share of honest-platform runs
        "shell", "library-ctor", "library-subst",
        "scheduling", "irq-flood", "fault-flood",
    ])
    payload = rng.choice([100_000_000, 300_000_000, 506_000_000])
    kwargs = {
        "none": {},
        "shell": {"payload_cycles": payload},
        "library-ctor": {"payload_cycles": payload},
        "library-subst": {"cycles_per_call": rng.choice([100_000, 300_000])},
        "scheduling": {"nice": rng.choice([-20, -10, 0]),
                       "forks": max(1, int(8_000 * scale))},
        "irq-flood": {"rate_pps": float(rng.choice([5_000, 10_000, 20_000]))},
        "fault-flood": {},
    }[attack]
    return attack, kwargs


# ----------------------------------------------------------------------
# deliberate corruption (detection-soundness leg)
# ----------------------------------------------------------------------

def make_injector(kind: str) -> Callable:
    """A ``machine_hook`` installing corruption ``kind`` on a fresh machine.

    Each corruption is detectable under *every* accounting scheme — the
    mutation tests hold the checker to zero false negatives on these.
    """
    if kind == "double-tick":
        def hook(machine):
            acct = machine.kernel.accounting
            original = acct.on_tick

            def dishonest_on_tick(task, mode, cpu=0):
                original(task, mode, cpu)
                original(task, mode, cpu)

            acct.on_tick = dishonest_on_tick
    elif kind == "drop-exit":
        def hook(machine):
            kernel = machine.kernel
            original = kernel.do_exit

            def dishonest_do_exit(task, *args, **kwargs):
                task.acct_stime_ns += machine.cfg.tick_ns
                return original(task, *args, **kwargs)

            kernel.do_exit = dishonest_do_exit
    elif kind == "oracle-skim":
        def hook(machine):
            kernel = machine.kernel
            original = kernel.consume

            def skimming_consume(task, ns, cycles, user_mode, provenance,
                                 kind_):
                original(task, ns, cycles, user_mode, provenance, kind_)
                for bucket, charged in list(task.oracle_ns.items()):
                    if charged > 0:
                        task.oracle_ns[bucket] = charged - 1
                        break

            kernel.consume = skimming_consume
    else:
        raise ValueError(f"unknown inject kind {kind!r}; "
                         f"have {sorted(INJECT_KINDS)}")
    return hook


# ----------------------------------------------------------------------
# execution + differential checks
# ----------------------------------------------------------------------

def run_scenario(scenario: Scenario,
                 batch_leg: bool = True) -> ScenarioReport:
    """Run ``scenario`` under every scheduler and cross-check the results."""
    if scenario.inject is not None:
        return _run_injected(scenario)

    report = ScenarioReport(scenario)
    results: Dict[str, Any] = {}
    for scheduler in scenario.schedulers:
        spec = scenario.spec(scheduler)
        try:
            result = run_spec(spec)
        except InvariantViolation as exc:
            report.failures.append(
                f"invariant[{scheduler}]: {exc.violation.category}: {exc}")
            report.runs[scheduler] = {"error": str(exc)}
            continue
        except Exception as exc:  # noqa: BLE001 - report, don't crash fuzz
            report.failures.append(f"crash[{scheduler}]: {exc!r}")
            report.runs[scheduler] = {"error": repr(exc)}
            continue
        results[scheduler] = result
        report.runs[scheduler] = result.to_dict()

    if results and batch_leg:
        _check_batch_conformance(scenario, report, next(iter(results)))
    _check_cross_scheduler(scenario, report, results)
    return report


def _run_injected(scenario: Scenario) -> ScenarioReport:
    """Detection-soundness leg: the corrupted run must be flagged."""
    report = ScenarioReport(scenario)
    hook = make_injector(scenario.inject)
    scheduler = scenario.schedulers[0]
    spec = scenario.spec(scheduler)
    try:
        result = run_spec_with_hook(spec, hook)
    except InvariantViolation as exc:
        # Expected: corruption caught.  Record *what* was caught so the
        # replay digest pins the detection, not just the fact of it.
        report.runs[scheduler] = {
            "detected": exc.violation.category,
            "pid": exc.violation.pid,
        }
        return report
    except Exception as exc:  # noqa: BLE001
        report.failures.append(f"crash[{scheduler}]: {exc!r}")
        report.runs[scheduler] = {"error": repr(exc)}
        return report
    report.failures.append(
        f"false-negative[{scheduler}]: corruption {scenario.inject!r} "
        f"was not detected")
    report.runs[scheduler] = result.to_dict()
    return report


def run_spec_with_hook(spec: ExperimentSpec, machine_hook):
    """``run_spec`` with a machine hook (used by the corruption leg)."""
    from ..analysis.experiment import run_experiment

    kwargs: Dict[str, Any] = {}
    if spec.max_ns is not None:
        kwargs["max_ns"] = spec.max_ns
    return run_experiment(
        spec.build_program(),
        attack=spec.build_attack(),
        cfg=spec.cfg,
        run_attacker_to_completion=spec.run_attacker_to_completion,
        check_invariants=spec.check_invariants,
        machine_hook=machine_hook,
        **kwargs)


def _check_batch_conformance(scenario: Scenario, report: ScenarioReport,
                             scheduler: str) -> None:
    """Serial vs BatchRunner path must be field-identical."""
    spec = scenario.spec(scheduler)
    outcomes = BatchRunner(jobs=1).run([spec])
    outcome = outcomes[0]
    if not outcome.ok:
        report.failures.append(
            f"batch[{scheduler}]: runner failed: {outcome.failure}")
        return
    direct = report.runs[scheduler]
    batch = outcome.result.to_dict()
    if direct != batch:
        diffs = _dict_diff(direct, batch)
        report.failures.append(
            f"batch[{scheduler}]: serial and BatchRunner results diverge: "
            f"{diffs}")


def _check_cross_scheduler(scenario: Scenario, report: ScenarioReport,
                           results: Dict[str, Any]) -> None:
    """Ground-truth user+lib time is scheduler-invariant for platform
    (non-timing) attacks — up to integer rounding at slice boundaries.

    When the engine splits an op at a preemption or tick boundary, each
    cycles→ns conversion rounds once, so totals may drift by ~1 ns per
    boundary; where the boundaries fall *does* depend on the scheduler.
    The tolerance is therefore one ns per observed tick/context switch.
    """
    if scenario.attack not in SCHEDULE_INDEPENDENT_ATTACKS:
        return
    if scenario.faults:
        # Fault timing (IRQ storms, delayed ticks) interleaves with the
        # victim differently per scheduler; in-run invariants still apply.
        return
    if scenario.timesync:
        # Sync rounds are events interleaved with the victim's schedule;
        # the timesync-conservation invariant covers these runs instead.
        return
    if len(results) < 2:
        return
    own: Dict[str, int] = {}
    tolerance_ns = 64
    for scheduler, result in results.items():
        oracle = result.oracle_seconds
        own[scheduler] = round(
            (oracle.get("user", 0.0) + oracle.get("lib", 0.0)) * 1e9)
        stats = result.stats
        tolerance_ns = max(
            tolerance_ns,
            64 + stats.get("ticks", 0)
            + stats.get("context_switches_total", 0)
            # Each cross-CPU migration is one more op-splitting boundary.
            + stats.get("migrations_total", 0))
    reference_sched = next(iter(own))
    reference = own[reference_sched]
    for scheduler, value in own.items():
        if abs(value - reference) > tolerance_ns:
            report.failures.append(
                f"cross-scheduler: oracle user+lib differs — "
                f"{reference_sched}={reference}ns vs {scheduler}={value}ns "
                f"(|diff| {abs(value - reference)}ns > {tolerance_ns}ns; "
                f"attack {scenario.attack!r} is schedule-independent)")


def _dict_diff(a: Dict[str, Any], b: Dict[str, Any], prefix: str = "") -> str:
    diffs = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        path = f"{prefix}{key}"
        if isinstance(va, dict) and isinstance(vb, dict):
            diffs.append(_dict_diff(va, vb, prefix=path + "."))
        else:
            diffs.append(f"{path}: {va!r} != {vb!r}")
    return "; ".join(d for d in diffs if d)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def shrink_scenario(scenario: Scenario,
                    still_fails: Optional[Callable[[Scenario], bool]] = None,
                    max_steps: int = 12) -> Scenario:
    """Greedy shrink: try simplifications in order, keep any that still
    reproduce a failure.  Each probe is a full re-run, so the step count
    is bounded."""
    if still_fails is None:
        still_fails = lambda s: not run_scenario(s, batch_leg=False).ok

    def candidates(current: Scenario):
        if current.faults:
            # Most failures under faults are fault-handling bugs, but try
            # the fault-free version first: if it still fails, the plan
            # was incidental.
            yield replace(current, faults=None)
        if current.timesync:
            # Same logic for the time plane.
            yield replace(current, timesync=None)
        if current.attack != "none" and current.inject is not None:
            # Injected corruption fails regardless of the attack.
            yield replace(current, attack="none", attack_kwargs={})
        if len(current.schedulers) > 1:
            for scheduler in current.schedulers:
                yield replace(current, schedulers=(scheduler,))
        if current.program != "O":
            yield replace(
                current, program="O",
                program_kwargs=dict(paper_workload_params(0.01)["O"]))
        smaller = _smaller_kwargs(current.program_kwargs)
        if smaller is not None:
            yield replace(current, program_kwargs=smaller)
        if current.hz != 100:
            yield replace(current, hz=100)
        if current.process_aware:
            yield replace(current, process_aware=False)

    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in candidates(scenario):
            steps += 1
            if steps > max_steps:
                break
            if still_fails(candidate):
                scenario = candidate
                improved = True
                break
    return scenario


def _smaller_kwargs(kwargs: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    smaller = {}
    shrunk = False
    for key, value in kwargs.items():
        if isinstance(value, int) and not isinstance(value, bool) \
                and value > 8:
            smaller[key] = value // 2
            shrunk = True
        else:
            smaller[key] = value
    return smaller if shrunk else None


# ----------------------------------------------------------------------
# failure persistence + replay
# ----------------------------------------------------------------------

def failure_spec(report: ScenarioReport) -> Dict[str, Any]:
    """The replayable JSON document for one failing scenario."""
    return {
        "format": "repro-fuzz-failure/1",
        "scenario": report.scenario.to_dict(),
        "failures": list(report.failures),
        "digest": report.digest(),
    }


def save_failure(report: ScenarioReport, path) -> None:
    import os

    directory = os.path.dirname(str(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(failure_spec(report), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_failure(path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != "repro-fuzz-failure/1":
        raise ValueError(f"{path}: not a repro fuzz failure spec")
    return doc


def replay_failure(path) -> Tuple[ScenarioReport, bool]:
    """Re-run a saved failure spec.  Returns (report, digest_matches):
    the run is bit-identical to the recorded one iff the digests agree."""
    doc = load_failure(path)
    scenario = Scenario.from_dict(doc["scenario"])
    report = run_scenario(scenario)
    return report, report.digest() == doc["digest"]


# ----------------------------------------------------------------------
# the fuzz loop
# ----------------------------------------------------------------------

@dataclass
class FuzzSummary:
    iterations: int = 0
    failures: List[ScenarioReport] = field(default_factory=list)
    saved: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(iterations: int = 50,
             seed: int = 2010,
             schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
             out_dir: Optional[str] = None,
             inject_probability: float = 0.15,
             shrink: bool = True,
             progress: Optional[Callable[[str], None]] = None) -> FuzzSummary:
    """Generate and check ``iterations`` scenarios from master ``seed``.

    Failures are shrunk and (when ``out_dir`` is given) saved as replay
    specs named ``fuzz-<iteration>-<scenario seed>.json``.
    """
    emit = progress or (lambda message: None)
    rng = random.Random(seed)
    summary = FuzzSummary()
    for iteration in range(iterations):
        scenario = generate_scenario(
            rng, inject_probability=inject_probability)
        scenario = replace(scenario, schedulers=tuple(schedulers))
        report = run_scenario(scenario)
        summary.iterations += 1
        if report.ok:
            kind = (f"inject:{scenario.inject}" if scenario.inject
                    else f"{scenario.program}:{scenario.attack}")
            if scenario.faults:
                kind += "+faults"
            if scenario.timesync:
                kind += "+timesync"
            emit(f"[{iteration + 1}/{iterations}] ok   {kind} "
                 f"acct={scenario.accounting} hz={scenario.hz}")
            continue
        emit(f"[{iteration + 1}/{iterations}] FAIL {report.failures[0]}")
        if shrink:
            shrunk = shrink_scenario(scenario)
            if shrunk != scenario:
                report = run_scenario(shrunk, batch_leg=False)
                if report.ok:  # shrink overshot; keep the original
                    report = run_scenario(scenario)
        summary.failures.append(report)
        if out_dir is not None:
            import os

            path = os.path.join(
                out_dir,
                f"fuzz-{iteration + 1}-{report.scenario.seed}.json")
            save_failure(report, path)
            summary.saved.append(path)
            emit(f"    saved replay spec: {path}")
    return summary
