"""Verification subsystem: runtime invariants + differential fuzzing.

Two layers of machine-checked trust in the simulator itself:

* :mod:`repro.verify.invariants` — an :class:`InvariantChecker` wired into
  the kernel's charge/tick/exit/clock paths, holding every run to
  conservation laws (each jiffy charged exactly once, attributed time sums
  to elapsed time, oracle and billing views reconcile at exit, ...);
* :mod:`repro.verify.fuzz` — a seeded scenario fuzzer and differential
  harness cross-checking serial vs batch execution, scheduler-invariant
  ground truth, and the checker's own detection soundness;
* :mod:`repro.verify.chaos` — arithmetic checks on degraded fleet
  reports (declared coverage, grade and totals must reconcile).
"""

from .chaos import check_chaos_report
from .invariants import (
    InvariantChecker,
    InvariantViolation,
    Violation,
    VirtInvariantChecker,
    default_invariants,
    set_default_invariants,
)
from .fuzz import (
    INJECT_KINDS,
    SCHEDULE_INDEPENDENT_ATTACKS,
    FuzzSummary,
    Scenario,
    ScenarioReport,
    generate_scenario,
    load_failure,
    make_injector,
    replay_failure,
    run_fuzz,
    run_scenario,
    save_failure,
    shrink_scenario,
)

__all__ = [
    "check_chaos_report",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "VirtInvariantChecker",
    "default_invariants",
    "set_default_invariants",
    "INJECT_KINDS",
    "SCHEDULE_INDEPENDENT_ATTACKS",
    "FuzzSummary",
    "Scenario",
    "ScenarioReport",
    "generate_scenario",
    "load_failure",
    "make_injector",
    "replay_failure",
    "run_fuzz",
    "run_scenario",
    "save_failure",
    "shrink_scenario",
]
