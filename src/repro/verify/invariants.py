"""Runtime invariant checking: machine-checked accounting identities.

The simulator's whole reason to exist is trustworthy attribution of CPU
time, so the simulator itself must be held to conservation laws, not spot
figures.  The :class:`InvariantChecker` keeps an independent *shadow
ledger* fed by kernel hooks (every charge, every tick, every exit, every
clock advance) and continuously cross-checks it against the kernel's own
books:

* **time-conservation** — every advanced nanosecond is attributed to
  exactly one account (a task, idle interrupt time, or the idle loop);
  per-task attribution equals the oracle's provenance ledger; the engine
  never consumes more than the clock moved.
* **tick-conservation** — each jiffy is charged to exactly one account:
  ``timekeeper.jiffies`` equals the observed tick count, per-task
  ``acct_ticks`` equals the ticks the checker saw land on that task, and
  idle ticks balance.
* **billing-conservation** — scheme-specific closed-form identities: under
  tick sampling, billed time is exactly (per-mode ticks x jiffy length)
  minus process-aware diversions; under TSC charging, billed time equals
  the shadow ledger nanosecond for nanosecond (ditto the audit side of the
  dual scheme).
* **oracle-reconciliation** — at exit (and on every full sweep) a task's
  oracle total equals the time actually charged to it.
* **runqueue** — READY tasks sit in the scheduler queue exactly once,
  WAITING tasks on exactly one wait channel, the current task and the
  dead in neither; ``nr_runnable`` agrees with queue contents.
* **clock-monotonic** — simulated time and jiffies never move backwards.

On SMP machines (``cfg.nproc > 1``) the conservation laws generalise
per CPU: every nanosecond of a CPU's capacity is claimed by exactly one
account *on that CPU* (task charge, idle-IRQ, or idle loop), per-CPU
tick counters close against the per-CPU ticks the checker observed, and
the runqueue discipline holds across all per-CPU queues plus the
in-flight migration list (a migrating task is queued exactly once —
there).  The machine's SMP loop notifies the checker of its silent
slice rewinds via :meth:`on_cpu_slice`; the wall-vs-capacity identity
is then per-CPU (total clock advance equals the *sum* of per-CPU
capacity, not the wall window).

Checks are two-tier: O(1) hooks run on every event, and a full O(tasks)
sweep runs every ``full_check_every_ticks`` jiffies, at every task exit
(that task only) and at :meth:`check_full`.  Violations either raise
:class:`InvariantViolation` (default) or are collected for inspection
(``mode="collect"``), and are always emitted to the trace log under the
:data:`~repro.sim.tracing.INVARIANT_CATEGORY` category.

Enable via ``Machine(cfg, invariants=True)``, per-experiment via
``run_experiment(..., check_invariants=True)``, process-wide via
:func:`set_default_invariants` (the CLI's ``--check-invariants``), or on
sweep points via ``ExperimentSpec(check_invariants=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import SimulationError
from ..sim.tracing import INVARIANT_CATEGORY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernel.accounting import ChargeKind
    from ..kernel.kernel import Kernel
    from ..kernel.process import Task
    from ..virt.hypervisor import Hypervisor, VirtualMachine

#: Process-wide default consulted by ``run_experiment`` when its
#: ``check_invariants`` argument is left as None (the CLI flag sets this).
_DEFAULT_INVARIANTS = False


def set_default_invariants(enabled: bool) -> None:
    """Turn invariant checking on/off for runs that don't specify it."""
    global _DEFAULT_INVARIANTS
    _DEFAULT_INVARIANTS = bool(enabled)


def default_invariants() -> bool:
    return _DEFAULT_INVARIANTS


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach."""

    category: str
    message: str
    pid: Optional[int]
    tick: int
    time_ns: int

    def __str__(self) -> str:
        where = f" pid={self.pid}" if self.pid is not None else ""
        return (f"[{self.category}] tick={self.tick} t={self.time_ns}ns"
                f"{where}: {self.message}")


class InvariantViolation(SimulationError):
    """Raised (in ``raise`` mode) when a conservation law is broken."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation

    @property
    def category(self) -> str:
        return self.violation.category

    @property
    def pid(self) -> Optional[int]:
        return self.violation.pid

    @property
    def tick(self) -> int:
        return self.violation.tick


class _TaskShadow:
    """The checker's independent per-task ledger."""

    __slots__ = ("attributed_ns", "ticks_user", "ticks_kernel",
                 "billable_user_ns", "billable_kernel_ns")

    def __init__(self) -> None:
        self.attributed_ns = 0
        self.ticks_user = 0
        self.ticks_kernel = 0
        #: ns the active scheme should bill (diverted IRQ time excluded).
        self.billable_user_ns = 0
        self.billable_kernel_ns = 0

    @property
    def ticks(self) -> int:
        return self.ticks_user + self.ticks_kernel


class InvariantChecker:
    """Shadow-ledger invariant checker wired into a running machine."""

    def __init__(self, mode: str = "raise",
                 full_check_every_ticks: int = 16,
                 max_recorded: int = 200,
                 tolerated: Iterable[str] = ()) -> None:
        if mode not in ("raise", "collect"):
            raise SimulationError(f"unknown invariant mode {mode!r}")
        self.mode = mode
        self.full_check_every_ticks = max(1, int(full_check_every_ticks))
        self.max_recorded = max_recorded
        self.violations: List[Violation] = []
        #: Violation categories declared by an active fault plan: faults in
        #: these categories are *expected*, so they are recorded separately
        #: instead of raising — graceful degradation, not failure.
        self.tolerated: Set[str] = set(tolerated)
        self.tolerated_violations: List[Violation] = []
        #: (category, pid) pairs already recorded (collect-mode dedup).
        self._seen: Set[Tuple[str, Optional[int]]] = set()
        self.suppressed = 0

        self.kernel: Optional["Kernel"] = None
        self._tick_ns = 0
        self._attach_now = 0
        self._attach_jiffies = 0

        # Shadow ledger.
        self._tasks: Dict[int, _TaskShadow] = {}
        self._clock_total = 0
        #: ns advanced but not yet attributed by a charge/idle hook.
        self._pending_ns = 0
        self._attributed_total = 0
        self._idle_irq_ns = 0
        self._idle_ns = 0
        self._system_ns = 0
        self._ticks_total = 0
        self._idle_ticks = 0
        self._last_now = 0
        self._last_jiffies = 0
        self.full_checks = 0

        # Per-CPU shadow ledgers (SMP only; empty on nproc == 1).
        self._smp = False
        self._nproc = 1
        self._cpu_cap: List[int] = []
        self._cpu_attr: List[int] = []
        self._cpu_idle_irq: List[int] = []
        self._cpu_idle: List[int] = []
        self._ticks_cpu: List[int] = []
        self._attach_ticks_total = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._tick_ns = kernel.cfg.tick_ns
        self._attach_now = kernel.clock.now
        self._attach_jiffies = kernel.timekeeper.jiffies
        self._last_now = kernel.clock.now
        self._last_jiffies = kernel.timekeeper.jiffies
        self._nproc = getattr(kernel, "nproc", 1)
        self._smp = self._nproc > 1
        if self._smp:
            self._cpu_cap = [0] * self._nproc
            self._cpu_attr = [0] * self._nproc
            self._cpu_idle_irq = [0] * self._nproc
            self._cpu_idle = [0] * self._nproc
            self._ticks_cpu = [0] * self._nproc
            self._attach_ticks_total = kernel.timekeeper.ticks_total
        kernel.invariants = self
        kernel.clock.on_advance = self.on_clock_advance

    def _shadow(self, pid: int) -> _TaskShadow:
        shadow = self._tasks.get(pid)
        if shadow is None:
            shadow = self._tasks[pid] = _TaskShadow()
        return shadow

    def tolerate(self, *categories: str) -> None:
        """Declare ``categories`` as expected under the active fault plan."""
        self.tolerated.update(categories)

    def _report(self, category: str, message: str,
                pid: Optional[int] = None) -> None:
        kernel = self.kernel
        tick = kernel.timekeeper.jiffies if kernel is not None else 0
        now = kernel.clock.now if kernel is not None else 0
        violation = Violation(category=category, message=message, pid=pid,
                              tick=tick, time_ns=now)
        if kernel is not None:
            kernel.trace(INVARIANT_CATEGORY, f"{category}: {message}", pid)
        if category in self.tolerated:
            if len(self.tolerated_violations) < self.max_recorded:
                self.tolerated_violations.append(violation)
            return
        if self.mode == "raise":
            raise InvariantViolation(violation)
        key = (category, pid)
        if key in self._seen or len(self.violations) >= self.max_recorded:
            self.suppressed += 1
            return
        self._seen.add(key)
        self.violations.append(violation)

    # ------------------------------------------------------------------
    # hooks (called by clock/kernel/engine/machine)
    # ------------------------------------------------------------------

    def on_cpu_slice(self, cpu: int, now: int) -> None:
        """The SMP loop silently moved the clock to ``now`` (slice rewind
        or barrier) and made ``cpu`` the active CPU.  The jump is not a
        clock advance — no capacity passes — but the monotonicity cursor
        must follow it or the rewind would read as time going backwards."""
        self._last_now = now

    def on_clock_advance(self, delta_ns: int) -> None:
        if delta_ns < 0:
            self._report("clock-monotonic",
                         f"clock advanced by negative delta {delta_ns}")
            return
        self._clock_total += delta_ns
        self._pending_ns += delta_ns
        if self._smp:
            self._cpu_cap[self.kernel.cpu_index] += delta_ns

    def on_charge(self, task: Optional["Task"], ns: int, user_mode: bool,
                  kind: "ChargeKind") -> None:
        """Every charged slice: consume, IRQ handlers, switch cost."""
        self._pending_ns -= ns
        if self._pending_ns < 0:
            self._report(
                "time-conservation",
                f"charged {ns}ns exceeding clock advance (pending "
                f"{self._pending_ns + ns}ns)",
                task.pid if task is not None else None)
            self._pending_ns = 0
        if self._smp:
            cpu = self.kernel.cpu_index
            if task is None:
                self._cpu_idle_irq[cpu] += ns
            else:
                self._cpu_attr[cpu] += ns
        if task is None:
            self._idle_irq_ns += ns
            # Idle-period IRQ time is still diverted to the scheme's
            # system account under process-aware accounting; keep the
            # diversion shadow in step so the TSC-style system_ns check
            # stays exact.
            if (kind.value == "irq"
                    and self.kernel.accounting.process_aware_irq):
                self._system_ns += ns
            return
        shadow = self._shadow(task.pid)
        shadow.attributed_ns += ns
        self._attributed_total += ns
        kernel = self.kernel
        if (kind.value == "irq"
                and kernel.accounting.process_aware_irq):
            self._system_ns += ns
            return
        if user_mode:
            shadow.billable_user_ns += ns
        else:
            shadow.billable_kernel_ns += ns

    def on_idle_advance(self, delta_ns: int) -> None:
        """The machine advanced the clock with no task to charge."""
        self._pending_ns -= delta_ns
        if self._pending_ns < 0:
            self._report("time-conservation",
                         f"idle advance of {delta_ns}ns exceeds clock delta")
            self._pending_ns = 0
        self._idle_ns += delta_ns
        if self._smp:
            self._cpu_idle[self.kernel.cpu_index] += delta_ns

    def on_tick(self, task: Optional["Task"], user_mode: bool) -> None:
        """After the accounting scheme sampled this jiffy."""
        self._ticks_total += 1
        if self._smp:
            self._ticks_cpu[self.kernel.cpu_index] += 1
        if task is None:
            self._idle_ticks += 1
        else:
            shadow = self._shadow(task.pid)
            if user_mode:
                shadow.ticks_user += 1
            else:
                shadow.ticks_kernel += 1
        if self._ticks_total % self.full_check_every_ticks == 0:
            self.check_full()

    def on_exit(self, task: "Task") -> None:
        """Exit reconciliation: the dying task's books must balance now."""
        self._check_task(task)

    def on_engine_stop(self, task: "Task", consumed_ns: int,
                       clock_delta_ns: int, budget_ns: int) -> None:
        if consumed_ns != clock_delta_ns:
            self._report(
                "time-conservation",
                f"engine consumed {consumed_ns}ns but the clock moved "
                f"{clock_delta_ns}ns", task.pid)
        if consumed_ns > budget_ns:
            self._report(
                "engine-budget",
                f"engine consumed {consumed_ns}ns of a {budget_ns}ns budget",
                task.pid)

    def on_step(self) -> None:
        """Cheap per-iteration check from the machine loop."""
        if self._pending_ns != 0:
            self._report(
                "time-conservation",
                f"{self._pending_ns}ns advanced without attribution")
        kernel = self.kernel
        if kernel.clock.now < self._last_now:
            self._report("clock-monotonic",
                         f"clock moved backwards to {kernel.clock.now}ns")
        self._last_now = kernel.clock.now

    # ------------------------------------------------------------------
    # full sweep
    # ------------------------------------------------------------------

    def check_full(self) -> None:
        """Run every global and per-task identity check."""
        kernel = self.kernel
        if kernel is None:
            return
        self.full_checks += 1
        self._check_time_conservation()
        self._check_tick_conservation()
        self._check_billing_global()
        for task in kernel.tasks.values():
            self._check_task(task)
        self._check_runqueue()

    def _check_time_conservation(self) -> None:
        kernel = self.kernel
        if self._pending_ns != 0:
            self._report(
                "time-conservation",
                f"{self._pending_ns}ns advanced without attribution")
        if not self._smp:
            # On SMP the wall clock and the capacity total diverge by
            # design: N CPUs each account the same wall window, so
            # _clock_total is the *sum* of per-CPU capacity (checked per
            # CPU below) while clock.now only tracks the wall.
            observed = kernel.clock.now - self._attach_now
            if observed != self._clock_total:
                self._report(
                    "clock-monotonic",
                    f"clock moved {observed}ns but only {self._clock_total}"
                    f"ns passed through advance()")
        if kernel.idle_irq_ns != self._idle_irq_ns:
            self._report(
                "time-conservation",
                f"kernel idle IRQ time {kernel.idle_irq_ns}ns != shadow "
                f"{self._idle_irq_ns}ns")
        accounted = (self._attributed_total + self._idle_irq_ns
                     + self._idle_ns + self._pending_ns)
        if accounted != self._clock_total:
            self._report(
                "time-conservation",
                f"{self._clock_total}ns elapsed but {accounted}ns accounted")
        if self._smp and self._pending_ns == 0:
            # Per-CPU conservation: every nanosecond of a CPU's capacity
            # is claimed by exactly one account *on that CPU*.
            for c in range(self._nproc):
                cpu_accounted = (self._cpu_attr[c] + self._cpu_idle_irq[c]
                                 + self._cpu_idle[c])
                if cpu_accounted != self._cpu_cap[c]:
                    self._report(
                        "time-conservation",
                        f"cpu{c}: {self._cpu_cap[c]}ns of capacity but "
                        f"{cpu_accounted}ns accounted")

    def _check_tick_conservation(self) -> None:
        kernel = self.kernel
        tk = kernel.timekeeper
        jiffies = tk.jiffies - self._attach_jiffies
        if jiffies < self._last_jiffies - self._attach_jiffies:
            self._report("clock-monotonic", "jiffies moved backwards")
        self._last_jiffies = tk.jiffies
        if self._smp:
            # Jiffies advance on the timekeeping CPU only; the checker's
            # global tick count closes against ticks_total instead.
            ticks = tk.ticks_total - self._attach_ticks_total
            if ticks != self._ticks_total:
                self._report(
                    "tick-conservation",
                    f"timekeeper counted {ticks} ticks, checker saw "
                    f"{self._ticks_total}")
            if jiffies != self._ticks_cpu[0]:
                self._report(
                    "tick-conservation",
                    f"jiffies advanced {jiffies} but cpu0 fired "
                    f"{self._ticks_cpu[0]} ticks")
            for c in range(self._nproc):
                per_mode = (tk.cpu_ticks_user[c] + tk.cpu_ticks_kernel[c]
                            + tk.cpu_ticks_idle[c])
                if per_mode != self._ticks_cpu[c]:
                    self._report(
                        "tick-conservation",
                        f"cpu{c} per-mode ticks sum to {per_mode}, checker "
                        f"saw {self._ticks_cpu[c]}")
        elif jiffies != self._ticks_total:
            self._report(
                "tick-conservation",
                f"timekeeper counted {jiffies} jiffies, checker saw "
                f"{self._ticks_total} ticks")
        if kernel.accounting.idle_ticks != self._idle_ticks:
            self._report(
                "tick-conservation",
                f"scheme idle_ticks {kernel.accounting.idle_ticks} != "
                f"shadow {self._idle_ticks}")
        reference = tk.ticks_total if self._smp else tk.jiffies
        if tk.ticks_user + tk.ticks_kernel + tk.ticks_idle != reference:
            self._report(
                "tick-conservation",
                "per-mode tick counters do not sum to jiffies")

    def _check_billing_global(self) -> None:
        kernel = self.kernel
        busy_ticks = self._ticks_total - self._idle_ticks
        gap = kernel.accounting.billing_gap_ns(
            kernel.tasks.values(), busy_ticks)
        if gap is not None and gap != 0:
            self._report(
                "billing-conservation",
                f"billed time off by {gap}ns against "
                f"{busy_ticks} busy ticks")
        scheme = kernel.accounting
        if scheme.process_aware_irq and not scheme.tick_sampled_system:
            # TSC-style diversion: the system account must equal exactly
            # the IRQ nanoseconds the checker watched being diverted.
            if scheme.system_ns != self._system_ns:
                self._report(
                    "billing-conservation",
                    f"system account {scheme.system_ns}ns != diverted IRQ "
                    f"shadow {self._system_ns}ns")

    def _check_task(self, task: "Task") -> None:
        kernel = self.kernel
        shadow = self._tasks.get(task.pid)
        if shadow is None:
            shadow = _TaskShadow()
        oracle_total = sum(task.oracle_ns.values())
        if oracle_total != shadow.attributed_ns:
            self._report(
                "oracle-reconciliation",
                f"oracle recorded {oracle_total}ns but {shadow.attributed_ns}"
                f"ns were charged", task.pid)
        if task.acct_ticks != shadow.ticks:
            self._report(
                "tick-conservation",
                f"task sampled {task.acct_ticks} ticks, checker saw "
                f"{shadow.ticks}", task.pid)
        scheme = kernel.accounting
        usage = scheme.usage(task)
        if scheme.tick_sampled:
            if not scheme.process_aware_irq:
                expect_u = shadow.ticks_user * self._tick_ns
                expect_k = shadow.ticks_kernel * self._tick_ns
                if (usage.utime_ns, usage.stime_ns) != (expect_u, expect_k):
                    self._report(
                        "billing-conservation",
                        f"billed {usage.utime_ns}u+{usage.stime_ns}s ns, "
                        f"tick identity expects {expect_u}u+{expect_k}s ns",
                        task.pid)
            elif usage.total_ns > shadow.ticks * self._tick_ns:
                self._report(
                    "billing-conservation",
                    f"billed {usage.total_ns}ns exceeds {shadow.ticks} "
                    f"sampled jiffies", task.pid)
        audit = scheme.audit_view(task)
        if audit is not None:
            if (audit.utime_ns != shadow.billable_user_ns
                    or audit.stime_ns != shadow.billable_kernel_ns):
                self._report(
                    "billing-conservation",
                    f"precise view {audit.utime_ns}u+{audit.stime_ns}s ns "
                    f"!= shadow {shadow.billable_user_ns}u+"
                    f"{shadow.billable_kernel_ns}s ns", task.pid)

    def _check_runqueue(self) -> None:
        from ..kernel.process import TaskState

        kernel = self.kernel
        if self._smp:
            queued: List[int] = []
            currents = []
            for ctx, cpu_current in kernel.per_cpu_state():
                pids = ctx.scheduler.queued_pids()
                if pids is None:
                    return
                if ctx.scheduler.nr_runnable != len(pids):
                    self._report(
                        "runqueue",
                        f"cpu{ctx.index} nr_runnable "
                        f"{ctx.scheduler.nr_runnable} != {len(pids)} "
                        f"queued tasks")
                queued.extend(pids)
                if cpu_current is not None:
                    currents.append(cpu_current)
            # An in-flight migration holds its task out of every runqueue
            # until the slice barrier; it still counts as queued exactly
            # once — there.
            queued.extend(
                task.pid for task, _src in kernel._pending_migrations)
        else:
            queued = kernel.scheduler.queued_pids()
            if queued is None:
                return
            if kernel.scheduler.nr_runnable != len(queued):
                self._report(
                    "runqueue",
                    f"nr_runnable {kernel.scheduler.nr_runnable} != "
                    f"{len(queued)} queued tasks")
            currents = [kernel.current] if kernel.current is not None else []
        if len(queued) != len(set(queued)):
            dupes = sorted({p for p in queued if queued.count(p) > 1})
            self._report("runqueue",
                         f"pids queued more than once: {dupes}",
                         dupes[0] if dupes else None)
        queued_set = set(queued)
        for current in currents:
            if current.pid in queued_set:
                self._report("runqueue", "current task is on the run queue",
                             current.pid)
        waiting_members: Dict[int, str] = {}
        for channel, tasks in kernel._wait_queues.items():
            for task in tasks:
                if task.pid in waiting_members:
                    self._report("runqueue",
                                 "task parked on two wait channels",
                                 task.pid)
                waiting_members[task.pid] = channel
                if task.state not in (TaskState.WAITING, TaskState.STOPPED):
                    self._report(
                        "runqueue",
                        f"{task.state.value} task parked on {channel!r}",
                        task.pid)
                if task.wait_channel != channel:
                    self._report(
                        "runqueue",
                        f"task parked on {channel!r} but wait_channel is "
                        f"{task.wait_channel!r}", task.pid)
        for task in kernel.tasks.values():
            state = task.state
            if state is TaskState.READY:
                if task.pid not in queued_set:
                    self._report("runqueue",
                                 "READY task missing from the run queue",
                                 task.pid)
            elif task.pid in queued_set:
                self._report("runqueue",
                             f"{state.value} task sitting on the run queue",
                             task.pid)
            if state is TaskState.WAITING:
                if task.wait_channel is None:
                    self._report("runqueue",
                                 "WAITING task has no wait channel", task.pid)
                elif waiting_members.get(task.pid) != task.wait_channel:
                    self._report(
                        "runqueue",
                        f"WAITING task not parked on its channel "
                        f"{task.wait_channel!r}", task.pid)
            if state in (TaskState.ZOMBIE, TaskState.DEAD):
                if task.pid in waiting_members:
                    self._report("runqueue",
                                 "dead task still parked on a wait channel",
                                 task.pid)


class _VcpuShadow:
    """The virt checker's independent per-vCPU ledger."""

    __slots__ = ("ran_ns", "idle_ns", "steal_ns", "sampled_ticks")

    def __init__(self) -> None:
        self.ran_ns = 0
        self.idle_ns = 0
        self.steal_ns = 0
        self.sampled_ticks = 0


class VirtInvariantChecker:
    """Shadow-ledger checker for the hypervisor's vCPU time accounting.

    Extends the conservation discipline one level up: fed by hypervisor
    hooks (every dispatched slice, every steal/idle attribution, every
    accounting tick), it independently re-derives each vCPU's
    ``ran/idle/steal`` ledger and holds the hypervisor to

    * **vcpu-conservation** — per vCPU, exactly
      ``ran_ns + idle_ns + steal_ns == host wall`` and
      ``guest_clock == ran_ns + idle_ns`` (the issue's law: with the guest
      kernel's own shadow ledger closing utime+stime+idle = guest clock,
      Σ guest (utime + stime + idle + steal) = host wall time per vCPU);
    * **steal-injection** — the steal time injected into each guest's
      timekeeper equals the hypervisor-side steal ledger nanosecond for
      nanosecond;
    * **host-conservation** — Σ vCPU ran + host idle = host wall, and the
      host clock only moves through the hooks the checker watched;
    * **vm-billing-conservation** — tick-sampled billing is exactly
      ``sampled_ticks x tick_ns`` per vCPU, sampled ticks match the ticks
      the checker saw land on that vCPU, and idle ticks balance.

    A full sweep also runs every guest machine's own kernel-level checker,
    so one :meth:`check_full` closes the two-level law end to end.

    The hypervisor multiplexes single-vCPU guests onto one physical core
    (``run_spec`` rejects vm specs with ``nproc > 1``), so the per-vCPU
    laws here are already "per CPU" — the guest-side sweep it triggers is
    the place where the SMP-generalised kernel checker would engage.
    """

    def __init__(self, mode: str = "raise",
                 full_check_every_ticks: int = 32,
                 max_recorded: int = 200,
                 tolerated: Iterable[str] = ()) -> None:
        if mode not in ("raise", "collect"):
            raise SimulationError(f"unknown invariant mode {mode!r}")
        self.mode = mode
        self.full_check_every_ticks = max(1, int(full_check_every_ticks))
        self.max_recorded = max_recorded
        self.violations: List[Violation] = []
        #: See InvariantChecker.tolerated: fault-declared expected breaches.
        self.tolerated: Set[str] = set(tolerated)
        self.tolerated_violations: List[Violation] = []
        self._seen: Set[Tuple[str, Optional[int]]] = set()
        self.suppressed = 0

        self.hypervisor: Optional["Hypervisor"] = None
        self._attach_now = 0
        self._vcpus: Dict[int, _VcpuShadow] = {}
        self._clock_total = 0
        #: host ns advanced but not yet attributed by a run/idle hook.
        self._pending_ns = 0
        self._host_idle_ns = 0
        self._ticks_total = 0
        self._idle_ticks = 0
        self._last_now = 0
        self.full_checks = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, hypervisor: "Hypervisor") -> None:
        self.hypervisor = hypervisor
        self._attach_now = hypervisor.clock.now
        self._last_now = hypervisor.clock.now
        hypervisor.clock.on_advance = self.on_clock_advance

    def on_vm_created(self, vm: "VirtualMachine") -> None:
        self._vcpus[id(vm)] = _VcpuShadow()

    def _shadow(self, vm: "VirtualMachine") -> _VcpuShadow:
        shadow = self._vcpus.get(id(vm))
        if shadow is None:
            shadow = self._vcpus[id(vm)] = _VcpuShadow()
        return shadow

    def tolerate(self, *categories: str) -> None:
        """Declare ``categories`` as expected under the active fault plan."""
        self.tolerated.update(categories)

    def _report(self, category: str, message: str,
                vm: Optional["VirtualMachine"] = None) -> None:
        hv = self.hypervisor
        where = f"vm={vm.name!r}: " if vm is not None else ""
        violation = Violation(category=category, message=where + message,
                              pid=None,
                              tick=hv.ticks if hv is not None else 0,
                              time_ns=hv.clock.now if hv is not None else 0)
        if category in self.tolerated:
            if len(self.tolerated_violations) < self.max_recorded:
                self.tolerated_violations.append(violation)
            return
        if self.mode == "raise":
            raise InvariantViolation(violation)
        key = (category, vm.name if vm is not None else None)
        if key in self._seen or len(self.violations) >= self.max_recorded:
            self.suppressed += 1
            return
        self._seen.add(key)
        self.violations.append(violation)

    # ------------------------------------------------------------------
    # hooks (called by the hypervisor)
    # ------------------------------------------------------------------

    def on_clock_advance(self, delta_ns: int) -> None:
        if delta_ns < 0:
            self._report("clock-monotonic",
                         f"host clock advanced by negative delta {delta_ns}")
            return
        self._clock_total += delta_ns
        self._pending_ns += delta_ns

    def on_run(self, vm: "VirtualMachine", ns: int) -> None:
        """The vCPU held the physical core for ``ns`` host nanoseconds."""
        self._pending_ns -= ns
        if self._pending_ns < 0:
            self._report(
                "vcpu-conservation",
                f"ran {ns}ns exceeding host clock advance", vm)
            self._pending_ns = 0
        self._shadow(vm).ran_ns += ns

    def on_steal(self, vm: "VirtualMachine", ns: int) -> None:
        """A runnable-but-descheduled gap was attributed as steal.  Steal
        time is concurrent with some other vCPU's run (or host idle) time,
        so it does NOT drain ``_pending_ns``."""
        self._shadow(vm).steal_ns += ns

    def on_guest_idle(self, vm: "VirtualMachine", ns: int) -> None:
        """A blocked gap was attributed as guest idle (also concurrent)."""
        self._shadow(vm).idle_ns += ns

    def on_host_idle(self, ns: int) -> None:
        """The host core itself idled (no runnable vCPU)."""
        self._pending_ns -= ns
        if self._pending_ns < 0:
            self._report("host-conservation",
                         f"host idle of {ns}ns exceeds clock delta")
            self._pending_ns = 0
        self._host_idle_ns += ns

    def on_tick(self) -> None:
        """After the hypervisor billed/debited one accounting tick."""
        self._ticks_total += 1
        hv = self.hypervisor
        cur = hv.current if hv is not None else None
        if cur is None:
            self._idle_ticks += 1
        else:
            self._shadow(cur).sampled_ticks += 1
        if self._ticks_total % self.full_check_every_ticks == 0:
            self.check_full()

    # ------------------------------------------------------------------
    # full sweep
    # ------------------------------------------------------------------

    def check_full(self) -> None:
        """Sync every ledger, then run all global and per-vCPU checks plus
        each guest machine's own kernel-level sweep."""
        hv = self.hypervisor
        if hv is None:
            return
        self.full_checks += 1
        hv.sync_ledgers()
        now = hv.clock.now
        if now < self._last_now:
            self._report("clock-monotonic",
                         f"host clock moved backwards to {now}ns")
        self._last_now = now
        observed = now - self._attach_now
        if observed != self._clock_total:
            self._report(
                "clock-monotonic",
                f"host clock moved {observed}ns but only "
                f"{self._clock_total}ns passed through advance()")
        if self._pending_ns != 0:
            self._report(
                "host-conservation",
                f"{self._pending_ns}ns of host time advanced without "
                f"attribution")
        if hv.host_idle_ns != self._host_idle_ns:
            self._report(
                "host-conservation",
                f"hypervisor host_idle_ns {hv.host_idle_ns} != shadow "
                f"{self._host_idle_ns}")
        ran_total = 0
        for vm in hv.vms:
            self._check_vm(vm)
            ran_total += vm.ran_ns
        accounted = ran_total + self._host_idle_ns + self._pending_ns
        if accounted != observed:
            self._report(
                "host-conservation",
                f"host wall {observed}ns but Σ ran + idle accounts "
                f"{accounted}ns")
        if hv.ticks != self._ticks_total:
            self._report(
                "vm-billing-conservation",
                f"hypervisor counted {hv.ticks} ticks, checker saw "
                f"{self._ticks_total}")
        if hv.idle_ticks != self._idle_ticks:
            self._report(
                "vm-billing-conservation",
                f"hypervisor idle_ticks {hv.idle_ticks} != shadow "
                f"{self._idle_ticks}")

    def _check_vm(self, vm: "VirtualMachine") -> None:
        hv = self.hypervisor
        shadow = self._shadow(vm)
        if (vm.ran_ns, vm.idle_ns, vm.steal_ns) != (
                shadow.ran_ns, shadow.idle_ns, shadow.steal_ns):
            self._report(
                "vcpu-conservation",
                f"ledger ran/idle/steal ({vm.ran_ns}/{vm.idle_ns}/"
                f"{vm.steal_ns})ns != shadow ({shadow.ran_ns}/"
                f"{shadow.idle_ns}/{shadow.steal_ns})ns", vm)
        host_wall = hv.clock.now - vm.attach_host_ns
        total = vm.ran_ns + vm.idle_ns + vm.steal_ns
        if total != host_wall:
            self._report(
                "vcpu-conservation",
                f"ran+idle+steal = {total}ns but host wall is "
                f"{host_wall}ns", vm)
        guest_elapsed = vm.machine.clock.now - vm.attach_guest_ns
        if guest_elapsed != vm.ran_ns + vm.idle_ns:
            self._report(
                "vcpu-conservation",
                f"guest clock advanced {guest_elapsed}ns but ran+idle is "
                f"{vm.ran_ns + vm.idle_ns}ns", vm)
        injected = vm.machine.kernel.timekeeper.steal_ns
        if injected != vm.steal_ns:
            self._report(
                "steal-injection",
                f"guest timekeeper reports {injected}ns steal, hypervisor "
                f"ledger has {vm.steal_ns}ns", vm)
        if vm.sampled_ticks != shadow.sampled_ticks:
            self._report(
                "vm-billing-conservation",
                f"vm sampled {vm.sampled_ticks} ticks, checker saw "
                f"{shadow.sampled_ticks}", vm)
        expect_billed = vm.sampled_ticks * hv.cfg.tick_ns
        if vm.billed_total_ns != expect_billed:
            self._report(
                "vm-billing-conservation",
                f"billed {vm.billed_total_ns}ns != {vm.sampled_ticks} "
                f"sampled ticks x {hv.cfg.tick_ns}ns", vm)
        guest_checker = vm.machine.invariant_checker
        if guest_checker is not None:
            guest_checker.check_full()
