"""The batch experiment runner: fan a sweep across worker processes.

``BatchRunner.run(specs)`` resolves each point against the result cache,
executes the misses — serially for ``jobs=1``, on a
``concurrent.futures.ProcessPoolExecutor`` otherwise — and returns one
:class:`RunOutcome` per spec *in input order*.  A point that raises (or
exceeds the per-run wall timeout) is retried up to ``retries`` times and
then recorded as a structured :class:`FailureRecord`; the rest of the sweep
always completes.

Determinism: every point boots a fresh machine from its spec's config and
seed, so the parallel path is bit-identical to the serial one (the
equivalence suite enforces this field by field).

Timeouts are enforced *inside* the executing process via a real-time
interval timer (``SIGALRM``; POSIX main thread only — silently skipped
elsewhere), at full sub-second resolution, so a hung point turns into an
ordinary failure instead of a leaked worker.

A worker that dies outright (OOM kill, segfault, ``os._exit``) breaks the
whole ``ProcessPoolExecutor``; the runner converts every in-flight point
into a failure-or-retry, replaces the executor, and the sweep continues.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .cache import ResultCache
from .progress import (
    CACHED,
    COMPLETED,
    FAILED,
    RETRIED,
    STARTED,
    ProgressEvent,
    ProgressHook,
    SweepTelemetry,
    fanout,
)
from .specs import ExperimentSpec, run_spec, spec_key

if TYPE_CHECKING:  # pragma: no cover - typing only (import-cycle guard)
    from ..analysis.experiment import ExperimentResult


class SweepError(ReproError):
    """Raised by :meth:`BatchRunner.run_results` when any point failed."""


@dataclass(frozen=True)
class FailureRecord:
    """Why one sweep point did not produce a result."""

    label: str
    key: str
    error_type: str
    message: str
    attempts: int
    traceback: str = ""

    def __str__(self) -> str:
        return (f"{self.label}: {self.error_type}: {self.message} "
                f"(after {self.attempts} attempt(s))")


@dataclass
class RunOutcome:
    """One spec's fate: a result (live or cached) or a failure record."""

    spec: ExperimentSpec
    key: str
    result: Optional[ExperimentResult] = None
    failure: Optional[FailureRecord] = None
    cached: bool = False
    wall_s: float = 0.0
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.result is not None


class _RunTimeout(Exception):
    """The in-worker SIGALRM fired."""


def _alarm_handler(signum, frame):  # pragma: no cover - signal context
    raise _RunTimeout()


def _execute_spec(spec: ExperimentSpec,
                  timeout_s: Optional[float]) -> Tuple[str, object, float]:
    """Worker-side entry: run one spec, never raise across the pickle
    boundary.  Returns ("ok", result, wall_s) or ("error", record-less
    (type, message, traceback) tuple, wall_s)."""
    use_alarm = (timeout_s is not None and timeout_s > 0
                 and hasattr(signal, "SIGALRM")
                 and hasattr(signal, "setitimer")
                 and threading.current_thread() is threading.main_thread())
    start = time.perf_counter()
    previous = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        # setitimer, not alarm(): alarm truncates to whole seconds, which
        # turns a 0.5s ceiling into 1s (and 0 into "no timeout at all").
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        result = run_spec(spec)
        return ("ok", result, time.perf_counter() - start)
    except _RunTimeout:
        wall = time.perf_counter() - start
        return ("error", ("TimeoutError",
                          f"run exceeded {timeout_s}s wall clock", ""), wall)
    except Exception as exc:
        wall = time.perf_counter() - start
        return ("error", (type(exc).__name__, str(exc),
                          traceback.format_exc(limit=8)), wall)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


class BatchRunner:
    """Execute sweeps of :class:`ExperimentSpec`s with caching and retry.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) runs in-process with no
        executor, which is also the reference path for equivalence tests.
    cache:
        Optional :class:`ResultCache` (or a path-like, which constructs
        one).  Hits skip execution entirely.
    timeout_s:
        Per-point wall-clock ceiling, enforced in the executing process.
    retries:
        Extra attempts after a failed point before recording the failure.
    progress:
        Optional hook (or list of hooks) receiving
        :class:`~repro.runner.progress.ProgressEvent`s.  A fresh
        :class:`SweepTelemetry` is attached per ``run`` as
        ``self.telemetry`` regardless.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 0,
                 progress: Optional[object] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = ResultCache(cache) if isinstance(cache, (str, bytes)) \
            or hasattr(cache, "__fspath__") else cache
        self.timeout_s = timeout_s
        self.retries = retries
        hooks = progress if isinstance(progress, (list, tuple)) \
            else [progress]
        self._extra_hooks: List[Optional[ProgressHook]] = list(hooks)
        self.telemetry = SweepTelemetry()

    # -- public API ---------------------------------------------------------

    def run(self, specs: Sequence[ExperimentSpec]) -> List[RunOutcome]:
        """Run every spec; outcomes come back in input order."""
        specs = list(specs)
        self.telemetry = SweepTelemetry()
        emit = fanout(self.telemetry, *self._extra_hooks)
        total = len(specs)
        outcomes: List[Optional[RunOutcome]] = [None] * total

        live: List[int] = []
        for index, spec in enumerate(specs):
            key = spec_key(spec)
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                outcomes[index] = RunOutcome(
                    spec=spec, key=key, result=cached, cached=True)
                emit(ProgressEvent(CACHED, index, total, spec.name))
            else:
                outcomes[index] = RunOutcome(spec=spec, key=key)
                live.append(index)

        if live:
            if self.jobs == 1:
                self._run_serial(specs, live, outcomes, total, emit)
            else:
                self._run_pool(specs, live, outcomes, total, emit)
        return [outcome for outcome in outcomes if outcome is not None]

    def run_results(self,
                    specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        """Like :meth:`run` but unwraps results, raising :class:`SweepError`
        if any point failed — for callers (the figures) that need every
        point."""
        outcomes = self.run(specs)
        failures = [o.failure for o in outcomes if not o.ok]
        if failures:
            raise SweepError(
                f"{len(failures)}/{len(outcomes)} sweep points failed: "
                + "; ".join(str(f) for f in failures[:3]))
        return [o.result for o in outcomes]

    # -- execution paths ----------------------------------------------------

    def _finish(self, outcomes: List[Optional[RunOutcome]], index: int,
                total: int, payload: Tuple[str, object, float],
                attempt: int, emit: ProgressHook) -> bool:
        """Fold one worker payload into ``outcomes[index]``.  Returns True
        if the point should be retried."""
        outcome = outcomes[index]
        status, value, wall = payload
        outcome.attempts = attempt
        outcome.wall_s += wall
        if status == "ok":
            outcome.result = value
            if self.cache is not None:
                self.cache.put(outcome.spec, value)
            emit(ProgressEvent(COMPLETED, index, total, outcome.spec.name,
                               wall_s=wall, attempt=attempt))
            return False
        error_type, message, tb = value
        if attempt <= self.retries:
            emit(ProgressEvent(RETRIED, index, total, outcome.spec.name,
                               wall_s=wall, attempt=attempt,
                               error=f"{error_type}: {message}"))
            return True
        outcome.failure = FailureRecord(
            label=outcome.spec.name, key=outcome.key,
            error_type=error_type, message=message,
            attempts=attempt, traceback=tb)
        emit(ProgressEvent(FAILED, index, total, outcome.spec.name,
                           wall_s=wall, attempt=attempt,
                           error=f"{error_type}: {message}"))
        return False

    def _run_serial(self, specs, live, outcomes, total, emit) -> None:
        for index in live:
            attempt = 0
            while True:
                attempt += 1
                emit(ProgressEvent(STARTED, index, total, specs[index].name,
                                   attempt=attempt))
                payload = _execute_spec(specs[index], self.timeout_s)
                if not self._finish(outcomes, index, total, payload,
                                    attempt, emit):
                    break

    def _run_pool(self, specs, live, outcomes, total, emit) -> None:
        attempts: Dict[int, int] = {index: 0 for index in live}
        queue: List[int] = list(live)  # points awaiting (re)submission
        pending: Dict[object, int] = {}  # in-flight future -> spec index
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while queue or pending:
                for index in queue:
                    attempts[index] += 1
                    emit(ProgressEvent(STARTED, index, total,
                                       specs[index].name,
                                       attempt=attempts[index]))
                    pending[executor.submit(_execute_spec, specs[index],
                                            self.timeout_s)] = index
                queue = []
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    index = pending.pop(future)
                    try:
                        payload = future.result()
                    except BrokenExecutor as exc:
                        # A worker died outright (OOM kill, segfault,
                        # os._exit): the whole pool is unusable from here.
                        broken = True
                        payload = self._broken_payload(exc)
                    except Exception as exc:
                        # The future itself raised — an unpicklable result
                        # or argument, most commonly.  Same bounded
                        # retry-or-failure fold as every other error: the
                        # point charges its attempt and retries until the
                        # budget runs out.
                        payload = self._error_payload(exc)
                    if self._finish(outcomes, index, total, payload,
                                    attempts[index], emit):
                        queue.append(index)
                if broken:
                    # Every other in-flight future fails with the same
                    # breakage; fold each into a retry-or-failure, then
                    # replace the executor so the sweep keeps going.
                    for future, index in list(pending.items()):
                        try:
                            payload = future.result(timeout=5.0)
                        except BrokenExecutor as exc:
                            payload = self._broken_payload(exc)
                        except Exception as exc:
                            payload = self._error_payload(exc)
                        if self._finish(outcomes, index, total, payload,
                                        attempts[index], emit):
                            queue.append(index)
                    pending = {}
                    executor.shutdown(wait=False)
                    executor = ProcessPoolExecutor(max_workers=self.jobs)
        finally:
            executor.shutdown(wait=False)

    @staticmethod
    def _broken_payload(exc: BaseException) -> Tuple[str, object, float]:
        message = str(exc) or ("a worker process died abruptly; "
                               "the pool was replaced")
        return ("error", (type(exc).__name__, message, ""), 0.0)

    @staticmethod
    def _error_payload(exc: BaseException) -> Tuple[str, object, float]:
        """A future-raised exception (unpicklable result/argument, executor
        bookkeeping error) as a worker payload — never an empty message."""
        message = str(exc) or type(exc).__name__
        return ("error", (type(exc).__name__, message, ""), 0.0)
