"""Progress and telemetry hooks for sweep runs.

The runner emits one :class:`ProgressEvent` per state change of a point
(started, completed, cached, retried, failed).  :class:`SweepTelemetry` is
the always-on collector — it keeps the completed/cached/failed counts and
per-point wall times the acceptance criteria report on — and
:class:`ConsoleProgress` is the optional human-readable printer behind the
CLI's ``--jobs`` output.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO

#: Event kinds, in lifecycle order.
STARTED = "started"
COMPLETED = "completed"
CACHED = "cached"
RETRIED = "retried"
FAILED = "failed"


@dataclass(frozen=True)
class ProgressEvent:
    """One state change of one sweep point."""

    kind: str
    index: int
    total: int
    label: str
    #: Wall seconds of the live run (0.0 for started/cached events).
    wall_s: float = 0.0
    #: 1-based attempt number for retried/failed events.
    attempt: int = 0
    error: Optional[str] = None


#: A progress hook is any callable taking one event.
ProgressHook = Callable[[ProgressEvent], None]


class SweepTelemetry:
    """Counters + per-point wall times for one ``BatchRunner.run`` call."""

    def __init__(self) -> None:
        self.total = 0
        self.completed = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.live_wall_s = 0.0
        #: label → wall seconds of its (final) live execution.
        self.point_wall_s: Dict[str, float] = {}
        self.events: List[ProgressEvent] = []

    @property
    def live_runs(self) -> int:
        """Points that actually executed (as opposed to cache hits)."""
        return self.completed + self.failed

    def __call__(self, event: ProgressEvent) -> None:
        self.events.append(event)
        self.total = max(self.total, event.total)
        if event.kind == COMPLETED:
            self.completed += 1
            self.live_wall_s += event.wall_s
            self.point_wall_s[event.label] = event.wall_s
        elif event.kind == CACHED:
            self.cached += 1
        elif event.kind == RETRIED:
            self.retries += 1
        elif event.kind == FAILED:
            self.failed += 1
            self.live_wall_s += event.wall_s
            self.point_wall_s[event.label] = event.wall_s

    def merge(self, other: "SweepTelemetry") -> None:
        """Fold another run's counters into this one (multi-figure CLI
        invocations aggregate one telemetry across all runs)."""
        self.total += other.total
        self.completed += other.completed
        self.cached += other.cached
        self.failed += other.failed
        self.retries += other.retries
        self.live_wall_s += other.live_wall_s
        self.point_wall_s.update(other.point_wall_s)
        self.events.extend(other.events)

    def summary(self) -> str:
        parts = [f"{self.completed} run", f"{self.cached} cached",
                 f"{self.failed} failed"]
        if self.retries:
            parts.append(f"{self.retries} retried")
        return (f"sweep: {self.total} points ({', '.join(parts)}) "
                f"in {self.live_wall_s:.2f}s live work")


class ConsoleProgress:
    """Print one line per finished point, plus retries and failures."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: ProgressEvent) -> None:
        if event.kind == STARTED:
            return
        position = f"[{event.index + 1}/{event.total}]"
        if event.kind == CACHED:
            line = f"{position} {event.label}: cached"
        elif event.kind == COMPLETED:
            line = f"{position} {event.label}: done in {event.wall_s:.2f}s"
        elif event.kind == RETRIED:
            line = (f"{position} {event.label}: attempt {event.attempt} "
                    f"failed ({event.error}); retrying")
        else:
            line = f"{position} {event.label}: FAILED ({event.error})"
        print(line, file=self.stream)
        self.stream.flush()


def fanout(*hooks: Optional[ProgressHook]) -> ProgressHook:
    """Combine hooks (Nones are skipped) into a single callable."""
    live = [h for h in hooks if h is not None]

    def emit(event: ProgressEvent) -> None:
        for hook in live:
            hook(event)

    return emit
