"""Content-addressed on-disk cache of experiment results.

Layout: ``<cache_dir>/<key[:2]>/<key>.json`` where ``key`` is
:func:`repro.runner.specs.spec_key` — a SHA-256 over the canonical spec,
the machine config (including the RNG seed) and the repro version.  The
simulator is deterministic, so a hit can be returned verbatim; any change
to the point's inputs changes the key and forces a live run.

Entries are written atomically (temp file + ``os.replace``) so a sweep
killed mid-write never leaves a truncated entry behind — and if one appears
anyway, :meth:`ResultCache.get` treats any unreadable/ill-formed entry as a
miss rather than raising, so a corrupted cache only costs a re-run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from .specs import ExperimentSpec, spec_identity, spec_key

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: analysis.figures pulls in the runner package at import time)
    from ..analysis.experiment import ExperimentResult

#: Bumped when the entry schema changes; mismatched entries read as misses.
ENTRY_SCHEMA = 1


class ResultCache:
    """Maps spec keys to cached :class:`ExperimentResult` documents."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, spec: ExperimentSpec) -> Optional["ExperimentResult"]:
        """The cached result for ``spec``, or ``None``.

        Never raises on a bad entry: unreadable JSON, a schema mismatch or
        a malformed result document all count as misses (and the offending
        file is removed so it is rewritten on the next store).
        """
        from ..analysis.experiment import ExperimentResult

        key = spec_key(spec)
        path = self._path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(doc, dict):
                # Valid JSON that is not an object (truncation can leave
                # e.g. a bare array or null behind): corrupt, not stale.
                raise ValueError("cache entry is not a JSON object")
            if doc.get("schema") != ENTRY_SCHEMA or doc.get("key") != key:
                raise ValueError("stale or foreign cache entry")
            result = ExperimentResult.from_dict(doc["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self._evict(path)
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: "ExperimentResult") -> str:
        """Store ``result`` under ``spec``'s key; returns the key."""
        key = spec_key(spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc: Dict[str, Any] = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "spec": spec_identity(spec),
            "label": spec.name,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            self._evict(Path(tmp))
            raise
        return key

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def clear(self) -> None:
        for entry in self.cache_dir.glob("*/*.json"):
            self._evict(entry)
        # Also sweep temp files orphaned by writers killed mid-put (the
        # atomic-rename dance leaves a *.tmp behind if the process dies
        # between mkstemp and os.replace).
        for orphan in self.cache_dir.glob("*/*.tmp"):
            self._evict(orphan)
