"""Batch experiment runner: declarative sweeps, process fan-out, caching.

The figures, benchmarks and the ``sweep``/``figures`` CLI commands all
funnel their (program × attack × config) points through this package:

* :mod:`~repro.runner.specs` — picklable :class:`ExperimentSpec` points and
  the worker-side :func:`run_spec` entry;
* :mod:`~repro.runner.pool` — :class:`BatchRunner` (serial or
  ``ProcessPoolExecutor`` fan-out, timeout + bounded retry, structured
  failures);
* :mod:`~repro.runner.cache` — :class:`ResultCache`, content-addressed by
  spec/seed/version hash;
* :mod:`~repro.runner.progress` — telemetry counters and progress hooks.

See docs/runner.md for the sweep format and determinism guarantees.
"""

from .cache import ResultCache
from .pool import BatchRunner, FailureRecord, RunOutcome, SweepError
from .progress import ConsoleProgress, ProgressEvent, SweepTelemetry
from .specs import (
    ATTACK_CLASSES,
    PROGRAM_FACTORIES,
    ExperimentSpec,
    SpecError,
    grid,
    run_spec,
    spec_from_dict,
    spec_key,
)

__all__ = [
    "ATTACK_CLASSES",
    "PROGRAM_FACTORIES",
    "BatchRunner",
    "ConsoleProgress",
    "ExperimentSpec",
    "FailureRecord",
    "ProgressEvent",
    "ResultCache",
    "RunOutcome",
    "SpecError",
    "SweepError",
    "SweepTelemetry",
    "grid",
    "run_spec",
    "spec_from_dict",
    "spec_key",
]
