"""Declarative, picklable experiment specifications.

``run_experiment`` takes live :class:`Program` and :class:`Attack` objects,
which hold machine references and guest closures — neither survives a trip
through ``pickle`` to a worker process.  An :class:`ExperimentSpec` instead
names the program and attack by registry key and carries only plain
constructor kwargs, so a sweep point can be shipped to a
``ProcessPoolExecutor`` worker, rebuilt there from scratch, and executed
with :func:`run_spec` — producing the exact same result the serial path
would (the simulator is deterministic given the spec's config and seed).

The spec is also the cache identity: :func:`spec_key` hashes the canonical
JSON form of (spec, seed, repro version), so any change to the workload,
the attack parameters, the machine config or the simulator version misses
the cache and re-runs the point.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .. import __version__
from ..attacks import (
    Attack,
    ExceptionFloodAttack,
    InterruptFloodAttack,
    IrqSteerAttack,
    LibraryConstructorAttack,
    LibrarySubstitutionAttack,
    RuntimeLibraryAttack,
    SchedulingAttack,
    ShellAttack,
    SmpDodgeAttack,
    ThrashingAttack,
)
from ..config import MachineConfig, default_config
from ..errors import ReproError
from ..programs.attackers import make_busyloop, make_fork_attacker
from ..programs.base import Program
from ..programs.workloads import PAPER_PROGRAMS, make_paper_program

#: program registry key → factory.  The paper programs go through
#: ``make_paper_program``; the attacker-side programs are addressable too so
#: sweep grids and the scheduling figures can run them standalone.
PROGRAM_FACTORIES: Dict[str, Callable[..., Program]] = {
    **{name: (lambda name: lambda **kw: make_paper_program(name, **kw))(name)
       for name in PAPER_PROGRAMS},
    "fork": make_fork_attacker,
    "busyloop": make_busyloop,
}

#: attack registry key → class.  Keys match the comparison-matrix names.
ATTACK_CLASSES: Dict[str, Callable[..., Attack]] = {
    "shell": ShellAttack,
    "library-ctor": LibraryConstructorAttack,
    "library-subst": LibrarySubstitutionAttack,
    "library-runtime": RuntimeLibraryAttack,
    "scheduling": SchedulingAttack,
    "thrashing": ThrashingAttack,
    "irq-flood": InterruptFloodAttack,
    "fault-flood": ExceptionFloodAttack,
    "smp-dodge": SmpDodgeAttack,
    "irq-steer": IrqSteerAttack,
}


class SpecError(ReproError):
    """An :class:`ExperimentSpec` references an unknown program/attack."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of a sweep: program × attack × config, all by value.

    ``attack=None`` (or ``"none"``) is the honest-platform control run.
    ``cfg=None`` means :func:`repro.config.default_config`.  ``label`` is
    cosmetic — it names the point in telemetry and reports but is excluded
    from the cache key.
    """

    program: str
    program_kwargs: Mapping[str, Any] = field(default_factory=dict)
    attack: Optional[str] = None
    attack_kwargs: Mapping[str, Any] = field(default_factory=dict)
    cfg: Optional[MachineConfig] = None
    run_attacker_to_completion: Optional[bool] = None
    max_ns: Optional[int] = None
    #: None defers to the process-wide default (set by --check-invariants);
    #: True/False pin the runtime invariant checker on/off for this point.
    check_invariants: Optional[bool] = None
    #: Not None → run the point under the hypervisor: the program becomes
    #: the victim VM's workload, ``attack`` names a VM-level attack
    #: (``"vm-sched"``) instead of a process-level one, and the mapping
    #: carries the hypervisor/scenario knobs
    #: (:data:`repro.virt.experiment.VM_PARAM_KEYS`; ``{}`` for defaults).
    vm: Optional[Mapping[str, Any]] = None
    #: Number of CPUs for this point.  The default of 1 is identity-neutral:
    #: it is popped from the canonical cfg document so every pre-SMP cache
    #: key (and cached result) remains valid.  Values > 1 override
    #: ``cfg.nproc`` and join the identity via the config document.
    nproc: int = 1
    #: Not None → a :meth:`repro.faults.FaultPlan.from_dict` mapping of
    #: deterministic hardware faults (plus the watchdog toggle) for this
    #: point.  An *empty* plan is identical to None — including in the
    #: cache key, so zero-fault results remain bit-compatible with runs
    #: from before the fault layer existed.
    faults: Optional[Mapping[str, Any]] = None
    #: Not None → a :meth:`repro.timesync.TimeSyncSpec.from_dict` mapping
    #: attaching the simulated network time plane (protocol, link, drift,
    #: attack plan, defense toggle) to this point.  An *inert* spec is
    #: identical to None — including in the cache key, so sync-free
    #: results remain bit-compatible with runs from before the time plane
    #: existed.
    timesync: Optional[Mapping[str, Any]] = None
    label: str = ""

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        base = f"{self.program}:{self.attack or 'none'}"
        return f"vm:{base}" if self.vm is not None else base

    def resolved_config(self) -> MachineConfig:
        cfg = self.cfg if self.cfg is not None else default_config()
        if self.nproc != 1 and cfg.nproc != self.nproc:
            cfg = cfg.with_(nproc=self.nproc)
        return cfg

    def build_program(self) -> Program:
        try:
            factory = PROGRAM_FACTORIES[self.program]
        except KeyError:
            raise SpecError(f"unknown program {self.program!r}; "
                            f"have {sorted(PROGRAM_FACTORIES)}") from None
        return factory(**dict(self.program_kwargs))

    def build_attack(self) -> Optional[Attack]:
        if self.attack is None or self.attack == "none":
            return None
        try:
            cls = ATTACK_CLASSES[self.attack]
        except KeyError:
            raise SpecError(f"unknown attack {self.attack!r}; "
                            f"have {sorted(ATTACK_CLASSES)}") from None
        return cls(**dict(self.attack_kwargs))


def _canonical(value: Any) -> Any:
    """Reduce spec fields to a canonical JSON-compatible form (tuples and
    lists collapse to lists; mapping keys are sorted by json.dumps)."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def spec_identity(spec: ExperimentSpec) -> Dict[str, Any]:
    """The JSON document hashed by :func:`spec_key`.

    Includes everything that can change the outcome: the full machine
    config (which carries the RNG seed) and the repro version, per the
    "results are only reusable for the code that produced them" rule.
    ``check_invariants`` is deliberately excluded — the checker observes
    the run without altering it, so results are interchangeable.
    """
    cfg_doc = _canonical(asdict(spec.resolved_config()))
    if cfg_doc.get("nproc") == 1:
        # A single CPU is the pre-SMP machine: drop the field so the
        # document (and hence the cache key) is byte-identical to specs
        # hashed before the SMP layer existed.
        cfg_doc.pop("nproc")
    doc = {
        "program": spec.program,
        "program_kwargs": _canonical(spec.program_kwargs),
        "attack": spec.attack or "none",
        "attack_kwargs": _canonical(spec.attack_kwargs),
        "cfg": cfg_doc,
        "run_attacker_to_completion": spec.run_attacker_to_completion,
        "max_ns": spec.max_ns,
        "vm": _canonical(spec.vm) if spec.vm is not None else None,
        "repro_version": __version__,
    }
    if spec.faults is not None:
        from ..faults import normalize_plan

        plan = normalize_plan(spec.faults)
        if plan is not None:
            # Only a non-empty plan joins the identity: empty plans hash
            # exactly like the pre-fault-layer spec document.
            doc["faults"] = _canonical(plan.to_dict())
    if spec.timesync is not None:
        from ..timesync import normalize_timesync

        sync = normalize_timesync(spec.timesync)
        if sync is not None:
            # Same rule as faults: only an active time plane joins the
            # identity; inert specs hash like the pre-timesync document.
            doc["timesync"] = _canonical(sync.to_dict())
    return doc


def spec_key(spec: ExperimentSpec) -> str:
    """Stable content hash of the spec — the cache key."""
    doc = json.dumps(spec_identity(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


#: Fields a wire-format spec document may carry (``repro serve`` job
#: submissions).  ``cfg`` is restricted to the *simple* top-level machine
#: knobs — nested cost/scheduler/memory sections stay server-side.
SPEC_DOC_FIELDS = frozenset({
    "program", "program_kwargs", "attack", "attack_kwargs", "cfg",
    "run_attacker_to_completion", "max_ns", "check_invariants", "vm",
    "nproc", "faults", "timesync", "label",
})

#: The MachineConfig fields a spec document's ``cfg`` mapping may set.
CFG_DOC_FIELDS = frozenset({
    "cpu_freq_hz", "nproc", "hz", "accounting",
    "process_aware_irq_accounting", "charge_switch_to", "seed",
    "max_time_ns",
})


def spec_from_dict(doc: Mapping[str, Any]) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` from an untrusted JSON document.

    The inverse of :func:`spec_identity` for the wire: every field is
    validated (unknown keys, unknown program/attack names and malformed
    configs raise :class:`SpecError`) so a tenant submission can never
    reach :func:`run_spec` malformed.
    """
    from ..errors import ConfigError

    if not isinstance(doc, Mapping):
        raise SpecError(f"spec document must be a mapping, got "
                        f"{type(doc).__name__}")
    unknown = set(doc) - SPEC_DOC_FIELDS
    if unknown:
        raise SpecError(f"unknown spec fields {sorted(unknown)}; "
                        f"have {sorted(SPEC_DOC_FIELDS)}")
    if "program" not in doc or not isinstance(doc["program"], str):
        raise SpecError("spec document needs a 'program' name")

    cfg = None
    cfg_doc = doc.get("cfg")
    if cfg_doc is not None:
        if not isinstance(cfg_doc, Mapping):
            raise SpecError("'cfg' must be a mapping of machine knobs")
        bad = set(cfg_doc) - CFG_DOC_FIELDS
        if bad:
            raise SpecError(f"unknown cfg fields {sorted(bad)}; "
                            f"have {sorted(CFG_DOC_FIELDS)}")
        try:
            cfg = default_config(**dict(cfg_doc))
        except (ConfigError, TypeError) as exc:
            raise SpecError(f"bad cfg: {exc}") from None

    attack = doc.get("attack")
    if attack in ("none", ""):
        attack = None
    vm = doc.get("vm")
    if attack is not None and vm is None and attack not in ATTACK_CLASSES:
        raise SpecError(f"unknown attack {attack!r}; "
                        f"have {sorted(ATTACK_CLASSES)}")
    program = doc["program"]
    if vm is None and program not in PROGRAM_FACTORIES:
        raise SpecError(f"unknown program {program!r}; "
                        f"have {sorted(PROGRAM_FACTORIES)}")

    def mapping_field(name):
        value = doc.get(name)
        if value is None:
            return {}
        if not isinstance(value, Mapping):
            raise SpecError(f"{name!r} must be a mapping")
        return dict(value)

    nproc = doc.get("nproc", 1)
    if not isinstance(nproc, int) or isinstance(nproc, bool) or nproc < 1:
        raise SpecError(f"nproc must be a positive integer, got {nproc!r}")
    max_ns = doc.get("max_ns")
    if max_ns is not None and (not isinstance(max_ns, int) or max_ns <= 0):
        raise SpecError(f"max_ns must be a positive integer, got {max_ns!r}")
    faults = doc.get("faults")
    if faults is not None:
        if not isinstance(faults, Mapping):
            raise SpecError("'faults' must be a FaultPlan mapping")
        from ..faults import normalize_plan

        try:
            normalize_plan(faults)
        except (ReproError, TypeError, ValueError) as exc:
            raise SpecError(f"bad fault plan: {exc}") from None
    timesync = doc.get("timesync")
    if timesync is not None:
        if not isinstance(timesync, Mapping):
            raise SpecError("'timesync' must be a TimeSyncSpec mapping")
        from ..timesync import normalize_timesync

        try:
            normalize_timesync(timesync)
        except (ReproError, TypeError, ValueError) as exc:
            raise SpecError(f"bad timesync spec: {exc}") from None
    if vm is not None:
        if not isinstance(vm, Mapping):
            raise SpecError("'vm' must be a mapping of hypervisor knobs")
        # Fail at submission, not deep inside a worker thread: mirror the
        # validation run_vm_experiment would do.
        from ..virt.experiment import VM_ATTACK_NAMES, VM_PARAM_KEYS

        bad_vm = set(vm) - VM_PARAM_KEYS
        if bad_vm:
            raise SpecError(f"unknown vm fields {sorted(bad_vm)}; "
                            f"have {sorted(VM_PARAM_KEYS)}")
        if attack is not None and attack not in VM_ATTACK_NAMES:
            raise SpecError(f"unknown vm attack {attack!r}; "
                            f"have {sorted(VM_ATTACK_NAMES)} or 'none'")

    spec = ExperimentSpec(
        program=program,
        program_kwargs=mapping_field("program_kwargs"),
        attack=attack,
        attack_kwargs=mapping_field("attack_kwargs"),
        cfg=cfg,
        run_attacker_to_completion=doc.get("run_attacker_to_completion"),
        max_ns=max_ns,
        check_invariants=doc.get("check_invariants"),
        vm=dict(vm) if vm is not None else None,
        nproc=nproc,
        faults=dict(faults) if faults is not None else None,
        timesync=dict(timesync) if timesync is not None else None,
        label=str(doc.get("label", "")),
    )
    # Fail fast on constructor-level garbage (bad program kwargs are only
    # caught at build time otherwise — deep inside a worker thread).
    if vm is None:
        try:
            spec.build_program()
            spec.build_attack()
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad program/attack kwargs: {exc}") from None
    return spec


def run_spec(spec: ExperimentSpec):
    """Execute one spec on a fresh machine — the worker-side entry point.

    Equivalent to building the program/attack by hand and calling
    :func:`repro.analysis.experiment.run_experiment`; the equivalence suite
    (tests/test_runner_equivalence.py) holds this to field-by-field
    equality.
    """
    from ..analysis.experiment import run_experiment

    kwargs: Dict[str, Any] = {}
    if spec.max_ns is not None:
        kwargs["max_ns"] = spec.max_ns
    if spec.faults is not None:
        kwargs["faults"] = spec.faults
    if spec.vm is not None:
        from ..virt.experiment import run_vm_experiment

        if spec.nproc != 1:
            raise SpecError("vm specs do not support nproc > 1 yet; "
                            "the hypervisor multiplexes vCPUs onto one pCPU")
        if spec.timesync is not None:
            raise SpecError("vm specs do not support timesync yet; the "
                            "time plane disciplines the bare-metal host")
        return run_vm_experiment(
            program=spec.program,
            program_kwargs=spec.program_kwargs,
            attack=spec.attack,
            attack_kwargs=spec.attack_kwargs,
            vm=spec.vm,
            cfg=spec.cfg,
            check_invariants=spec.check_invariants,
            **kwargs)
    if spec.timesync is not None:
        kwargs["timesync"] = spec.timesync
    return run_experiment(
        spec.build_program(),
        attack=spec.build_attack(),
        cfg=spec.cfg if spec.nproc == 1 else spec.resolved_config(),
        run_attacker_to_completion=spec.run_attacker_to_completion,
        check_invariants=spec.check_invariants,
        **kwargs)


def grid(programs, attacks, cfg: Optional[MachineConfig] = None,
         **common) -> Tuple[ExperimentSpec, ...]:
    """Cartesian sweep helper: ``programs`` and ``attacks`` are mappings
    name → kwargs; returns one spec per (program, attack) pair."""
    specs = []
    for pname, pkw in programs.items():
        for aname, akw in attacks.items():
            specs.append(ExperimentSpec(
                program=pname, program_kwargs=dict(pkw),
                attack=None if aname == "none" else aname,
                attack_kwargs=dict(akw), cfg=cfg,
                label=f"{pname}:{aname}", **common))
    return tuple(specs)
