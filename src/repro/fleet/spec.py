"""Declarative population specs for datacenter-scale sweeps.

A :class:`FleetSpec` describes a whole simulated datacenter — N hosts
each hosting M metered guests, an attacker co-residency rate, and the
workload / fault-plan / CPU-count mixes the population is drawn from —
in one small, hashable, JSON-serialisable document.  Everything is
seeded: the same spec always expands to the same population, host by
host and guest by guest, which is what lets a fleet sweep be sharded
across any number of worker processes and still aggregate bit-for-bit
identically to a serial run.

The spec deliberately mirrors :class:`~repro.runner.ExperimentSpec`'s
design: frozen, by-value, validated at parse time
(:func:`fleet_from_dict`), and content-hashed (:func:`fleet_key`) so the
serve layer can ledger-serve a repeated fleet submission exactly like a
repeated single-spec submission.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Tuple

from .. import __version__
from ..errors import ReproError

FLEET_SCHEMA = "repro-fleet-v1"


class FleetSpecError(ReproError):
    """A fleet document that cannot describe a population."""


def _mix(*pairs) -> Tuple[Tuple[Any, float], ...]:
    return tuple((value, float(weight)) for value, weight in pairs)


@dataclass(frozen=True)
class FleetSpec:
    """One simulated datacenter population, drawn deterministically.

    ``hosts`` physical hosts each carry ``guests`` metered guest slots.
    Per host, one seeded draw decides whether an attacker is co-resident
    (probability ``prevalence``), whether the host is a hypervisor host
    (probability ``vm_fraction``) or bare metal, its CPU count (bare
    hosts only — the hypervisor multiplexes onto one pCPU), and its
    hardware-fault intensity; each guest slot then draws a workload from
    ``workload_mix``.  On an attacked hypervisor host the co-resident
    runs the §IV-B1-style tick-dodging guest at a drawn ``burn_mix``
    fraction; on an attacked bare-metal host the guest's workload runs
    next to the process-level scheduling attacker.
    """

    hosts: int = 100
    guests: int = 2
    prevalence: float = 0.1
    seed: int = 0
    #: Workload run-length scale, as for the figures (1.0 ≈ paper/200).
    scale: float = 0.1
    vm_fraction: float = 0.5
    workload_mix: Tuple[Tuple[str, float], ...] = field(
        default_factory=lambda: _mix(("W", 0.4), ("O", 0.3), ("P", 0.2),
                                     ("B", 0.1)))
    #: Hardware-fault intensity mix (0.0 = honest hardware); nonzero
    #: intensities run under ``repro.faults.sweep_plan`` with the
    #: clocksource watchdog on.
    fault_mix: Tuple[Tuple[float, float], ...] = field(
        default_factory=lambda: _mix((0.0, 0.9), (0.1, 0.1)))
    #: CPU-count mix for bare-metal hosts.
    nproc_mix: Tuple[Tuple[int, float], ...] = field(
        default_factory=lambda: _mix((1, 0.6), (2, 0.4)))
    #: Tick-fraction burned by the VM tick-dodging attacker.
    burn_mix: Tuple[Tuple[float, float], ...] = field(
        default_factory=lambda: _mix((0.6, 0.4), (0.9, 0.6)))
    #: Network sync-attack mix: (target clock offset in ns, weight)
    #: pairs.  Offset 0 means the host runs no time plane at all; the
    #: all-zero default expands to exactly the pre-timesync population
    #: (the sync draw is skipped entirely, keeping earlier fleets
    #: bit-identical).  Nonzero offsets attach
    #: ``repro.timesync.sweep_timesync(offset)`` to bare-metal hosts —
    #: the time plane disciplines the bare-metal host, so hypervisor
    #: hosts keep their drawn offset at 0.
    sync_mix: Tuple[Tuple[int, float], ...] = field(
        default_factory=lambda: _mix((0, 1.0)))

    def __post_init__(self) -> None:
        if not isinstance(self.hosts, int) or self.hosts < 1:
            raise FleetSpecError(f"hosts must be a positive integer, "
                                 f"got {self.hosts!r}")
        if not isinstance(self.guests, int) or self.guests < 1:
            raise FleetSpecError(f"guests must be a positive integer, "
                                 f"got {self.guests!r}")
        if not 0.0 <= float(self.prevalence) <= 1.0:
            raise FleetSpecError(f"prevalence must be in [0, 1], "
                                 f"got {self.prevalence!r}")
        if not 0.0 <= float(self.vm_fraction) <= 1.0:
            raise FleetSpecError(f"vm_fraction must be in [0, 1], "
                                 f"got {self.vm_fraction!r}")
        if not float(self.scale) > 0:
            raise FleetSpecError(f"scale must be positive, "
                                 f"got {self.scale!r}")
        for name in ("workload_mix", "fault_mix", "nproc_mix", "burn_mix",
                     "sync_mix"):
            mix = getattr(self, name)
            if not mix:
                raise FleetSpecError(f"{name} must not be empty")
            if any(weight < 0 for _, weight in mix):
                raise FleetSpecError(f"{name} weights must be >= 0")
            if not sum(weight for _, weight in mix) > 0:
                raise FleetSpecError(f"{name} needs positive total weight")
        from ..runner.specs import PROGRAM_FACTORIES

        for workload, _ in self.workload_mix:
            if workload not in PROGRAM_FACTORIES:
                raise FleetSpecError(
                    f"unknown workload {workload!r} in workload_mix; "
                    f"have {sorted(PROGRAM_FACTORIES)}")
        for nproc, _ in self.nproc_mix:
            if not isinstance(nproc, int) or nproc < 1:
                raise FleetSpecError(f"nproc_mix entries must be positive "
                                     f"integers, got {nproc!r}")
        for burn, _ in self.burn_mix:
            if not 0.0 <= float(burn) <= 1.0:
                raise FleetSpecError(f"burn_mix entries must be in [0, 1], "
                                     f"got {burn!r}")
        for intensity, _ in self.fault_mix:
            if not 0.0 <= float(intensity) <= 1.0:
                raise FleetSpecError(f"fault_mix intensities must be in "
                                     f"[0, 1], got {intensity!r}")
        for offset, _ in self.sync_mix:
            if not isinstance(offset, int) or offset < 0:
                raise FleetSpecError(f"sync_mix offsets must be "
                                     f"non-negative integers (ns), "
                                     f"got {offset!r}")

    @property
    def population(self) -> int:
        """Metered guest slots across the whole fleet."""
        return self.hosts * self.guests

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hosts": self.hosts,
            "guests": self.guests,
            "prevalence": float(self.prevalence),
            "seed": self.seed,
            "scale": float(self.scale),
            "vm_fraction": float(self.vm_fraction),
            "workload_mix": [[name, weight]
                             for name, weight in self.workload_mix],
            "fault_mix": [[intensity, weight]
                          for intensity, weight in self.fault_mix],
            "nproc_mix": [[nproc, weight]
                          for nproc, weight in self.nproc_mix],
            "burn_mix": [[burn, weight] for burn, weight in self.burn_mix],
            "sync_mix": [[offset, weight]
                         for offset, weight in self.sync_mix],
        }


_FLEET_FIELDS = frozenset(f.name for f in fields(FleetSpec))
_MIX_FIELDS = ("workload_mix", "fault_mix", "nproc_mix", "burn_mix",
               "sync_mix")


def fleet_from_dict(doc: Mapping[str, Any]) -> FleetSpec:
    """Build a :class:`FleetSpec` from an untrusted JSON document."""
    if not isinstance(doc, Mapping):
        raise FleetSpecError(f"fleet document must be a mapping, got "
                             f"{type(doc).__name__}")
    unknown = set(doc) - _FLEET_FIELDS
    if unknown:
        raise FleetSpecError(f"unknown fleet fields {sorted(unknown)}; "
                             f"have {sorted(_FLEET_FIELDS)}")
    kwargs: Dict[str, Any] = dict(doc)
    for name in _MIX_FIELDS:
        if name not in kwargs:
            continue
        mix = kwargs[name]
        if (not isinstance(mix, (list, tuple))
                or not all(isinstance(pair, (list, tuple)) and len(pair) == 2
                           for pair in mix)):
            raise FleetSpecError(f"{name} must be a list of "
                                 f"[value, weight] pairs")
        kwargs[name] = tuple((value, float(weight)) for value, weight in mix)
    try:
        return FleetSpec(**kwargs)
    except TypeError as exc:
        raise FleetSpecError(f"bad fleet document: {exc}") from None


def fleet_identity(fleet: FleetSpec) -> Dict[str, Any]:
    """The JSON document hashed by :func:`fleet_key` — includes the repro
    version, per the "results are only reusable for the code that produced
    them" rule the single-spec cache identity follows."""
    doc = fleet.to_dict()
    doc["schema"] = FLEET_SCHEMA
    doc["repro_version"] = __version__
    return doc


def fleet_key(fleet: FleetSpec, host_range=None) -> str:
    """Stable content hash of the fleet spec (serve-layer ledger identity).

    ``host_range`` (a ``[lo, hi)`` pair) keys one *shard* of the fleet:
    shards of the same fleet get distinct ledger identities, so a shard
    job can never be ledger-served another shard's partial aggregate.
    ``None`` — the whole fleet — hashes the identity document untouched,
    byte-identical to the pre-sharding key.
    """
    identity = fleet_identity(fleet)
    if host_range is not None:
        identity["host_range"] = [int(host_range[0]), int(host_range[1])]
    doc = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()
