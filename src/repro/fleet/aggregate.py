"""Streaming aggregation of fleet sweep results.

The :class:`FleetAggregator` consumes one
:class:`~repro.runner.pool.RunOutcome` per distinct spec identity —
weighted by how many guest slots drew that identity — and folds it
straight into mergeable state: integer nanosecond totals, integer
trust-grade / audit-verdict counters, and :class:`HistogramSketch`es of
the per-guest billing error.  Nothing per-host is ever retained, so the
peak memory of a 10k-host sweep equals that of a 10-host sweep.

Every statistic the final :meth:`report` carries is a pure function of
commutative integer state (plus per-identity floats computed identically
everywhere), so any sharding of the population across processes — or
merging partial aggregators with :meth:`merge` — reproduces the serial
report bit for bit.  The fleet determinism test pins exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ReproError
from ..metering.billing import TrustReport
from ..metering.steal import audit_result
from .expand import UnitGroup, check_host_range
from .sketch import HistogramSketch
from .spec import FleetSpec, fleet_from_dict, fleet_key

FLEET_REPORT_SCHEMA = "repro-fleet-report-v1"
FLEET_STATE_SCHEMA = "repro-fleet-state-v1"

#: Billing-error grid: ``(billed - ran) / ran`` per guest.  Honest guests
#: sit near 0; a tick-dodging co-resident burning fraction ``b`` of every
#: tick inflates the victim's bill by up to ``b / (1 - b)`` (9x at 0.9),
#: so the range covers that with room; outliers land in the overflow
#: bucket and still count.
ERROR_LO = -1.0
ERROR_HI = 15.0
ERROR_BINS = 256

_POPULATIONS = ("all", "attacked", "honest")


def _error_sketch() -> HistogramSketch:
    return HistogramSketch(ERROR_LO, ERROR_HI, bins=ERROR_BINS)


class FleetAggregator:
    """Fold weighted run outcomes into a constant-size fleet summary."""

    def __init__(self, fleet: FleetSpec,
                 host_range: Optional[Tuple[int, int]] = None) -> None:
        self.fleet = fleet
        self.host_range = check_host_range(fleet, host_range)
        #: Guest slots this aggregate actually covers.  The whole fleet
        #: when unsharded; the shard's span when restricted; the sum of
        #: merged spans after :meth:`merge` — the denominator a degraded
        #: report declares.
        if self.host_range is None:
            self.population_covered = fleet.population
        else:
            lo, hi = self.host_range
            self.population_covered = (hi - lo) * fleet.guests
        self.distinct_runs = 0
        self.failed_runs = 0
        self.failed_weight = 0
        self.cached_runs = 0
        self.billed_total_ns = 0
        self.ran_total_ns = 0
        self.overbilled_total_ns = 0
        self.error = {name: _error_sketch() for name in _POPULATIONS}
        self.trust: Dict[str, int] = {"trusted": 0, "degraded": 0,
                                      "untrusted": 0}
        self.verdicts: Dict[str, int] = {"consistent": 0, "overbilled": 0,
                                         "misreported": 0}
        self.attacked_weight = 0
        self.honest_weight = 0
        self.flagged_attacked_weight = 0
        self.flagged_honest_weight = 0

    # -- folding -------------------------------------------------------------

    def add(self, group: UnitGroup, outcome: Any) -> None:
        """Fold one distinct identity's outcome, weighted by its
        multiplicity.  ``outcome`` is the :class:`RunOutcome` the batch
        runner produced for ``group.unit.spec``."""
        weight = group.weight
        self.distinct_runs += 1
        if getattr(outcome, "cached", False):
            self.cached_runs += 1
        result = outcome.result if outcome.ok else None
        if result is None:
            self.failed_runs += 1
            self.failed_weight += weight
            return

        audit = audit_result(result)
        flagged = audit.verdict.value != "consistent"
        self.verdicts[audit.verdict.value] += weight
        self.billed_total_ns += audit.billed_ns * weight
        self.ran_total_ns += audit.ran_ns * weight
        self.overbilled_total_ns += audit.overbilling_ns * weight

        error = audit.overbilling_ns / max(audit.ran_ns, 1)
        self.error["all"].add(error, weight)
        if group.unit.attacked:
            self.attacked_weight += weight
            self.error["attacked"].add(error, weight)
            if flagged:
                self.flagged_attacked_weight += weight
        else:
            self.honest_weight += weight
            self.error["honest"].add(error, weight)
            if flagged:
                self.flagged_honest_weight += weight

        self.trust[TrustReport.from_stats(result.stats).level.value] += weight

    def merge(self, other: "FleetAggregator") -> None:
        """Fold a shard's partial aggregate in (commutative, exact)."""
        if other.fleet.to_dict() != self.fleet.to_dict():
            raise ReproError("cannot merge aggregates of different fleets")
        if self.host_range is not None or other.host_range is not None:
            # Sharded merge: coverage is additive over (assumed
            # disjoint) spans; the merged aggregate keeps no single
            # contiguous range.
            self.population_covered += other.population_covered
            self.host_range = None
        self.distinct_runs += other.distinct_runs
        self.failed_runs += other.failed_runs
        self.failed_weight += other.failed_weight
        self.cached_runs += other.cached_runs
        self.billed_total_ns += other.billed_total_ns
        self.ran_total_ns += other.ran_total_ns
        self.overbilled_total_ns += other.overbilled_total_ns
        for name in _POPULATIONS:
            self.error[name].merge(other.error[name])
        for grade, weight in other.trust.items():
            self.trust[grade] += weight
        for verdict, weight in other.verdicts.items():
            self.verdicts[verdict] += weight
        self.attacked_weight += other.attacked_weight
        self.honest_weight += other.honest_weight
        self.flagged_attacked_weight += other.flagged_attacked_weight
        self.flagged_honest_weight += other.flagged_honest_weight

    # -- reporting -----------------------------------------------------------

    @staticmethod
    def _rate(numerator: int, denominator: int) -> Optional[float]:
        if denominator == 0:
            return None
        return round(numerator / denominator, 9)

    @staticmethod
    def _summary(sketch: HistogramSketch) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"count": sketch.total}
        if sketch.total:
            doc.update(
                mean=round(sketch.mean(), 9),
                p50=round(sketch.percentile(0.50), 9),
                p90=round(sketch.percentile(0.90), 9),
                p99=round(sketch.percentile(0.99), 9),
                min=round(sketch.min, 9),
                max=round(sketch.max, 9),
            )
        doc["sketch"] = sketch.to_dict()
        return doc

    def report(self) -> Dict[str, Any]:
        """The whole sweep as one deterministic JSON document.  No wall
        times, no host lists — a pure function of the fleet spec and the
        simulator, which is what makes ``--jobs 1`` and ``--jobs 8``
        reports comparable with ``==``.

        A fully-covered aggregate emits exactly the pre-sharding key set
        (byte-identity with unsharded reports); a partial one declares
        its coverage with ``population_covered`` and audits only what it
        actually saw.
        """
        audited_weight = (self.population_covered
                          - self.failed_weight)
        doc = {
            "schema": FLEET_REPORT_SCHEMA,
            "fleet": self.fleet.to_dict(),
            "fleet_key": fleet_key(self.fleet),
            "population": self.fleet.population,
            "distinct_runs": self.distinct_runs,
            "failed_runs": self.failed_runs,
            "failed_weight": self.failed_weight,
            "audited_weight": audited_weight,
            "billed_total_ns": self.billed_total_ns,
            "ran_total_ns": self.ran_total_ns,
            "overbilled_total_ns": self.overbilled_total_ns,
            "billing_error": {name: self._summary(self.error[name])
                              for name in _POPULATIONS},
            "trust_mix": dict(self.trust),
            "verdicts": dict(self.verdicts),
            "audit": {
                "attacked_weight": self.attacked_weight,
                "honest_weight": self.honest_weight,
                "flagged_attacked_weight": self.flagged_attacked_weight,
                "flagged_honest_weight": self.flagged_honest_weight,
                "detection_rate": self._rate(self.flagged_attacked_weight,
                                             self.attacked_weight),
                "false_positive_rate": self._rate(self.flagged_honest_weight,
                                                  self.honest_weight),
            },
        }
        if self.population_covered != self.fleet.population:
            doc["population_covered"] = self.population_covered
        return doc

    # -- exact shard transport -----------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """The aggregate's *complete* internal state as plain JSON.

        Unlike :meth:`report` (a rendered summary), this is lossless:
        :meth:`from_state` rebuilds an aggregator that merges and reports
        exactly like the original — the wire format a shard ships its
        partial aggregate home in (``repro-fleet-state-v1``).
        """
        return {
            "schema": FLEET_STATE_SCHEMA,
            "fleet": self.fleet.to_dict(),
            "host_range": list(self.host_range)
            if self.host_range is not None else None,
            "population_covered": self.population_covered,
            "distinct_runs": self.distinct_runs,
            "failed_runs": self.failed_runs,
            "failed_weight": self.failed_weight,
            "cached_runs": self.cached_runs,
            "billed_total_ns": self.billed_total_ns,
            "ran_total_ns": self.ran_total_ns,
            "overbilled_total_ns": self.overbilled_total_ns,
            "error": {name: self.error[name].to_dict()
                      for name in _POPULATIONS},
            "trust": dict(self.trust),
            "verdicts": dict(self.verdicts),
            "attacked_weight": self.attacked_weight,
            "honest_weight": self.honest_weight,
            "flagged_attacked_weight": self.flagged_attacked_weight,
            "flagged_honest_weight": self.flagged_honest_weight,
        }

    @classmethod
    def from_state(cls, doc: Mapping[str, Any]) -> "FleetAggregator":
        """Inverse of :meth:`to_state` (exact round trip)."""
        if doc.get("schema") != FLEET_STATE_SCHEMA:
            raise ReproError(f"not a fleet state document: schema "
                             f"{doc.get('schema')!r}")
        fleet = fleet_from_dict(doc["fleet"])
        host_range = doc.get("host_range")
        agg = cls(fleet, host_range=tuple(host_range)
                  if host_range is not None else None)
        agg.population_covered = int(doc["population_covered"])
        agg.distinct_runs = int(doc["distinct_runs"])
        agg.failed_runs = int(doc["failed_runs"])
        agg.failed_weight = int(doc["failed_weight"])
        agg.cached_runs = int(doc["cached_runs"])
        agg.billed_total_ns = int(doc["billed_total_ns"])
        agg.ran_total_ns = int(doc["ran_total_ns"])
        agg.overbilled_total_ns = int(doc["overbilled_total_ns"])
        agg.error = {name: HistogramSketch.from_dict(doc["error"][name])
                     for name in _POPULATIONS}
        agg.trust = {grade: int(n) for grade, n in doc["trust"].items()}
        agg.verdicts = {verdict: int(n)
                        for verdict, n in doc["verdicts"].items()}
        agg.attacked_weight = int(doc["attacked_weight"])
        agg.honest_weight = int(doc["honest_weight"])
        agg.flagged_attacked_weight = int(doc["flagged_attacked_weight"])
        agg.flagged_honest_weight = int(doc["flagged_honest_weight"])
        return agg
