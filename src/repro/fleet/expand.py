"""Deterministic expansion of a :class:`FleetSpec` into experiment specs.

:func:`expand_fleet` walks the population host by host, drawing each
host's fate from its own seeded RNG stream (``fleet:<seed>:host:<i>``, so
host 17 of a 10k-host fleet is the same host in an 8-host prefix sweep),
and yields one :class:`FleetUnit` per metered guest slot.

The simulator is deterministic given a spec, so a population drawn from
finite mixes collapses to a *small* number of distinct spec identities no
matter how many hosts it covers — :func:`distinct_units` folds the
expansion stream into (unit, multiplicity) groups keyed by
:func:`~repro.runner.specs.spec_key`.  That is the trick that makes a
10k-host sweep tractable: run each distinct identity once, weight its
contribution by how many guests drew it.  Peak memory is bounded by the
mix cross-product, never by the host count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..runner.specs import ExperimentSpec, spec_key
from .spec import FleetSpec


def check_host_range(fleet: FleetSpec,
                     host_range: Optional[Tuple[int, int]]
                     ) -> Optional[Tuple[int, int]]:
    """Validate a ``[lo, hi)`` host restriction against the fleet.

    ``None`` means the whole fleet and is passed through untouched — the
    unsharded paths never see a range at all, which is what keeps them
    byte-identical to the pre-sharding code.  An empty range (``lo ==
    hi``) is legal: it is the zero-coverage seed a shard merge starts
    from.
    """
    if host_range is None:
        return None
    try:
        lo, hi = int(host_range[0]), int(host_range[1])
    except (TypeError, ValueError, IndexError):
        raise ReproError(f"host_range must be a [lo, hi) pair, "
                         f"got {host_range!r}") from None
    if not 0 <= lo <= hi <= fleet.hosts:
        raise ReproError(f"host_range {[lo, hi]} out of bounds for a "
                         f"{fleet.hosts}-host fleet")
    return (lo, hi)

#: Process-level attack mounted on attacked bare-metal hosts (the paper's
#: §IV-B1 priority/fork scheduling attack); forks scale with the workload.
BARE_ATTACK = "scheduling"
BARE_ATTACK_NICE = -20
BARE_ATTACK_FORKS = 8_000


@dataclass(frozen=True)
class FleetUnit:
    """One metered guest slot: where it lives and what it runs."""

    host: int
    guest: int
    #: ``"vm"`` (hypervisor host) or ``"bare"`` (bare-metal host).
    kind: str
    workload: str
    #: An attacker is co-resident on this unit's host.
    attacked: bool
    #: Hardware-fault intensity drawn for the host (0.0 = honest).
    intensity: float
    spec: ExperimentSpec
    #: Network sync-attack target offset drawn for the host (0 = no
    #: time plane attached).
    sync_offset_ns: int = 0


def _draw(rng: random.Random, mix: Sequence[Tuple[Any, float]]) -> Any:
    """Weighted draw — one ``rng.random()`` per call, deterministic."""
    total = sum(weight for _, weight in mix)
    x = rng.random() * total
    acc = 0.0
    for value, weight in mix:
        acc += weight
        if x < acc:
            return value
    return mix[-1][0]


def _host_rng(fleet: FleetSpec, host: int) -> random.Random:
    # Seeding from a string hashes it through sha512 (random.seed
    # version 2): stable across processes, platforms and PYTHONHASHSEED.
    return random.Random(f"fleet:{fleet.seed}:host:{host}")


def _sync_active(fleet: FleetSpec) -> bool:
    """True when the sync mix can actually draw a nonzero offset."""
    return any(offset > 0 and weight > 0
               for offset, weight in fleet.sync_mix)


def expand_fleet(fleet: FleetSpec,
                 host_range: Optional[Tuple[int, int]] = None
                 ) -> Iterator[FleetUnit]:
    """Yield every guest slot of the population, in (host, guest) order.

    ``host_range`` restricts the walk to hosts ``[lo, hi)``.  Per-host
    draws come from each host's *own* seeded stream, so a restricted
    expansion yields exactly the same units those hosts produce in the
    full walk — shards of one fleet are prefix-stable by construction.

    A generator on purpose: expansion is O(1) memory regardless of the
    host count.  Draw order per host is fixed (attacked, kind, nproc,
    intensity, burn, then one workload per guest) so adding a mix never
    reshuffles the draws of unrelated dimensions.  The sync-attack
    offset draws from its own derived stream
    (``fleet:<seed>:host:<i>:sync``) — and only when the mix can draw a
    nonzero offset — so arming the time plane changes *which hosts are
    sync-attacked* without reshuffling who is attacked, what anyone
    runs, or any all-zero-mix population.
    """
    from ..analysis.figures import paper_workload_params
    from ..faults import sweep_plan
    from ..timesync import sweep_timesync

    workload_params = paper_workload_params(fleet.scale)
    forks = max(1, int(BARE_ATTACK_FORKS * fleet.scale))
    sync_active = _sync_active(fleet)
    host_range = check_host_range(fleet, host_range)
    lo, hi = host_range if host_range is not None else (0, fleet.hosts)

    for host in range(lo, hi):
        rng = _host_rng(fleet, host)
        attacked = rng.random() < fleet.prevalence
        kind = "vm" if rng.random() < fleet.vm_fraction else "bare"
        nproc = _draw(rng, fleet.nproc_mix)
        intensity = float(_draw(rng, fleet.fault_mix))
        burn = float(_draw(rng, fleet.burn_mix))
        faults = (sweep_plan(intensity, watchdog=True).to_dict()
                  if intensity > 0 else None)
        sync_offset = 0
        if sync_active and kind == "bare":
            sync_rng = random.Random(f"fleet:{fleet.seed}:host:{host}:sync")
            sync_offset = int(_draw(sync_rng, fleet.sync_mix))
        timesync = (sweep_timesync(sync_offset).to_dict()
                    if sync_offset > 0 else None)
        for guest in range(fleet.guests):
            workload = _draw(rng, fleet.workload_mix)
            kwargs = dict(workload_params[workload])
            label = (f"fleet:h{host}:g{guest}:{kind}:{workload}"
                     f"{':attacked' if attacked else ''}"
                     f"{f':sync={sync_offset}' if sync_offset else ''}")
            if kind == "vm":
                spec = ExperimentSpec(
                    program=workload, program_kwargs=kwargs,
                    attack="vm-sched" if attacked else None,
                    attack_kwargs=({"burn_fraction": burn}
                                   if attacked else {}),
                    vm={}, faults=faults, label=label)
            else:
                spec = ExperimentSpec(
                    program=workload, program_kwargs=kwargs,
                    attack=BARE_ATTACK if attacked else None,
                    attack_kwargs=({"nice": BARE_ATTACK_NICE,
                                    "forks": forks} if attacked else {}),
                    nproc=nproc, faults=faults, timesync=timesync,
                    label=label)
            yield FleetUnit(host=host, guest=guest, kind=kind,
                            workload=workload, attacked=attacked,
                            intensity=intensity, spec=spec,
                            sync_offset_ns=sync_offset)


@dataclass(frozen=True)
class UnitGroup:
    """All guest slots sharing one spec identity."""

    key: str
    unit: FleetUnit  # the first-seen representative
    weight: int      # guest slots drawing this identity


def distinct_units(fleet: FleetSpec,
                   host_range: Optional[Tuple[int, int]] = None
                   ) -> List[UnitGroup]:
    """Fold the expansion stream into distinct-identity groups.

    First-seen order, so the downstream run/aggregate order is a pure
    function of the fleet spec (and host range, when sharded).  The
    representative keeps the first unit's host/guest coordinates; its
    label is rewritten to carry the group's weight instead, since it now
    stands for many slots.
    """
    groups: Dict[str, List[Any]] = {}
    order: List[str] = []
    for unit in expand_fleet(fleet, host_range=host_range):
        key = spec_key(unit.spec)
        entry = groups.get(key)
        if entry is None:
            groups[key] = [unit, 1]
            order.append(key)
        else:
            entry[1] += 1
    result: List[UnitGroup] = []
    for key in order:
        unit, weight = groups[key]
        label = (f"fleet:{unit.kind}:{unit.workload}"
                 f"{':attacked' if unit.attacked else ''}"
                 f"{f':i={unit.intensity}' if unit.intensity else ''}"
                 f"{f':sync={unit.sync_offset_ns}' if unit.sync_offset_ns else ''}"
                 f":x{weight}")
        unit = replace(unit, spec=replace(unit.spec, label=label))
        result.append(UnitGroup(key=key, unit=unit, weight=weight))
    return result
