"""Datacenter-scale population sweeps with streaming aggregation.

``repro.fleet`` turns a small declarative :class:`FleetSpec` (N hosts × M
guests, attacker prevalence, workload / fault / CPU-count mixes — all
seeded) into a deterministic simulated datacenter, runs the distinct spec
identities it collapses to through the standard batch runner, and folds
the population-weighted results into mergeable sketches so the report for
10k hosts costs the memory of 10.  See ``docs/fleet.md``.
"""

from .aggregate import (
    FLEET_REPORT_SCHEMA,
    FLEET_STATE_SCHEMA,
    FleetAggregator,
)
from .expand import (
    FleetUnit,
    UnitGroup,
    check_host_range,
    distinct_units,
    expand_fleet,
)
from .runner import run_fleet
from .shard import (
    FLEET_COVERAGE_SCHEMA,
    GRADE_DEGRADED,
    GRADE_PARTIAL,
    GRADE_TRUSTED,
    REPORT_GRADES,
    ShardClient,
    ShardError,
    ShardOutcome,
    ShardRequestError,
    merged_report,
    shard_fleet,
    shard_fleet_local,
    shard_ranges,
)
from .sketch import SKETCH_SCHEMA, HistogramSketch
from .spec import (
    FLEET_SCHEMA,
    FleetSpec,
    FleetSpecError,
    fleet_from_dict,
    fleet_identity,
    fleet_key,
)

__all__ = [
    "FLEET_COVERAGE_SCHEMA",
    "FLEET_REPORT_SCHEMA",
    "FLEET_SCHEMA",
    "FLEET_STATE_SCHEMA",
    "GRADE_DEGRADED",
    "GRADE_PARTIAL",
    "GRADE_TRUSTED",
    "REPORT_GRADES",
    "SKETCH_SCHEMA",
    "FleetAggregator",
    "FleetSpec",
    "FleetSpecError",
    "FleetUnit",
    "HistogramSketch",
    "ShardClient",
    "ShardError",
    "ShardOutcome",
    "ShardRequestError",
    "UnitGroup",
    "check_host_range",
    "distinct_units",
    "expand_fleet",
    "fleet_from_dict",
    "fleet_identity",
    "fleet_key",
    "merged_report",
    "run_fleet",
    "shard_fleet",
    "shard_fleet_local",
    "shard_ranges",
]
