"""Mergeable fixed-bin histogram sketches for streaming fleet aggregation.

A 10k-host sweep must never materialise a per-host result list, so every
distribution the fleet report carries (billing error, foremost) is folded
into a :class:`HistogramSketch`: a fixed, deterministic bin grid over a
declared value range with **integer** weights per bin.  Integer counts
make the sketch exactly mergeable — addition is associative and
commutative, so any sharding of the population across processes (or any
chunking order) produces the identical sketch, bin for bin, and therefore
identical percentiles.  That is the property the fleet determinism suite
pins: ``--jobs 1`` and ``--jobs 4`` aggregate reports are bit-identical.

Values outside ``[lo, hi)`` land in explicit underflow/overflow buckets
(clamped to the range edges by the percentile query), and exact min/max
are tracked separately — min/max are order-independent too, so merging
stays exact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

SKETCH_SCHEMA = "repro-hist-sketch-v1"


class HistogramSketch:
    """Fixed-bin histogram with integer weights over ``[lo, hi)``."""

    __slots__ = ("lo", "hi", "bins", "width", "counts", "underflow",
                 "overflow", "_min", "_max")

    def __init__(self, lo: float, hi: float, bins: int = 64) -> None:
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi})")
        if bins < 1:
            raise ValueError("need at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.width = (self.hi - self.lo) / self.bins
        self.counts: List[int] = [0] * self.bins
        self.underflow = 0
        self.overflow = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- building ----------------------------------------------------------

    def add(self, value: float, weight: int = 1) -> None:
        if weight < 0:
            raise ValueError("weight must be >= 0")
        if weight == 0:
            return
        value = float(value)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value < self.lo:
            self.underflow += weight
        elif value >= self.hi:
            self.overflow += weight
        else:
            index = int((value - self.lo) / self.width)
            # Guard the right edge against float rounding.
            if index >= self.bins:  # pragma: no cover - rounding edge
                index = self.bins - 1
            self.counts[index] += weight

    def merge(self, other: "HistogramSketch") -> None:
        """Fold another sketch in (must share the exact bin grid)."""
        if (other.lo, other.hi, other.bins) != (self.lo, self.hi, self.bins):
            raise ValueError(
                f"cannot merge sketches with different grids: "
                f"[{self.lo}, {self.hi})x{self.bins} vs "
                f"[{other.lo}, {other.hi})x{other.bins}")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.underflow += other.underflow
        self.overflow += other.overflow
        for value in (other._min, other._max):
            if value is None:
                continue
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    # -- queries -----------------------------------------------------------

    @property
    def total(self) -> int:
        return self.underflow + sum(self.counts) + self.overflow

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def percentile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1], linearly interpolated
        within the containing bin (range edges for the outlier buckets).
        Deterministic in the bin counts alone."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total == 0:
            return 0.0
        target = q * total
        acc = float(self.underflow)
        if target <= acc and self.underflow:
            return self._min if self._min is not None else self.lo
        for index, count in enumerate(self.counts):
            if count and target <= acc + count:
                frac = (target - acc) / count
                return self.lo + (index + frac) * self.width
            acc += count
        return self._max if self._max is not None else self.hi

    def mean(self) -> float:
        """Bin-midpoint mean (outlier buckets at the range edges)."""
        total = self.total
        if total == 0:
            return 0.0
        acc = self.underflow * self.lo + self.overflow * self.hi
        for index, count in enumerate(self.counts):
            if count:
                acc += count * (self.lo + (index + 0.5) * self.width)
        return acc / total

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Sparse, deterministic JSON form (zero bins omitted)."""
        return {
            "schema": SKETCH_SCHEMA,
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "counts": {str(i): c for i, c in enumerate(self.counts) if c},
            "underflow": self.underflow,
            "overflow": self.overflow,
            "min": self._min,
            "max": self._max,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "HistogramSketch":
        sketch = cls(doc["lo"], doc["hi"], doc["bins"])
        for index, count in doc.get("counts", {}).items():
            sketch.counts[int(index)] = int(count)
        sketch.underflow = int(doc.get("underflow", 0))
        sketch.overflow = int(doc.get("overflow", 0))
        sketch._min = doc.get("min")
        sketch._max = doc.get("max")
        return sketch
