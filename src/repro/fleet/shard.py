"""Cross-machine sharding of one fleet sweep, with failover and
degraded-but-bounded reports.

:func:`shard_ranges` partitions a fleet's hosts into contiguous
``[lo, hi)`` spans.  Because every host draws from its own seeded RNG
stream, a shard expands to exactly the units those hosts produce in the
full walk — so running the spans anywhere (in-process threads or remote
``repro serve`` daemons) and merging the partial
:class:`~repro.fleet.aggregate.FleetAggregator` states reproduces the
serial totals exactly.

The interesting case is when a shard *doesn't* come home.  The paper's
posture — degrade and declare rather than silently misreport — applies
to the report itself: :func:`merged_report` folds whatever shards
completed, declares ``hosts_covered``/``population_covered``, lists
per-shard status, and grades the whole report:

* ``TRUSTED`` — full coverage, not a single fault absorbed on the way;
* ``DEGRADED`` — full coverage, but only because retries/failover
  absorbed faults (the numbers are exact; the path was not clean);
* ``PARTIAL`` — one or more shards stayed dark past their retry budget;
  totals cover only the declared population.

:class:`ShardClient` drives remote shards over the serve API with
bounded per-request retries (:func:`~repro.chaos.resilience.retry_call`),
endpoint failover, idempotent submission keyed by
``fleet_key(fleet, host_range)`` and job-level crash retry
(``POST /v1/jobs/{id}/retry``) — every recovery path the chaos gauntlet
exercises under injected faults.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..chaos.resilience import BackoffPolicy, retry_call
from .aggregate import FLEET_REPORT_SCHEMA, FleetAggregator
from .runner import run_fleet
from .spec import FleetSpec, fleet_key

FLEET_COVERAGE_SCHEMA = "repro-fleet-coverage-v1"

#: Report grades, best to worst (mirrors invoice trust grades).
GRADE_TRUSTED = "TRUSTED"
GRADE_DEGRADED = "DEGRADED"
GRADE_PARTIAL = "PARTIAL"
REPORT_GRADES = (GRADE_TRUSTED, GRADE_DEGRADED, GRADE_PARTIAL)

#: Default tenant name the shard client registers on each endpoint.
SHARD_TENANT = "fleet-shards"


class ShardError(ReproError):
    """A shard could not be completed within its retry budget."""


class ShardRequestError(ReproError):
    """One HTTP request to a shard endpoint failed.

    ``retryable`` distinguishes transient transport/5xx failures (worth
    another attempt) from protocol-level rejections (4xx: retrying the
    same request can only fail the same way).
    """

    def __init__(self, message: str, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


class RetryableShardError(ShardRequestError):
    """Marker subclass: what :func:`retry_call` retries for the client."""


def shard_ranges(hosts: int, shards: int) -> List[Tuple[int, int]]:
    """Partition ``hosts`` into ``shards`` contiguous ``[lo, hi)`` spans.

    Balanced to within one host and prefix-stable: shard ``i`` of ``N``
    is ``[floor(i*hosts/N), floor((i+1)*hosts/N))``, a pure function of
    (hosts, shards) every participant computes identically.
    """
    if hosts < 1:
        raise ReproError(f"hosts must be >= 1, got {hosts}")
    if shards < 1:
        raise ReproError(f"shards must be >= 1, got {shards}")
    if shards > hosts:
        raise ReproError(f"cannot split {hosts} hosts into {shards} "
                         f"shards (at most one shard per host)")
    return [(i * hosts // shards, (i + 1) * hosts // shards)
            for i in range(shards)]


class ShardOutcome:
    """What happened to one shard: its span, status and (if ok) state."""

    def __init__(self, index: int, host_range: Tuple[int, int]) -> None:
        self.index = index
        self.host_range = host_range
        self.status = "failed"          # "ok" | "failed"
        self.attempts = 0
        self.endpoint: Optional[str] = None
        self.error: Optional[str] = None
        self.faults_absorbed = 0
        self.state: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.index,
            "hosts": [self.host_range[0], self.host_range[1]],
            "status": self.status,
            "attempts": self.attempts,
            "endpoint": self.endpoint,
            "error": self.error,
            "faults_absorbed": self.faults_absorbed,
        }


# -- remote shard client ---------------------------------------------------


def _http_json(method: str, url: str, body: Optional[Dict[str, Any]],
               timeout_s: float) -> Dict[str, Any]:
    """One JSON round trip; raises :class:`ShardRequestError` on any
    failure, marked retryable for transport faults and 5xx."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            raw = response.read()
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = exc.read().decode("utf-8", "replace")[:200]
        except Exception:
            pass
        retryable = exc.code >= 500
        cls = RetryableShardError if retryable else ShardRequestError
        raise cls(f"{method} {url} -> {exc.code}: {detail}",
                  retryable=retryable) from None
    except (urllib.error.URLError, ConnectionError, socket.timeout,
            http.client.HTTPException, OSError) as exc:
        raise RetryableShardError(
            f"{method} {url} failed: {type(exc).__name__}: {exc}") from None
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # A truncated/reset response lands here: retryable by definition.
        raise RetryableShardError(
            f"{method} {url} returned undecodable body: {exc}") from None


class ShardClient:
    """Run fleet shards against ``repro serve`` endpoints.

    One shard = one serve fleet job restricted to a host range.  Each
    HTTP request runs under the backoff policy; a failed job is re-driven
    through the server's retry route; if an endpoint stays dark the
    client fails over to the other endpoints (unless pinned).  All
    recovery is *bounded*: when the budget runs out the shard is reported
    failed and the merged report declares the gap instead of hiding it.
    """

    def __init__(self, endpoints: Sequence[str],
                 policy: Optional[BackoffPolicy] = None,
                 tenant: str = SHARD_TENANT,
                 request_timeout_s: float = 30.0,
                 deadline_s: float = 120.0,
                 poll_interval_s: float = 0.05,
                 failover: bool = True,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not endpoints:
            raise ReproError("shard client needs at least one endpoint")
        self.endpoints = [str(e).rstrip("/") for e in endpoints]
        self.policy = policy or BackoffPolicy()
        self.tenant = tenant
        self.request_timeout_s = request_timeout_s
        self.deadline_s = deadline_s
        self.poll_interval_s = poll_interval_s
        self.failover = failover
        self._sleep = sleep
        self._tenant_ids: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- one bounded-retry request ------------------------------------------

    def _request(self, outcome: ShardOutcome, method: str, url: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        def attempt() -> Dict[str, Any]:
            return _http_json(method, url, body, self.request_timeout_s)

        def absorbed(attempt_no: int, exc: BaseException) -> None:
            outcome.faults_absorbed += 1

        return retry_call(attempt, self.policy,
                          retry_on=(RetryableShardError,),
                          sleep=self._sleep, on_retry=absorbed)

    def _tenant_id(self, outcome: ShardOutcome, endpoint: str) -> str:
        with self._lock:
            cached = self._tenant_ids.get(endpoint)
        if cached is not None:
            return cached
        # Registration is not idempotent on the server, so look first,
        # and treat a "already registered" 400 as a lost race to re-look.
        doc = self._request(outcome, "GET", f"{endpoint}/v1/tenants")
        tid = next((t["tenant_id"] for t in doc.get("tenants", [])
                    if t["name"] == self.tenant), None)
        if tid is None:
            try:
                created = self._request(outcome, "POST",
                                        f"{endpoint}/v1/tenants",
                                        {"name": self.tenant})
                tid = created["tenant_id"]
            except ShardRequestError as exc:
                if "already registered" not in str(exc):
                    raise
                doc = self._request(outcome, "GET",
                                    f"{endpoint}/v1/tenants")
                tid = next(t["tenant_id"] for t in doc.get("tenants", [])
                           if t["name"] == self.tenant)
        with self._lock:
            self._tenant_ids[endpoint] = tid
        return tid

    # -- one shard ----------------------------------------------------------

    def _run_on_endpoint(self, outcome: ShardOutcome, endpoint: str,
                         fleet: FleetSpec, deadline: float
                         ) -> Dict[str, Any]:
        lo, hi = outcome.host_range
        key = fleet_key(fleet, host_range=outcome.host_range)
        tid = self._tenant_id(outcome, endpoint)
        job = self._request(
            outcome, "POST", f"{endpoint}/v1/tenants/{tid}/fleet",
            {"fleet": fleet.to_dict(), "host_range": [lo, hi],
             "wait": False, "idempotency_key": f"shard:{key[:16]}:{lo}-{hi}"})
        job_id = job["job_id"]
        job_retries = 0
        while True:
            if time.monotonic() > deadline:
                raise ShardError(f"shard {outcome.index} missed its "
                                 f"{self.deadline_s:g}s deadline on "
                                 f"{endpoint}")
            job = self._request(outcome, "GET",
                                f"{endpoint}/v1/jobs/{job_id}")
            state = job["state"]
            if state == "completed":
                result = job.get("result") or {}
                state_doc = result.get("fleet_state")
                if state_doc is None:
                    raise ShardError(f"shard {outcome.index}: job "
                                     f"{job_id} completed without a "
                                     f"fleet_state")
                return state_doc
            if state == "failed":
                # A worker crash (injected or real) left the job failed;
                # re-dispatch through the idempotent billing path.
                if job_retries >= self.policy.retries:
                    raise ShardError(
                        f"shard {outcome.index}: job {job_id} still "
                        f"failed after {job_retries} retries: "
                        f"{job.get('error')}")
                job_retries += 1
                outcome.faults_absorbed += 1
                self._request(outcome, "POST",
                              f"{endpoint}/v1/jobs/{job_id}/retry",
                              {"wait": False})
            elif state == "rejected":
                raise ShardError(f"shard {outcome.index}: job {job_id} "
                                 f"rejected: {job.get('error')}")
            self._sleep(self.poll_interval_s)

    def run_shard(self, fleet: FleetSpec, index: int,
                  host_range: Tuple[int, int]) -> ShardOutcome:
        """Drive one shard to completion (or bounded failure)."""
        outcome = ShardOutcome(index, host_range)
        deadline = time.monotonic() + self.deadline_s
        preferred = self.endpoints[index % len(self.endpoints)]
        candidates = [preferred]
        if self.failover:
            candidates += [e for e in self.endpoints if e != preferred]
        last_error: Optional[BaseException] = None
        for endpoint in candidates:
            outcome.attempts += 1
            if endpoint != preferred:
                outcome.faults_absorbed += 1  # failover absorbed a fault
            try:
                outcome.state = self._run_on_endpoint(
                    outcome, endpoint, fleet, deadline)
                outcome.status = "ok"
                outcome.endpoint = endpoint
                outcome.error = None
                return outcome
            except (ShardError, ShardRequestError) as exc:
                last_error = exc
                outcome.endpoint = endpoint
                outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.status = "failed"
        if last_error is None:  # pragma: no cover - defensive
            outcome.error = "no endpoint attempted"
        return outcome


# -- merging and grading ---------------------------------------------------


def merged_report(fleet: FleetSpec, outcomes: Sequence[ShardOutcome],
                  shards: int) -> Dict[str, Any]:
    """Merge completed shards and grade the result.

    Always returns a ``repro-fleet-report-v1`` document: full-coverage
    merges carry the exact serial totals; partial ones declare what they
    cover under the ``coverage`` section and audit only that population.
    """
    merged = FleetAggregator(fleet, host_range=(0, 0))
    hosts_covered = 0
    faults_absorbed = 0
    for outcome in sorted(outcomes, key=lambda o: o.index):
        if outcome.status != "ok" or outcome.state is None:
            # A dark shard's faults were not absorbed — they are
            # *declared*, via its status entry and the coverage gap.
            continue
        faults_absorbed += outcome.faults_absorbed
        merged.merge(FleetAggregator.from_state(outcome.state))
        hosts_covered += outcome.host_range[1] - outcome.host_range[0]
    report = merged.report()
    shards_ok = sum(1 for o in outcomes if o.status == "ok")
    if hosts_covered < fleet.hosts:
        grade = GRADE_PARTIAL
    elif faults_absorbed > 0:
        grade = GRADE_DEGRADED
    else:
        grade = GRADE_TRUSTED
    report["coverage"] = {
        "schema": FLEET_COVERAGE_SCHEMA,
        "grade": grade,
        "shards_total": shards,
        "shards_ok": shards_ok,
        "shards_failed": len(outcomes) - shards_ok,
        "hosts_total": fleet.hosts,
        "hosts_covered": hosts_covered,
        "population": fleet.population,
        "population_covered": merged.population_covered,
        "faults_absorbed": faults_absorbed,
        "shards": [o.to_dict() for o in outcomes],
    }
    return report


# -- entry points ----------------------------------------------------------


def shard_fleet_local(fleet: FleetSpec, shards: int, jobs: int = 1,
                      **run_kwargs: Any) -> Dict[str, Any]:
    """Shard a fleet across in-process threads (``repro fleet --shards``).

    No HTTP, no faults to absorb: each shard runs
    :func:`~repro.fleet.runner.run_fleet` over its host span concurrently
    and the merge is exact — the merged totals equal the serial run's.
    """
    ranges = shard_ranges(fleet.hosts, shards)
    outcomes = [ShardOutcome(i, r) for i, r in enumerate(ranges)]

    def run_one(outcome: ShardOutcome) -> None:
        outcome.attempts = 1
        try:
            agg = run_fleet(fleet, jobs=jobs,
                            host_range=outcome.host_range, **run_kwargs)
            outcome.state = agg.to_state()
            outcome.status = "ok"
            outcome.endpoint = "local"
        except Exception as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"

    threads = [threading.Thread(target=run_one, args=(o,),
                                name=f"repro-fleet-shard-{o.index}")
               for o in outcomes]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return merged_report(fleet, outcomes, shards)


def shard_fleet(fleet: FleetSpec, endpoints: Sequence[str],
                shards: Optional[int] = None,
                client: Optional[ShardClient] = None,
                **client_kwargs: Any) -> Dict[str, Any]:
    """Shard a fleet across remote serve endpoints and merge the states.

    Shards run concurrently (one thread per shard — the real work happens
    on the servers); a shard that stays dark past the client's retry
    budget is declared in the report's coverage section instead of
    failing the whole sweep.
    """
    if shards is None:
        shards = len(endpoints)
    ranges = shard_ranges(fleet.hosts, shards)
    if client is None:
        client = ShardClient(endpoints, **client_kwargs)
    outcomes: List[Optional[ShardOutcome]] = [None] * len(ranges)

    def run_one(index: int, host_range: Tuple[int, int]) -> None:
        outcomes[index] = client.run_shard(fleet, index, host_range)

    threads = [threading.Thread(target=run_one, args=(i, r),
                                name=f"repro-fleet-shard-{i}")
               for i, r in enumerate(ranges)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    done = [o for o in outcomes if o is not None]
    return merged_report(fleet, done, shards)
