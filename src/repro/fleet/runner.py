"""Drive a fleet sweep: expand, dedup, fan out, aggregate streamingly.

:func:`run_fleet` is the one entry point everything above it (CLI, figure,
serve endpoint, benches) shares.  It folds the population into distinct
spec identities (bounded by the mix cross-product, not the host count),
runs them in fixed-size chunks through the ordinary
:class:`~repro.runner.BatchRunner` — so fleet sweeps get the same result
cache, per-point timeouts, bounded retries and progress telemetry as every
other sweep — and streams each chunk's outcomes into a
:class:`FleetAggregator`.  At no point does a per-host result list exist:
peak memory is O(distinct identities + chunk), independent of ``hosts``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..runner.cache import ResultCache
from ..runner.pool import BatchRunner
from .aggregate import FleetAggregator
from .expand import UnitGroup, distinct_units
from .spec import FleetSpec

#: Specs submitted to the batch runner per chunk — small enough that the
#: in-flight outcome list stays trivial, large enough to keep a wide pool
#: busy between chunk barriers.
DEFAULT_CHUNK = 64


def run_fleet(fleet: FleetSpec,
              jobs: int = 1,
              cache: Optional[ResultCache] = None,
              timeout_s: Optional[float] = None,
              retries: int = 0,
              progress: Optional[object] = None,
              chunk_size: int = DEFAULT_CHUNK,
              runner: Optional[BatchRunner] = None,
              host_range: Optional[Tuple[int, int]] = None
              ) -> FleetAggregator:
    """Run the whole fleet and return its loaded aggregator.

    The caller renders ``.report()`` — kept separate so the serve layer
    can also bill from the aggregate totals.  Passing ``runner`` (the
    figures do) overrides the other runner knobs wholesale.
    ``host_range`` runs one shard (hosts ``[lo, hi)``) and returns a
    partial aggregator whose :meth:`~FleetAggregator.to_state` another
    process can merge — the cross-machine sharding path (docs/chaos.md).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    groups = distinct_units(fleet, host_range=host_range)
    aggregator = FleetAggregator(fleet, host_range=host_range)
    if runner is None:
        runner = BatchRunner(jobs=jobs, cache=cache, timeout_s=timeout_s,
                             retries=retries, progress=progress)
    for start in range(0, len(groups), chunk_size):
        chunk: List[UnitGroup] = groups[start:start + chunk_size]
        outcomes = runner.run([group.unit.spec for group in chunk])
        for group, outcome in zip(chunk, outcomes):
            aggregator.add(group, outcome)
    return aggregator
