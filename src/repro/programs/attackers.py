"""Attack helper programs run by the dishonest server.

* :func:`make_fork_attacker` — the "Fork" program of the process-scheduling
  attack (§IV-B1): fork a do-nothing child, wait for it, repeat.  Both
  parent and children relinquish the CPU many times per jiffy, so their
  cycles are sampled into whoever *is* running at tick time — the victim.
* :func:`make_memhog` — the exception-flooding attack's memory hog
  (§IV-B4): map more anonymous memory than the machine has RAM and keep
  writing and re-reading it, forcing the victim's pages out to swap.
* :func:`make_busyloop` — a plain CPU burner, used as a fair-competition
  control in the scheduling experiments.
"""

from __future__ import annotations

from .base import GuestContext, Program
from .ops import Compute, Mem, Syscall

#: Parent-side cycles per fork iteration besides the syscalls themselves.
FORK_LOOP_OVERHEAD_CYCLES = 1_200

DEFAULT_FORKS = 1 << 14


def _fork_main(ctx: GuestContext):
    forks, nice = ctx.argv
    if nice is not None:
        result = yield Syscall("setpriority", (nice,))
        ctx.shared["setpriority_result"] = result
    for _ in range(forks):
        yield Compute(FORK_LOOP_OVERHEAD_CYCLES)
        child_pid = yield Syscall("fork", (None,))
        if isinstance(child_pid, int) and child_pid > 0:
            yield Syscall("waitpid", (child_pid,))
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_fork_attacker(forks: int = DEFAULT_FORKS,
                       nice: int = None) -> Program:
    """The "Fork" program.  ``nice`` < 0 requires running it as root."""
    return Program(
        "Fork",
        _fork_main,
        data_symbols={},
        needed_libs=("libc",),
        argv=(forks, nice),
    )


def _memhog_main(ctx: GuestContext):
    pages, passes, stride_pages = ctx.argv
    base = yield Syscall("mmap", (pages, "hog"))
    if not isinstance(base, int) or base < 0:
        return 1
    page_size = 4096
    for _ in range(passes):
        # Write sweep: dirty every stride-th page (forces allocation, and
        # re-allocation after reclaim)...
        for page in range(0, pages, stride_pages):
            yield Mem(base + page * page_size, write=True)
            yield Compute(2_000)
        # ...then read them back so reclaimed pages major-fault in again.
        for page in range(0, pages, stride_pages):
            yield Mem(base + page * page_size, write=False)
            yield Compute(1_000)
    yield Syscall("munmap", (base,))
    return 0


def make_memhog(pages: int, passes: int = 4,
                stride_pages: int = 1) -> Program:
    """The memory hog.  Size ``pages`` above the machine's RAM to force
    continuous swapping ("requests more than 2 gigabytes ... continuously
    writes data and reads them later")."""
    return Program(
        "memhog",
        _memhog_main,
        data_symbols={},
        needed_libs=("libc",),
        argv=(pages, passes, stride_pages),
    )


def _smp_dodger_main(ctx: GuestContext):
    total_cycles, tick_ns, nproc, freq_hz, guard_ns = ctx.argv
    remaining = total_cycles
    while remaining > 0:
        now = yield Syscall("clock_gettime")
        cpu = yield Syscall("getcpu")
        # Per-CPU ticks are staggered: CPU c ticks on the grid
        # k * tick + c * tick / nproc.  Predict the next *local* tick.
        offset = cpu * tick_ns // nproc
        next_tick = ((now - offset) // tick_ns + 1) * tick_ns + offset
        window_ns = next_tick - now - guard_ns
        if window_ns <= 0:
            # Already inside the guard band: hop immediately (harmless
            # no-op on a uniprocessor, where the attack cannot work).
            yield Syscall("migrate", ((cpu + 1) % nproc,))
            continue
        burn = min(remaining, window_ns * freq_hz // 1_000_000_000)
        if burn > 0:
            yield Compute(burn)
            remaining -= burn
        yield Syscall("migrate", ((cpu + 1) % nproc,))
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_smp_dodger(total_cycles: int, tick_ns: int, nproc: int,
                    freq_hz: int, guard_ns: int = 40_000) -> Program:
    """The cross-CPU tick dodger (SMP scheduling attack): burn until just
    before the current CPU's next timer tick, then migrate to the next
    CPU, whose staggered tick is furthest away.  Its cycles are real, but
    no per-CPU tick ever samples it — tick accounting bills ~nothing."""
    return Program(
        "smp-dodger",
        _smp_dodger_main,
        data_symbols={},
        needed_libs=("libc",),
        argv=(total_cycles, tick_ns, nproc, freq_hz, guard_ns),
    )


def _pinned_burner_main(ctx: GuestContext):
    cpu, total_cycles, chunk = ctx.argv
    yield Syscall("migrate", (cpu,))
    remaining = total_cycles
    while remaining > 0:
        burn = min(chunk, remaining)
        yield Compute(burn)
        remaining -= burn
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_pinned_burner(cpu: int, total_cycles: int = 2_000_000_000,
                       chunk: int = 10_000_000) -> Program:
    """A busyloop pinned to ``cpu`` — the IRQ-steering attacker's own
    workload, parked away from the CPU the steered interrupts land on."""
    return Program(
        "pinned-burner",
        _pinned_burner_main,
        data_symbols={},
        needed_libs=("libc",),
        argv=(cpu, total_cycles, chunk),
    )


def _busyloop_main(ctx: GuestContext):
    total_cycles, chunk = ctx.argv
    remaining = total_cycles
    while remaining > 0:
        burn = min(chunk, remaining)
        yield Compute(burn)
        remaining -= burn
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_busyloop(total_cycles: int = 2_000_000_000,
                  chunk: int = 10_000_000) -> Program:
    """A plain CPU burner (control for the scheduling experiments)."""
    return Program(
        "busyloop",
        _busyloop_main,
        data_symbols={},
        needed_libs=("libc",),
        argv=(total_cycles, chunk),
    )
