"""Guest programs: the op language and the workload models.

Guest code is written as Python generator functions that *yield* ops
(:class:`~repro.programs.ops.Compute`, :class:`~repro.programs.ops.Mem`,
:class:`~repro.programs.ops.Syscall`, ...).  The kernel's execution engine
consumes the ops, advancing simulated time, taking page faults, handling
interrupts and delivering signals exactly where a real CPU would.
"""

from .ops import (
    CallLib,
    CallNext,
    Compute,
    Invoke,
    Mem,
    Op,
    Provenance,
    Syscall,
)
from .base import GuestContext, GuestFunction, Program

__all__ = [
    "CallLib",
    "CallNext",
    "Compute",
    "Invoke",
    "Mem",
    "Op",
    "Provenance",
    "Syscall",
    "GuestContext",
    "GuestFunction",
    "Program",
]
