"""Workload registry: the paper's four test programs plus attack helpers.

The evaluation figures all plot the programs in the order O, P, W, B; the
registry preserves that order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .base import Program
from .attackers import make_busyloop, make_fork_attacker, make_memhog
from .brute import COUNT_VAR, make_brute
from .ourprogram import LOOP_VAR, make_ourprogram
from .pi import Y_VAR, make_pi
from .whetstone import T1_VAR, make_whetstone

#: name → (factory, watched-variable) for the four evaluation programs,
#: in the paper's plotting order.
PAPER_PROGRAMS: Dict[str, Tuple[Callable[..., Program], str]] = {
    "O": (make_ourprogram, LOOP_VAR),
    "P": (make_pi, Y_VAR),
    "W": (make_whetstone, T1_VAR),
    "B": (make_brute, COUNT_VAR),
}


def paper_program_names() -> List[str]:
    return list(PAPER_PROGRAMS)


def make_paper_program(name: str, **kwargs) -> Program:
    """Build one of O/P/W/B with optional size overrides."""
    factory, _ = PAPER_PROGRAMS[name]
    return factory(**kwargs)


def watched_variable(name: str) -> str:
    """The hot variable the thrashing attack watches in program ``name``."""
    _, var = PAPER_PROGRAMS[name]
    return var


__all__ = [
    "PAPER_PROGRAMS",
    "paper_program_names",
    "make_paper_program",
    "watched_variable",
    "make_ourprogram",
    "make_pi",
    "make_whetstone",
    "make_brute",
    "make_fork_attacker",
    "make_memhog",
    "make_busyloop",
]
