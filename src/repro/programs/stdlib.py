"""Models of the standard shared libraries (libc, libm, libcrypto, libpthread).

These are the *genuine* libraries the platform ships.  Their functions burn
realistic cycle counts and interact with the kernel exactly where the real
ones would (``malloc`` grows the break and touches pages; ``pthread_create``
clones a thread; ``dlopen`` loads a library and runs its constructor).

Cycle costs are order-of-magnitude figures for a 2008-era x86; only ratios
matter (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Tuple

from ..kernel.loader.library import SharedLibrary
from ..kernel.loader.registry import LibraryRegistry
from ..kernel.mm.vm import HEAP_BASE
from .base import GuestContext, GuestFunction
from .ops import Compute, Mem, Provenance, Syscall

# -- cycle costs --------------------------------------------------------------

MALLOC_CYCLES = 120
FREE_CYCLES = 80
SQRT_CYCLES = 60
TRIG_CYCLES = 110
EXP_CYCLES = 140
MD5_BLOCK_CYCLES = 680       # one 64-byte MD5 compression
SHA256_BLOCK_CYCLES = 1_450
MEMCPY_CYCLES_PER_KB = 90
PRINTF_CYCLES = 2_200

#: malloc grows the break in chunks, like a real arena.
_ARENA_CHUNK = 256 * 1024
_ALIGN = 16


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


# -- libc ---------------------------------------------------------------------

def _malloc(ctx: GuestContext, size: int):
    """Bump allocator over brk, modelling glibc's main arena."""
    yield Compute(MALLOC_CYCLES)
    if size <= 0:
        return 0
    state = ctx.libc
    if "bump" not in state:
        state["bump"] = HEAP_BASE
        state["brk_top"] = HEAP_BASE
    need = _align(size)
    if state["bump"] + need > state["brk_top"]:
        grow = max(need, _ARENA_CHUNK)
        new_brk = yield Syscall("brk", (grow,))
        if not isinstance(new_brk, int) or new_brk < 0:
            return 0  # NULL: allocation failed
        state["brk_top"] = new_brk
    ptr = state["bump"]
    state["bump"] += need
    # Write the chunk header; first touch of a page minor-faults here,
    # exactly where glibc would.
    yield Mem(ptr, write=True)
    return ptr


def _free(ctx: GuestContext, ptr: int):
    yield Compute(FREE_CYCLES)
    return None


def _memcpy(ctx: GuestContext, dst: int, src: int, nbytes: int):
    kb = max(1, nbytes // 1024)
    yield Compute(MEMCPY_CYCLES_PER_KB * kb)
    yield Mem(src, write=False)
    yield Mem(dst, write=True)
    return dst


def _printf(ctx: GuestContext, *args):
    yield Compute(PRINTF_CYCLES)
    return len(args)


def _dlopen(ctx: GuestContext, name: str):
    """Runtime library loading: ld.so work plus the constructor, both in
    user mode inside the calling process (paper §III-C)."""
    lib = yield Syscall("_dl_load", (name,))
    if isinstance(lib, int):
        return 0  # NULL: lookup failed
    from ..kernel.loader.linker import load_library_ops

    from ..config import CostModel

    for op in load_library_ops(lib, ctx.shared.get("_costs") or CostModel()):
        yield op
    return lib


def _dlclose(ctx: GuestContext, lib):
    from ..kernel.loader.linker import unload_library_ops

    for op in unload_library_ops(lib):
        yield op
    result = yield Syscall("_dl_unload", (lib,))
    return result


def _libc_ctor(ctx: GuestContext):
    """__libc_csu_init: locale tables, malloc arena setup."""
    yield Compute(25_000)
    return None


def _libc_dtor(ctx: GuestContext):
    yield Compute(8_000)
    return None


# -- libm ------------------------------------------------------------------------

def _sqrt(ctx: GuestContext, x: float = 2.0):
    yield Compute(SQRT_CYCLES)
    return float(abs(x)) ** 0.5


def _sin(ctx: GuestContext, x: float = 0.0):
    yield Compute(TRIG_CYCLES)
    return x - x ** 3 / 6.0  # small-angle flavour; value is irrelevant


def _cos(ctx: GuestContext, x: float = 0.0):
    yield Compute(TRIG_CYCLES)
    return 1.0 - x ** 2 / 2.0


def _exp(ctx: GuestContext, x: float = 0.0):
    yield Compute(EXP_CYCLES)
    return 1.0 + x + x ** 2 / 2.0


def _log(ctx: GuestContext, x: float = 1.0):
    yield Compute(EXP_CYCLES)
    return x - 1.0


# -- libcrypto --------------------------------------------------------------------

def _md5_block(ctx: GuestContext, blocks: int = 1):
    yield Compute(MD5_BLOCK_CYCLES * max(1, blocks))
    return blocks


def _sha256_block(ctx: GuestContext, blocks: int = 1):
    yield Compute(SHA256_BLOCK_CYCLES * max(1, blocks))
    return blocks


# -- libpthread -------------------------------------------------------------------

def _pthread_create(ctx: GuestContext, fn: GuestFunction, args: Tuple = ()):
    yield Compute(2_500)
    tid = yield Syscall("clone_thread", (fn, args))
    return tid


def _pthread_join(ctx: GuestContext, tid: int):
    yield Compute(600)
    result = yield Syscall("waitpid", (tid,))
    if isinstance(result, tuple):
        return result[1][1]  # the thread's exit code
    return result


# -- assembly ----------------------------------------------------------------------

def _fn(name: str, factory) -> GuestFunction:
    return GuestFunction(name, factory, Provenance.LIB)


def make_libc() -> SharedLibrary:
    return SharedLibrary(
        "libc",
        symbols={
            "malloc": _fn("libc.malloc", _malloc),
            "free": _fn("libc.free", _free),
            "memcpy": _fn("libc.memcpy", _memcpy),
            "printf": _fn("libc.printf", _printf),
            "dlopen": _fn("libc.dlopen", _dlopen),
            "dlclose": _fn("libc.dlclose", _dlclose),
        },
        constructor=_fn("libc.ctor", _libc_ctor),
        destructor=_fn("libc.dtor", _libc_dtor),
        version="2.9",
    )


def make_libm() -> SharedLibrary:
    return SharedLibrary(
        "libm",
        symbols={
            "sqrt": _fn("libm.sqrt", _sqrt),
            "sin": _fn("libm.sin", _sin),
            "cos": _fn("libm.cos", _cos),
            "exp": _fn("libm.exp", _exp),
            "log": _fn("libm.log", _log),
        },
        version="2.9",
    )


def make_libcrypto() -> SharedLibrary:
    return SharedLibrary(
        "libcrypto",
        symbols={
            "md5_block": _fn("libcrypto.md5_block", _md5_block),
            "sha256_block": _fn("libcrypto.sha256_block", _sha256_block),
        },
        version="0.9.8",
    )


def make_libpthread() -> SharedLibrary:
    return SharedLibrary(
        "libpthread",
        symbols={
            "pthread_create": _fn("libpthread.pthread_create", _pthread_create),
            "pthread_join": _fn("libpthread.pthread_join", _pthread_join),
        },
        version="2.9",
    )


STANDARD_LIBRARIES = ("libc", "libm", "libcrypto", "libpthread")


def install_standard_libraries(registry: LibraryRegistry) -> None:
    """Install pristine copies of every standard library."""
    for make in (make_libc, make_libm, make_libcrypto, make_libpthread):
        lib = make()
        if not registry.has(lib.name):
            registry.install(lib)
