"""Workload P: an open-source pi calculator (arctan-series flavour).

Models the "Pi" program [18] of the paper's evaluation: digit-chunk
computation with a hot accumulator variable ``y`` touched on every inner
step ("we choose variable y ... accessed about 10^7 times") and occasional
``sqrt`` calls and buffer allocations.

Scaled down: ``chunks`` outer chunks, each doing ``y_touches_per_chunk``
memory touches of ``y`` and one chunk of series arithmetic.
"""

from __future__ import annotations

from .base import GuestContext, Program
from .ops import CallLib, Compute, Mem, Syscall

#: The hot accumulator watched by the thrashing attack.
Y_VAR = "y"

DEFAULT_CHUNKS = 400
DEFAULT_Y_TOUCHES = 60
DEFAULT_CYCLES_PER_CHUNK = 9_000_000

#: Digit-array working set walked as chunks are produced.
WS_PAGES = 40
PAGE = 4096


def _main(ctx: GuestContext):
    chunks, y_touches, cycles_per_chunk = ctx.argv
    addr_y = ctx.addr(Y_VAR)
    addr_ws = ctx.addr("digits")
    # Digit buffers, allocated up front like the real spigot.
    buffers = []
    for _ in range(4):
        ptr = yield CallLib("malloc", (16 * 1024,))
        buffers.append(ptr)
    for chunk in range(chunks):
        # Inner series steps hammer the accumulator...
        yield Mem(addr_y, write=True, repeat=y_touches)
        # ...update the digit arrays...
        yield Mem(addr_ws + (chunk % WS_PAGES) * PAGE, write=True)
        # ...and burn arithmetic.
        yield Compute(cycles_per_chunk)
        # Convergence check via libm.
        yield CallLib("sqrt", (float(chunk + 1),))
        if chunk % 50 == 49:
            # Rotate a digit buffer, as the chunked algorithm does.
            ptr = yield CallLib("malloc", (16 * 1024,))
            if ptr:
                yield CallLib("free", (buffers[0],))
                buffers = buffers[1:] + [ptr]
    for ptr in buffers:
        yield CallLib("free", (ptr,))
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_pi(chunks: int = DEFAULT_CHUNKS,
            y_touches_per_chunk: int = DEFAULT_Y_TOUCHES,
            cycles_per_chunk: int = DEFAULT_CYCLES_PER_CHUNK) -> Program:
    """Build workload P."""
    return Program(
        "Pi",
        _main,
        data_symbols={Y_VAR: 8, "digits": WS_PAGES * PAGE},
        needed_libs=("libc", "libm"),
        argv=(chunks, y_touches_per_chunk, cycles_per_chunk),
    )
