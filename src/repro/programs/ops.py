"""The op language executed by the simulated CPU.

A guest program is a generator yielding these ops.  ``Compute`` is divisible
(the timer interrupt can preempt it mid-block); the others are atomic from
the guest's point of view but may trigger arbitrary kernel activity (page
faults, watchpoint exceptions, blocking syscalls).

Every op carries a :class:`Provenance` describing *whose* code it is.  The
ground-truth oracle (``repro.metering.oracle``) uses provenance to attribute
each simulated nanosecond, which is how experiments measure the exact
overcharge an attack produced.
"""

from __future__ import annotations

import enum
from typing import Tuple


class Provenance(enum.Enum):
    """Whose code (or whose fault) a slice of CPU time is."""

    #: Members are singletons, so the identity hash is consistent with the
    #: default identity equality — and it is a C-level slot, unlike
    #: ``Enum.__hash__``, which shows up in profiles of the charge path
    #: (oracle buckets and engine batches key dicts on these members).
    __hash__ = object.__hash__

    #: The user's own program text.
    USER = "user"
    #: Legitimate shared-library code the program linked against.
    LIB = "lib"
    #: Code injected by the dishonest server (shell payloads, malicious
    #: constructors, interposed library functions).
    INJECTED = "injected"
    #: Kernel work triggered by an external interrupt unrelated to the task.
    IRQ = "irq"
    #: Kernel work caused by a tracer (ptrace stops, signal shuttling).
    TRACER = "tracer"
    #: Scheduler/context-switch overhead and other unattributable system work.
    SYSTEM = "system"


class Op:
    """Base class of all guest ops."""

    __slots__ = ()


class Compute(Op):
    """Burn ``cycles`` CPU cycles of pure user-mode computation.

    Divisible: interrupts preempt it mid-block and execution resumes at the
    exact cycle where it stopped.
    """

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"Compute cycles must be >= 0, got {cycles}")
        self.cycles = int(cycles)

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"


class Mem(Op):
    """Access virtual address ``vaddr`` (``repeat`` back-to-back accesses).

    Each access may minor/major fault and may hit a hardware watchpoint.
    The engine fast-paths repeats on a present, unwatched page; semantics
    are identical either way.
    """

    __slots__ = ("vaddr", "write", "repeat")

    def __init__(self, vaddr: int, write: bool = False, repeat: int = 1) -> None:
        if vaddr < 0:
            raise ValueError("vaddr must be non-negative")
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        self.vaddr = int(vaddr)
        self.write = bool(write)
        self.repeat = int(repeat)

    def __repr__(self) -> str:
        rw = "W" if self.write else "R"
        return f"Mem(0x{self.vaddr:x},{rw},x{self.repeat})"


class Syscall(Op):
    """Invoke kernel service ``name`` with ``args``.

    The syscall's return value is sent back into the yielding generator:
    ``result = yield Syscall("fork", (child,))``.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple = ()) -> None:
        self.name = name
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"Syscall({self.name!r}, {self.args!r})"


class CallLib(Op):
    """Call shared-library function ``symbol`` through the PLT.

    The dynamic linker resolves the symbol against the task's link map in
    search order (``LD_PRELOAD`` first), which is exactly the mechanism the
    function-substitution attack abuses.  The callee's return value is sent
    back into the caller.
    """

    __slots__ = ("symbol", "args")

    def __init__(self, symbol: str, args: Tuple = ()) -> None:
        self.symbol = symbol
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"CallLib({self.symbol!r})"


class Invoke(Op):
    """Push a :class:`~repro.programs.base.GuestFunction` as a new frame.

    Unlike :class:`CallLib` this bypasses symbol resolution — the loader
    uses it to run constructors/destructors and ``main``, the kernel uses it
    for thread entry points, and attacks use it to splice payloads into a
    process.  The function's provenance labels every op it yields.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn, args: Tuple = ()) -> None:
        self.fn = fn
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"Invoke({self.fn!r})"


class CallNext(Op):
    """Call the *next* definition of ``symbol`` after the current library.

    The moral equivalent of ``dlsym(RTLD_NEXT, symbol)``: an interposed
    ``malloc`` uses this to delegate to the genuine one, keeping program
    semantics intact while stealing cycles.
    """

    __slots__ = ("symbol", "args")

    def __init__(self, symbol: str, args: Tuple = ()) -> None:
        self.symbol = symbol
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"CallNext({self.symbol!r})"
