"""Workload B: "Brute", a multi-threaded MD5 brute-forcer.

Models the paper's Brute [20]: the main thread spawns worker threads
("a main feature of Brute is that it spawns many threads"), each searching
a share of the candidate space by hashing MD5 blocks.  Every
``per_thread_tries`` candidates a worker updates the shared progress
counter ``count`` in ``crack_len()`` — the variable the thrashing attack
watches ("breakpoint is set at a variable count in crack_len() ...
accessed for about 895 thousand times" with PER_THREAD_TRIES = 50).

Scaled down: ``threads`` workers x ``candidates_per_thread`` candidates.
"""

from __future__ import annotations

from .base import GuestContext, GuestFunction, Program
from .ops import CallLib, Compute, Mem, Provenance, Syscall

#: The shared progress counter watched by the thrashing attack.
COUNT_VAR = "count"

DEFAULT_THREADS = 8
DEFAULT_CANDIDATES = 600
DEFAULT_PER_THREAD_TRIES = 2
CANDIDATE_SETUP_CYCLES = 260_000

#: Shared wordlist working set walked by the workers.
WS_PAGES = 64
PAGE = 4096


#: Workers refresh their candidate buffer this often (malloc traffic that
#: the function-substitution attack amplifies).
MALLOC_EVERY = 8


def _worker(ctx: GuestContext, thread_index: int, candidates: int,
            per_thread_tries: int):
    addr_count = ctx.addr(COUNT_VAR)
    addr_words = ctx.addr("wordlist")
    buf = 0
    for cand in range(candidates):
        if cand % MALLOC_EVERY == 0:
            # Fresh candidate batch buffer.
            if buf:
                yield CallLib("free", (buf,))
            buf = yield CallLib("malloc", (1024,))
        # Read the candidate from the wordlist, then one MD5 compression.
        yield Mem(addr_words + ((thread_index + cand) % WS_PAGES) * PAGE)
        yield Compute(CANDIDATE_SETUP_CYCLES)
        yield CallLib("md5_block", (1,))
        if cand % per_thread_tries == per_thread_tries - 1:
            # crack_len(): bump the shared counter.
            yield Mem(addr_count, write=True)
    if buf:
        yield CallLib("free", (buf,))
    return 0


def _main(ctx: GuestContext):
    threads, candidates, per_thread_tries = ctx.argv
    # The candidate wordlist buffer ("brutefile").
    buf = yield CallLib("malloc", (64 * 1024,))
    tids = []
    for index in range(threads):
        fn = GuestFunction(f"brute.worker{index}", _worker, Provenance.USER)
        tid = yield CallLib(
            "pthread_create", (fn, (index, candidates, per_thread_tries)))
        tids.append(tid)
    for tid in tids:
        yield CallLib("pthread_join", (tid,))
    yield CallLib("free", (buf,))
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_brute(threads: int = DEFAULT_THREADS,
               candidates_per_thread: int = DEFAULT_CANDIDATES,
               per_thread_tries: int = DEFAULT_PER_THREAD_TRIES) -> Program:
    """Build workload B."""
    return Program(
        "Brute",
        _main,
        data_symbols={COUNT_VAR: 8, "wordlist": WS_PAGES * PAGE},
        needed_libs=("libc", "libcrypto", "libpthread"),
        argv=(threads, candidates_per_thread, per_thread_tries),
    )
