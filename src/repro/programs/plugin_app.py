"""A plugin-based application: the dynamic-loading attack surface.

The paper's §IV-A2 covers both libraries loaded at startup *and* libraries
loaded "at runtime in an on-demand fashion" (dlopen) — their constructors
run inside, and are billed to, the calling process.  This workload models
an application with a plugin architecture: it dlopens ``libplugin``, calls
its ``transform`` entry point per work unit, and dlcloses at the end.
"""

from __future__ import annotations

from ..kernel.loader.library import SharedLibrary
from .base import GuestContext, GuestFunction, Program
from .ops import CallLib, Compute, Provenance, Syscall

PLUGIN_LIB_NAME = "libplugin"

#: Cycles of genuine work per transform call.
TRANSFORM_CYCLES = 40_000

DEFAULT_WORK_UNITS = 2_000


def _transform(ctx: GuestContext, unit: int = 0):
    yield Compute(TRANSFORM_CYCLES)
    return unit * 2


def _plugin_ctor(ctx: GuestContext):
    """Genuine plugin initialisation (builds lookup tables)."""
    yield Compute(50_000)
    return None


def _plugin_dtor(ctx: GuestContext):
    yield Compute(10_000)
    return None


def make_libplugin() -> SharedLibrary:
    """The genuine plugin library, as its vendor ships it."""
    return SharedLibrary(
        PLUGIN_LIB_NAME,
        symbols={"transform": GuestFunction(
            "plugin.transform", _transform, Provenance.LIB)},
        constructor=GuestFunction("plugin.ctor", _plugin_ctor,
                                  Provenance.LIB),
        destructor=GuestFunction("plugin.dtor", _plugin_dtor,
                                 Provenance.LIB),
        version="1.4",
    )


def _main(ctx: GuestContext):
    (work_units,) = ctx.argv
    handle = yield CallLib("dlopen", (PLUGIN_LIB_NAME,))
    if handle == 0:
        return 1
    total = 0
    for unit in range(work_units):
        result = yield CallLib("transform", (unit,))
        if isinstance(result, int):
            total += result
    ctx.shared["total"] = total
    yield CallLib("dlclose", (handle,))
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_plugin_app(work_units: int = DEFAULT_WORK_UNITS) -> Program:
    """Build the plugin-using application."""
    return Program(
        "plugin-app",
        _main,
        data_symbols={},
        needed_libs=("libc",),
        argv=(work_units,),
    )
