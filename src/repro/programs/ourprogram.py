"""Workload O: the paper's home-grown CPU-bound loop.

The paper's program "O" is "a family of programs written by us to highlight
the effect in some attacks" — in the experiments it is a tight CPU-bound
loop (2^34 iterations of busy work).  The loop-control variable is read and
written every iteration; the thrashing attack plants its watchpoint on it
("Breakpoint is set at the loop control variable frequently accessed").

Scaled down: ``iterations`` loop turns of ``cycles_per_iter`` busy cycles.
"""

from __future__ import annotations

from .base import GuestContext, Program
from .ops import CallLib, Compute, Mem, Syscall

#: Static symbol watched by the thrashing attack.
LOOP_VAR = "i"

DEFAULT_ITERATIONS = 12_000
DEFAULT_CYCLES_PER_ITER = 400_000

#: Working-set buffer walked during the run (page faults under memory
#: pressure land here).
WS_PAGES = 32
PAGE = 4096


def _main(ctx: GuestContext):
    iterations, cycles_per_iter, mallocs = ctx.argv
    addr_i = ctx.addr(LOOP_VAR)
    addr_ws = ctx.addr("ws")
    malloc_every = max(1, iterations // mallocs) if mallocs else 0
    for i in range(iterations):
        # The loop counter lives in memory (compiled without -O, as a
        # quick home-grown benchmark would be): read, test, increment,
        # write-back — four touches per turn.
        yield Mem(addr_i, write=True, repeat=4)
        yield Mem(addr_ws + (i % WS_PAGES) * PAGE, write=True)
        yield Compute(cycles_per_iter)
        if malloc_every and i % malloc_every == 0:
            ptr = yield CallLib("malloc", (256,))
            if ptr:
                yield CallLib("free", (ptr,))
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_ourprogram(iterations: int = DEFAULT_ITERATIONS,
                    cycles_per_iter: int = DEFAULT_CYCLES_PER_ITER,
                    mallocs: int = 200) -> Program:
    """Build workload O.

    ``mallocs`` is the approximate number of malloc/free pairs sprinkled
    through the run (surface for the function-substitution attack).
    """
    return Program(
        "O",
        _main,
        data_symbols={LOOP_VAR: 8, "ws": WS_PAGES * PAGE},
        needed_libs=("libc",),
        argv=(iterations, cycles_per_iter, mallocs),
    )
