"""Program and guest-context abstractions.

A :class:`Program` is the simulator's analogue of an ELF executable: a name,
a ``main`` generator factory, declared static data symbols, and the list of
shared libraries it needs.  The loader materialises it into a process image
at ``execve`` time.

A :class:`GuestContext` is handed to every guest generator.  It exposes the
process's static-symbol addresses, argv, a deterministic RNG stream, and a
dictionary shared across the thread group — nothing else, so guest code can
only affect the world by yielding ops.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from .ops import Op, Provenance


#: Type of guest code bodies: a generator yielding ops and receiving syscall
#: and library-call results via ``send``.
GuestGen = Generator[Op, object, object]


class GuestFunction:
    """A named piece of guest code with a provenance label.

    Used for thread entry points, fork-child bodies, library functions,
    constructors/destructors and injected payloads alike.
    """

    __slots__ = ("name", "factory", "provenance")

    def __init__(self, name: str,
                 factory: Callable[..., GuestGen],
                 provenance: Provenance = Provenance.USER) -> None:
        self.name = name
        self.factory = factory
        self.provenance = provenance

    def instantiate(self, ctx: "GuestContext", *args) -> GuestGen:
        return self.factory(ctx, *args)

    def __repr__(self) -> str:
        return f"GuestFunction({self.name!r}, {self.provenance.value})"


class Program:
    """An executable image description (the simulator's ELF file)."""

    def __init__(self, name: str,
                 main: Callable[..., GuestGen],
                 data_symbols: Optional[Dict[str, int]] = None,
                 needed_libs: Sequence[str] = ("libc",),
                 argv: Sequence[object] = (),
                 version: str = "1.0") -> None:
        self.name = name
        self.main = GuestFunction(f"{name}.main", main, Provenance.USER)
        self.data_symbols: Dict[str, int] = dict(data_symbols or {})
        self.needed_libs: List[str] = list(needed_libs)
        self.argv: Tuple[object, ...] = tuple(argv)
        self.version = version

    def with_argv(self, *argv: object) -> "Program":
        """Return a copy of this program with different arguments."""
        clone = Program(self.name, self.main.factory,
                        data_symbols=self.data_symbols,
                        needed_libs=self.needed_libs,
                        argv=argv, version=self.version)
        return clone

    def text_digest(self) -> str:
        """Stable digest of the program 'text', for attestation.

        A real measurement hashes the binary; we hash the identity of the
        code object driving the op stream, which changes whenever different
        code would run.
        """
        from ..kernel.loader.library import code_identity

        ident = f"{self.name}:{self.version}:{code_identity(self.main.factory)}"
        return hashlib.sha256(ident.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return f"Program({self.name!r}, libs={self.needed_libs})"


class GuestContext:
    """Per-thread-group view given to guest generators."""

    def __init__(self, argv: Tuple[object, ...],
                 rng_stream_factory: Callable[[str], object],
                 symbol_addrs: Optional[Dict[str, int]] = None) -> None:
        self.argv = argv
        self._rng_stream_factory = rng_stream_factory
        self._symbol_addrs: Dict[str, int] = dict(symbol_addrs or {})
        #: Scratch state shared across the thread group (guest "memory" the
        #: models use for bookkeeping that does not need to be simulated).
        self.shared: Dict[str, object] = {}
        #: State owned by the libc model (heap cursor, arena bounds).
        self.libc: Dict[str, object] = {}

    def addr(self, symbol: str) -> int:
        """Virtual address of static data ``symbol``."""
        try:
            return self._symbol_addrs[symbol]
        except KeyError:
            raise KeyError(
                f"program has no static symbol {symbol!r}; declared: "
                f"{sorted(self._symbol_addrs)}") from None

    def has_symbol(self, symbol: str) -> bool:
        return symbol in self._symbol_addrs

    def bind_symbol(self, symbol: str, vaddr: int) -> None:
        """Used by the loader to assign addresses to declared symbols."""
        self._symbol_addrs[symbol] = vaddr

    def rng(self, name: str):
        """Deterministic random stream namespaced to this process."""
        return self._rng_stream_factory(name)
