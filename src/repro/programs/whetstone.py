"""Workload W: the Whetstone synthetic benchmark.

Models the classic C Whetstone [19]: a fixed set of "modules" (floating
arithmetic, array accesses, transcendental functions) executed in a loop.
The hot variable ``T1`` is updated once per cycle ("variable ... T1 which
[is] accessed about 2x10^5 times"); libm is called heavily, which is what
the sqrt-substitution attack amplifies.

Scaled down: ``loops`` whetstone cycles.
"""

from __future__ import annotations

from .base import GuestContext, Program
from .ops import CallLib, Compute, Mem, Syscall

#: The hot scalar watched by the thrashing attack.
T1_VAR = "T1"

DEFAULT_LOOPS = 6_000

#: Module-3 array working set.
WS_PAGES = 16
PAGE = 4096

# Cycle weights of the Whetstone modules (per benchmark cycle).
MODULE3_ARRAY_CYCLES = 90_000       # array element arithmetic
MODULE4_COND_CYCLES = 60_000        # conditional jumps
MODULE6_INT_CYCLES = 45_000         # integer arithmetic
MODULE11_STD_CYCLES = 30_000        # standard functions preamble


def _main(ctx: GuestContext):
    (loops,) = ctx.argv
    addr_t1 = ctx.addr(T1_VAR)
    addr_ws = ctx.addr("e1_array")
    # Workspace array, allocated once.
    e1 = yield CallLib("malloc", (4 * 1024,))
    for cycle in range(loops):
        yield Compute(MODULE3_ARRAY_CYCLES)
        yield Mem(addr_ws + (cycle % WS_PAGES) * PAGE, write=True)
        # T1 is read and updated in modules 1 and 2 of every cycle.
        yield Mem(addr_t1, write=True, repeat=2)
        yield Compute(MODULE4_COND_CYCLES)
        # Module 7/8: transcendental functions via libm.
        t = yield CallLib("sin", (0.5,))
        t = yield CallLib("cos", (t,))
        yield Compute(MODULE6_INT_CYCLES)
        # Module 11: sqrt/exp/log block.
        t = yield CallLib("sqrt", (abs(t) + 1.0,))
        yield CallLib("exp", (t / 2.0,))
        yield Compute(MODULE11_STD_CYCLES)
    yield CallLib("free", (e1,))
    rusage = yield Syscall("getrusage")
    ctx.shared["rusage"] = rusage
    return 0


def make_whetstone(loops: int = DEFAULT_LOOPS) -> Program:
    """Build workload W."""
    return Program(
        "Whetstone",
        _main,
        data_symbols={T1_VAR: 8, "e1_array": WS_PAGES * PAGE},
        needed_libs=("libc", "libm"),
        argv=(loops,),
    )
