"""Run one VM-level metering scenario end to end.

The standard scenario is the VM analogue of the paper's §IV-B1: a *victim*
VM runs one of the evaluation workloads (plus the steal-time estimator
daemon), optionally co-resident with an *attacker* VM running the
tick-dodging guest.  The result is packaged as a plain
:class:`~repro.analysis.experiment.ExperimentResult` — ``usage`` is what
the hypervisor's tick-sampled metering bills the victim VM (the provider's
view), ``oracle_seconds`` carries the exact vCPU ledger alongside the
guest-side provenance oracle, and ``stats`` records the steal estimate so
figures and sweeps flow through the existing runner/cache machinery
unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ..analysis.experiment import DEFAULT_MAX_NS, ExperimentResult
from ..config import MachineConfig, default_config
from ..errors import SimulationError
from ..kernel.accounting import CpuUsage
from ..programs.stdlib import install_standard_libraries
from .guests import make_steal_estimator, make_vm_sched_attacker
from .hypervisor import Hypervisor, HypervisorConfig

#: Scenario knobs an :class:`~repro.runner.ExperimentSpec`'s ``vm`` mapping
#: may carry (everything else is rejected, so typos fail loudly).
VM_PARAM_KEYS = frozenset({
    "tick_ns", "slice_ns", "credits_per_tick", "refill_every_ticks",
    "credit_cap_ticks", "boost",
    "victim_weight", "attacker_weight", "margin_ns",
    "estimator_interval_ns",
})

#: Spec names accepted for the VM scheduling attack.
VM_ATTACK_NAMES = ("vm-sched", "sched")


def _hypervisor_config(params: Mapping[str, Any]) -> HypervisorConfig:
    kwargs = {key: params[key] for key in
              ("tick_ns", "slice_ns", "credits_per_tick",
               "refill_every_ticks", "credit_cap_ticks", "boost")
              if key in params}
    return HypervisorConfig(**kwargs)


def run_vm_experiment(program: str = "W",
                      program_kwargs: Optional[Mapping[str, Any]] = None,
                      attack: Optional[str] = None,
                      attack_kwargs: Optional[Mapping[str, Any]] = None,
                      vm: Optional[Mapping[str, Any]] = None,
                      cfg: Optional[MachineConfig] = None,
                      max_ns: int = DEFAULT_MAX_NS,
                      check_invariants: Optional[bool] = None,
                      faults=None) -> ExperimentResult:
    """Execute one VM scenario on a fresh hypervisor.

    ``program``/``program_kwargs`` name the victim workload by registry key
    (same registry as process-level specs).  ``attack`` is ``None``/"none"
    for the solo control run or ``"vm-sched"``/``"sched"`` for the
    tick-dodging co-resident, with ``attack_kwargs`` holding
    ``burn_fraction`` (default 0.75).  ``vm`` carries the hypervisor and
    scenario knobs (:data:`VM_PARAM_KEYS`); ``cfg`` is the *guest* machine
    config.  ``max_ns`` bounds **host** time.  ``faults`` (FaultPlan or
    mapping) applies its hypervisor-level fault — the lying steal clock;
    guest machines stay fault-free (see :class:`Hypervisor`).
    """
    from ..runner.specs import PROGRAM_FACTORIES, SpecError

    params = dict(vm or {})
    unknown = set(params) - VM_PARAM_KEYS
    if unknown:
        raise SpecError(f"unknown vm parameter(s) {sorted(unknown)}; "
                        f"have {sorted(VM_PARAM_KEYS)}")
    if attack in (None, "none"):
        attack = None
    elif attack not in VM_ATTACK_NAMES:
        raise SpecError(f"unknown vm attack {attack!r}; "
                        f"have {sorted(VM_ATTACK_NAMES)} or 'none'")

    if check_invariants is None:
        from ..verify.invariants import default_invariants
        check_invariants = default_invariants()

    try:
        factory = PROGRAM_FACTORIES[program]
    except KeyError:
        raise SpecError(f"unknown program {program!r}; "
                        f"have {sorted(PROGRAM_FACTORIES)}") from None
    victim_program = factory(**dict(program_kwargs or {}))

    guest_cfg = cfg or default_config()
    hv_cfg = _hypervisor_config(params)
    hv = Hypervisor(hv_cfg, invariants=bool(check_invariants), faults=faults)

    victim_vm = hv.create_vm("victim", cfg=guest_cfg,
                             weight=params.get("victim_weight", 256))
    install_standard_libraries(victim_vm.machine.kernel.libraries)
    victim_shell = victim_vm.machine.new_shell()
    estimator_task = victim_shell.run_command(
        make_steal_estimator(params.get("estimator_interval_ns", 2_000_000)))
    victim_task = victim_shell.run_command(victim_program)

    attacker_vm = None
    attack_name = "none"
    akw = dict(attack_kwargs or {})
    if attack is not None:
        attack_name = "vm-sched"
        burn_fraction = akw.pop("burn_fraction", 0.75)
        margin_ns = akw.pop("margin_ns", params.get("margin_ns",
                                                    hv_cfg.tick_ns // 20))
        if akw:
            raise SpecError(f"unknown vm attack kwarg(s) {sorted(akw)}")
        attacker_vm = hv.create_vm(
            "attacker", cfg=guest_cfg,
            weight=params.get("attacker_weight", 256))
        install_standard_libraries(attacker_vm.machine.kernel.libraries)
        attacker_shell = attacker_vm.machine.new_shell()
        attacker_shell.run_command(make_vm_sched_attacker(
            tick_ns=hv_cfg.tick_ns, burn_fraction=burn_fraction,
            margin_ns=margin_ns, cpu_freq_hz=guest_cfg.cpu_freq_hz))

    hv.run_until_exit([victim_task], max_ns=max_ns)
    wall_ns = hv.clock.now
    hv.sync_ledgers()
    hv.check_invariants()
    for guest in hv.vms:
        guest.machine.check_invariants()

    # Guest-internal view of the victim job (what the customer's own OS
    # would report) vs the hypervisor's billed view (what the provider
    # meters) — the §III-B divergence, one level up.
    guest_kernel = victim_vm.machine.kernel
    guest_usage = CpuUsage()
    for member in guest_kernel.thread_group(victim_task):
        guest_usage = guest_usage + guest_kernel.accounting.usage(member)

    oracle_seconds: Dict[str, float] = {}
    for member in guest_kernel.thread_group(victim_task):
        for (_user, prov), ns in member.oracle_ns.items():
            oracle_seconds[prov.value] = (oracle_seconds.get(prov.value, 0.0)
                                          + ns / 1e9)
    oracle_seconds["vm_ran"] = victim_vm.ran_ns / 1e9
    oracle_seconds["vm_idle"] = victim_vm.idle_ns / 1e9
    oracle_seconds["vm_steal"] = victim_vm.steal_ns / 1e9

    rusage = None
    if victim_task.guest_ctx is not None:
        logged = victim_task.guest_ctx.shared.get("rusage")
        if isinstance(logged, dict):
            rusage = logged

    estimator_shared: Dict[str, int] = {}
    if estimator_task.guest_ctx is not None:
        found = estimator_task.guest_ctx.shared.get("steal_estimator")
        if isinstance(found, dict):
            estimator_shared = found

    host_wall = wall_ns - victim_vm.attach_host_ns
    conservation_gap = host_wall - (victim_vm.ran_ns + victim_vm.idle_ns
                                    + victim_vm.steal_ns)
    stats: Dict[str, int] = {
        "exit_code": victim_task.exit_code,
        "hv_ticks": hv.ticks,
        "hv_idle_ticks": hv.idle_ticks,
        "vcpu_switches": hv.vcpu_switches,
        "victim_ran_ns": victim_vm.ran_ns,
        "victim_idle_ns": victim_vm.idle_ns,
        "victim_steal_ns": victim_vm.steal_ns,
        "victim_sampled_ticks": victim_vm.sampled_ticks,
        "victim_preemptions": victim_vm.preemptions,
        "victim_guest_utime_ns": guest_usage.utime_ns,
        "victim_guest_stime_ns": guest_usage.stime_ns,
        "victim_guest_jiffies": guest_kernel.timekeeper.jiffies,
        "victim_guest_steal_ns": guest_kernel.timekeeper.steal_ns,
        "conservation_gap_ns": conservation_gap,
        "est_steal_ns": int(estimator_shared.get("est_steal_ns", 0)),
        "reported_steal_ns": int(estimator_shared.get("reported_steal_ns",
                                                      0)),
        "steal_samples": int(estimator_shared.get("samples", 0)),
    }
    if hv.fault_plan is not None:
        stats["fault_steal_lie_ns"] = hv.steal_lie_ns
        checker = hv.invariant_checker
        if checker is not None:
            stats["tolerated_violations"] = len(checker.tolerated_violations)
    attacker_usage = None
    if attacker_vm is not None:
        attacker_usage = CpuUsage(attacker_vm.billed_utime_ns,
                                  attacker_vm.billed_stime_ns)
        attack_shared: Dict[str, int] = {}
        atask = next(iter(attacker_vm.machine.kernel.tasks.values()), None)
        for task in attacker_vm.machine.kernel.tasks.values():
            ctx = task.guest_ctx
            if ctx is not None and "vm_sched_attack" in ctx.shared:
                attack_shared = ctx.shared["vm_sched_attack"]
                break
        stats.update({
            "attacker_ran_ns": attacker_vm.ran_ns,
            "attacker_steal_ns": attacker_vm.steal_ns,
            "attacker_sampled_ticks": attacker_vm.sampled_ticks,
            "attacker_burned_ns": int(attack_shared.get("burned_ns", 0)),
            "attacker_iterations": int(attack_shared.get("iterations", 0)),
            "attacker_overshoots": int(attack_shared.get("overshoots", 0)),
        })

    if conservation_gap != 0:
        # check_invariants() already raised when enabled; this is the
        # unconditional backstop for runs without the checker.
        raise SimulationError(
            f"vCPU ledger conservation broken: ran+idle+steal misses host "
            f"wall by {conservation_gap}ns")

    return ExperimentResult(
        program=victim_program.name,
        attack=attack_name,
        usage=CpuUsage(victim_vm.billed_utime_ns, victim_vm.billed_stime_ns),
        attacker_usage=attacker_usage,
        wall_ns=wall_ns,
        rusage=rusage,
        oracle_seconds=oracle_seconds,
        stats=stats,
    )
