"""Guest programs for the VM-level metering experiments.

Two purpose-built guests:

* :func:`make_vm_sched_attacker` — the VM-level analogue of the paper's
  §IV-B1 process-scheduling attack, after Zhou et al. (arXiv:1103.0759):
  read the host clock through the paravirtual time source, burn a chosen
  fraction of each hypervisor accounting tick, then sleep across the tick
  edge so the sample never lands on this vCPU.  The hypervisor's
  tick-sampled billing charges every tick to whichever co-resident holds
  the core at the edge; the attacker is billed (and credit-debited) almost
  nothing, so every wake re-BOOSTs it.

* :func:`make_steal_estimator` — the guest-side defense of Verdú et al.
  (arXiv:1810.01139): periodically sample a host-backed time source
  against the guest's own CLOCK_MONOTONIC.  The guest clock freezes while
  the vCPU is runnable-but-descheduled, so the accumulated divergence *is*
  the steal time, estimated without hypervisor cooperation.  The estimator
  also reads the hypervisor-reported steal counter so the report can state
  whether the host is telling the truth.
"""

from __future__ import annotations

from typing import Dict

from ..programs.base import Program
from ..programs.ops import Compute, Syscall

#: ns → cycles at ``freq_hz`` (floor, matching the engine's conversion).
def _ns_to_cycles(ns: int, freq_hz: int) -> int:
    return ns * freq_hz // 1_000_000_000


def _vm_sched_attacker_main(ctx):
    """Burn until just before each hypervisor tick, sleep across it."""
    tick_ns, burn_ns, margin_ns, freq_hz = ctx.argv
    stats: Dict[str, int] = {"iterations": 0, "burned_ns": 0,
                             "overshoots": 0}
    ctx.shared["vm_sched_attack"] = stats
    while True:
        host_now = yield Syscall("pv_host_time")
        next_tick = (host_now // tick_ns + 1) * tick_ns
        # Stay clear of the sampling edge: burn at most up to the margin.
        window = next_tick - margin_ns - host_now
        burn = burn_ns if burn_ns < window else window
        if burn > 0:
            yield Compute(_ns_to_cycles(burn, freq_hz))
            stats["burned_ns"] += burn
        host_now = yield Syscall("pv_host_time")
        sleep_ns = next_tick + margin_ns - host_now
        if sleep_ns <= 0:
            # Guest-side interrupts pushed us past the edge; the tick may
            # have sampled us.  Resync on the next round.
            stats["overshoots"] += 1
            sleep_ns = margin_ns
        yield Syscall("nanosleep", (sleep_ns,))
        stats["iterations"] += 1


def make_vm_sched_attacker(tick_ns: int, burn_fraction: float,
                           margin_ns: int, cpu_freq_hz: int) -> Program:
    """The tick-dodging guest.  ``burn_fraction`` of each ``tick_ns`` is
    burned as real compute; ``margin_ns`` is the safety gap kept on both
    sides of the sampling edge."""
    if not 0.0 <= burn_fraction <= 1.0:
        raise ValueError(f"burn_fraction must be in [0, 1], "
                         f"got {burn_fraction}")
    burn_ns = int(burn_fraction * tick_ns)
    return Program("vmsched_attacker", _vm_sched_attacker_main,
                   argv=(int(tick_ns), burn_ns, int(margin_ns),
                         int(cpu_freq_hz)))


def _steal_estimator_main(ctx):
    """Sample (pv_host_time, clock_gettime, pv_steal) every interval and
    publish running totals through the shared dict."""
    (interval_ns,) = ctx.argv
    shared: Dict[str, int] = {"est_steal_ns": 0, "reported_steal_ns": 0,
                              "window_host_ns": 0, "window_guest_ns": 0,
                              "samples": 0}
    ctx.shared["steal_estimator"] = shared
    host0 = yield Syscall("pv_host_time")
    guest0 = yield Syscall("clock_gettime")
    reported0 = yield Syscall("pv_steal")
    while True:
        yield Syscall("nanosleep", (interval_ns,))
        host = yield Syscall("pv_host_time")
        guest = yield Syscall("clock_gettime")
        reported = yield Syscall("pv_steal")
        # Host wall advanced by (ran + idle + steal); the guest clock only
        # by (ran + idle) — the difference is the steal estimate.
        shared["est_steal_ns"] = (host - host0) - (guest - guest0)
        shared["reported_steal_ns"] = reported - reported0
        shared["window_host_ns"] = host - host0
        shared["window_guest_ns"] = guest - guest0
        shared["samples"] += 1


def make_steal_estimator(interval_ns: int = 2_000_000) -> Program:
    """The guest-side steal-time estimator daemon."""
    if interval_ns <= 0:
        raise ValueError("interval_ns must be positive")
    return Program("steal_estimator", _steal_estimator_main,
                   argv=(int(interval_ns),))
