"""Virtualization layer: hypervisor, credit scheduler, VM-level metering.

The process-level story one layer down: a credit-style (Xen-like)
hypervisor time-slices N full guest machines onto the simulated physical
core, bills vCPUs by sampling its own accounting tick, and injects steal
time into each guest's clock and timekeeper.  The same tick-sampling
shortcut the paper's §IV-B1 attack abuses inside the kernel is abused here
*between* VMs (after Zhou et al., arXiv:1103.0759), and the guest-side
steal-time estimator (after Verdú et al., arXiv:1810.01139) is the
tenant's defense.

Entry points: build a :class:`Hypervisor`, :meth:`~Hypervisor.create_vm`
guests, run; or call :func:`run_vm_experiment` for the packaged
victim-vs-attacker scenario (also reachable via ``ExperimentSpec(vm=...)``
and the ``repro vm`` CLI).
"""

from .credit import (
    PRI_BOOST,
    PRI_OVER,
    PRI_UNDER,
    PRIORITY_NAMES,
    CreditScheduler,
)
from .experiment import VM_ATTACK_NAMES, VM_PARAM_KEYS, run_vm_experiment
from .guests import make_steal_estimator, make_vm_sched_attacker
from .hypervisor import (
    Hypervisor,
    HypervisorConfig,
    VcpuState,
    VirtualMachine,
)

__all__ = [
    "PRI_BOOST",
    "PRI_OVER",
    "PRI_UNDER",
    "PRIORITY_NAMES",
    "CreditScheduler",
    "VM_ATTACK_NAMES",
    "VM_PARAM_KEYS",
    "run_vm_experiment",
    "make_steal_estimator",
    "make_vm_sched_attacker",
    "Hypervisor",
    "HypervisorConfig",
    "VcpuState",
    "VirtualMachine",
]
