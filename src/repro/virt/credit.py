"""A credit-style (Xen-like) hypervisor scheduler.

The model follows the Xen credit scheduler as described by Zhou et al.
(arXiv:1103.0759), which is the one their scheduling attack targets:

* every vCPU holds *credits*, refilled periodically in proportion to its
  weight and debited in whole-tick quanta from whichever vCPU the
  scheduler's accounting tick **samples on the physical CPU** — the same
  tick-sampling shortcut the paper's §IV-B1 process attack abuses, one
  layer down;
* a vCPU with credits left is UNDER, one that overdrew is OVER; runnable
  vCPUs are picked in priority order (round-robin within a priority);
* a vCPU that wakes from idle is BOOSTed ahead of everyone to keep I/O
  latency low, and loses BOOST only when a tick catches it running.

The attack consequence is built in, not bolted on: a vCPU that always
sleeps across the tick edge is never sampled, so it is never debited and
never billed, keeps its credits (stays UNDER, so every wake re-BOOSTs it),
and preempts the co-resident whenever it likes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hypervisor import VirtualMachine

#: Priorities, in pick order (lower sorts first).
PRI_BOOST = 0
PRI_UNDER = 1
PRI_OVER = 2

PRIORITY_NAMES = {PRI_BOOST: "BOOST", PRI_UNDER: "UNDER", PRI_OVER: "OVER"}


class CreditScheduler:
    """Credit accounting + runnable-vCPU pick order for one physical CPU."""

    def __init__(self, credits_per_tick: int = 100,
                 refill_every_ticks: int = 3,
                 credit_cap_ticks: int = 300,
                 boost: bool = True) -> None:
        self.credits_per_tick = int(credits_per_tick)
        self.refill_every_ticks = max(1, int(refill_every_ticks))
        self.credit_cap = int(credit_cap_ticks) * self.credits_per_tick
        self.boost = bool(boost)
        self.ticks = 0
        self.refills = 0
        self._seq = 0

    # -- registration / queue order ---------------------------------------

    def register(self, vm: "VirtualMachine") -> None:
        vm.credits = self.credits_per_tick * self.refill_every_ticks
        vm.priority = PRI_UNDER
        vm.queue_seq = self._next_seq()

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def requeue(self, vm: "VirtualMachine") -> None:
        """Send a descheduled vCPU to the back of its priority class."""
        vm.queue_seq = self._next_seq()

    def on_wake(self, vm: "VirtualMachine") -> None:
        """A vCPU left the idle (blocked) state: BOOST it unless it has
        already overdrawn its credits."""
        vm.queue_seq = self._next_seq()
        if self.boost and vm.credits >= 0:
            vm.priority = PRI_BOOST

    def pick_next(self, runnable: Sequence["VirtualMachine"]
                  ) -> Optional["VirtualMachine"]:
        """Best runnable vCPU: lowest (priority, queue_seq)."""
        best: Optional["VirtualMachine"] = None
        for vm in runnable:
            if best is None or (vm.priority, vm.queue_seq) < (best.priority,
                                                              best.queue_seq):
                best = vm
        return best

    def check_preempt(self, current: "VirtualMachine",
                      woken: "VirtualMachine") -> bool:
        return woken.priority < current.priority

    # -- the accounting tick ----------------------------------------------

    def charge_tick(self, current: Optional["VirtualMachine"],
                    vms: List["VirtualMachine"]) -> None:
        """One scheduler accounting tick: debit whoever was sampled on the
        CPU a whole tick of credits (and strip its BOOST), then refill the
        pool by weight every ``refill_every_ticks``."""
        if current is not None:
            current.credits -= self.credits_per_tick
            if current.credits < -self.credit_cap:
                current.credits = -self.credit_cap
            if current.priority == PRI_BOOST:
                current.priority = PRI_UNDER
            if current.credits < 0:
                current.priority = PRI_OVER
        self.ticks += 1
        if self.ticks % self.refill_every_ticks == 0:
            self._refill(vms)

    def _refill(self, vms: List["VirtualMachine"]) -> None:
        self.refills += 1
        total_weight = sum(vm.weight for vm in vms)
        if total_weight <= 0:
            return
        pool = self.credits_per_tick * self.refill_every_ticks
        for vm in vms:
            share = pool * vm.weight // total_weight
            vm.credits = min(self.credit_cap, vm.credits + share)
            if vm.credits >= 0 and vm.priority == PRI_OVER:
                vm.priority = PRI_UNDER
