"""The hypervisor: N guest machines multiplexed on one physical core.

Each :class:`VirtualMachine` wraps a full guest :class:`~repro.hw.machine.
Machine` (its own kernel, clock, timer, accounting) behind a single vCPU.
The :class:`Hypervisor` owns the *host* clock and time-slices the guests
onto it with a credit scheduler (:mod:`repro.virt.credit`), sampling its
own accounting tick to decide which vCPU to bill — the two-level analogue
of the kernel's tick-sampled process accounting.

Time model (all integer ns, exact by construction):

* **RUNNING** — the guest executes on the physical core; its clock
  advances 1:1 with the host clock (``ran_ns``).
* **BLOCKED** — the guest is idle (nothing runnable); its clock still
  advances 1:1 with host time (``idle_ns``), the way a halted CPU's
  wall clock keeps moving, and the vCPU wakes when its next guest event
  (timer tick, sleep expiry) comes due in host time.
* **RUNNABLE** — the guest wants the CPU but another vCPU holds it; its
  clock is *frozen* and the gap accrues as ``steal_ns``, injected into the
  guest's timekeeper like a paravirtual steal clock.

Hence per vCPU, exactly: ``ran_ns + idle_ns + steal_ns == host wall`` and
``guest_clock == ran_ns + idle_ns`` — the conservation law the virt
invariant checker (:class:`repro.verify.invariants.VirtInvariantChecker`)
holds every run to.  Composed with the guest kernel's own shadow ledger
(utime+stime+idle = guest clock) this closes the issue's law:
Σ guest (utime + stime + idle + steal) = host wall time, per vCPU.

Billing, by contrast, is deliberately *inexact* in the faithful way: the
hypervisor bills whole ticks to whichever vCPU its accounting tick samples
on the core (``billed_utime_ns``/``billed_stime_ns``, split by the sampled
guest CPU mode).  The gap between ``billed`` and ``ran`` is the metering
vulnerability the VM scheduling attack exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import MachineConfig, default_config
from ..errors import DeadlockError, SimulationError
from ..hw.cpu import CPUMode
from ..hw.machine import Machine
from ..kernel.process import Task, TaskState
from ..programs.ops import Compute
from ..sim.clock import Clock
from .credit import PRI_UNDER, CreditScheduler

#: Guest-side cost of a paravirtual call (vmcall + hypervisor dispatch).
_PV_CALL_CYCLES = 150


@dataclass(frozen=True)
class HypervisorConfig:
    """Host-side knobs.  ``tick_ns`` is the scheduler accounting tick that
    both bills and debits credits (Xen: 10 ms); ``slice_ns`` is the
    round-robin quantum (Xen: 30 ms)."""

    tick_ns: int = 10_000_000
    slice_ns: int = 30_000_000
    credits_per_tick: int = 100
    refill_every_ticks: int = 3
    credit_cap_ticks: int = 300
    boost: bool = True
    max_time_ns: int = 3_600 * 1_000_000_000

    def validate(self) -> None:
        if self.tick_ns <= 0:
            raise SimulationError("hypervisor tick_ns must be positive")
        if self.slice_ns <= 0:
            raise SimulationError("hypervisor slice_ns must be positive")


class VcpuState(enum.Enum):
    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"


class VirtualMachine:
    """One guest machine behind one vCPU, plus its hypervisor-side ledger."""

    def __init__(self, name: str, machine: Machine, weight: int,
                 hypervisor: "Hypervisor") -> None:
        self.name = name
        self.machine = machine
        self.weight = int(weight)
        self.hypervisor = hypervisor
        self.state = VcpuState.RUNNABLE
        #: Host time at which a BLOCKED vCPU's next guest event comes due.
        self.wake_host_ns: Optional[int] = None

        # Exact ledger (host ns), maintained by the hypervisor.
        self.ran_ns = 0
        self.idle_ns = 0
        self.steal_ns = 0
        self.attach_host_ns = hypervisor.clock.now
        self.attach_guest_ns = machine.clock.now
        #: Host/guest clock values at the last ledger sync point.
        self.last_sync_host_ns = hypervisor.clock.now
        self.last_sync_guest_ns = machine.clock.now

        # Tick-sampled billing (what the provider meters).
        self.billed_utime_ns = 0
        self.billed_stime_ns = 0
        self.sampled_ticks = 0
        self.preemptions = 0

        # Credit-scheduler fields (owned by CreditScheduler).
        self.credits = 0
        self.priority = PRI_UNDER
        self.queue_seq = 0

    # -- views --------------------------------------------------------------

    @property
    def guest_clock_ns(self) -> int:
        return self.machine.clock.now

    @property
    def billed_total_ns(self) -> int:
        return self.billed_utime_ns + self.billed_stime_ns

    def host_now_estimate(self) -> int:
        """Host time as seen from inside the guest (the virtualized TSC the
        paravirtual clock exposes).  Exact: while RUNNING, host and guest
        clocks advance in lockstep from the last sync point."""
        if self.state is VcpuState.RUNNING:
            return (self.hypervisor.clock.now
                    + (self.machine.clock.now - self.last_sync_guest_ns))
        return self.hypervisor.clock.now

    # -- execution ----------------------------------------------------------

    def run_slice(self, budget_ns: int) -> "tuple[int, bool]":
        """Run the guest for at most ``budget_ns`` (guest ns == host ns).

        Returns ``(consumed_ns, idled)``; ``idled`` means the guest went
        fully idle (halted) before the budget ran out, handing the core
        back to the hypervisor.  Consumption may overshoot the budget by a
        guest context-switch charge — the engine itself stops exactly at
        the boundary, mirroring :meth:`repro.hw.machine.Machine.step`.
        """
        machine = self.machine
        kernel = machine.kernel
        clock = machine.clock
        start = clock.now
        deadline = start + budget_ns
        checker = machine.invariant_checker
        while True:
            now = clock.now
            if now >= deadline:
                return now - start, False
            if now > machine.cfg.max_time_ns:
                raise SimulationError(
                    f"guest {self.name!r} exceeded max_time_ns at {now}ns")
            machine._drain_due_events()
            current = kernel.current
            if (kernel.need_resched or current is None
                    or current.state is not TaskState.RUNNING):
                kernel.schedule()
                current = kernel.current
            now = clock.now  # schedule() may have charged switch cost
            if now >= deadline:
                return now - start, False
            next_time = machine.events.next_time()
            if current is None:
                # Nothing runnable: a halted vCPU traps to the hypervisor
                # instead of idling on the physical core.
                return now - start, True
            stop = deadline if next_time is None else min(next_time, deadline)
            budget = stop - now
            if budget <= 0:
                continue  # events due right now; drained next iteration
            kernel.engine.run(current, budget)
            if checker is not None:
                checker.on_step()

    def has_live_tasks(self) -> bool:
        return not self.machine.kernel.all_finished()

    def __repr__(self) -> str:
        return (f"VirtualMachine({self.name!r}, {self.state.value}, "
                f"ran={self.ran_ns}ns steal={self.steal_ns}ns)")


class Hypervisor:
    """Multiplexes VirtualMachines on one simulated physical core."""

    def __init__(self, cfg: Optional[HypervisorConfig] = None,
                 invariants=None, faults=None) -> None:
        """``invariants`` mirrors ``Machine(invariants=...)``: False/None
        (off), True (raise on first violation), ``"collect"``, or a
        pre-built :class:`~repro.verify.invariants.VirtInvariantChecker`.
        When enabled, every guest machine gets its own kernel-level checker
        too, so the composed conservation law is closed end to end.

        ``faults`` (a :class:`~repro.faults.FaultPlan` or mapping) applies
        only its hypervisor-level fault here — the lying steal clock
        (``steal_lie_factor``): the paravirtual steal value injected into
        guests is scaled while the host-side ledger keeps the truth.  Guest
        machines stay fault-free; tick/TSC faults belong to bare-metal
        runs."""
        from ..faults import normalize_plan

        self.cfg = cfg or HypervisorConfig()
        self.cfg.validate()
        self.fault_plan = normalize_plan(faults)
        self._steal_lie = (self.fault_plan.steal_lie_factor
                           if self.fault_plan is not None else 1.0)
        #: Net ns of steal-report distortion (injected minus true).
        self.steal_lie_ns = 0
        self.clock = Clock()
        self.scheduler = CreditScheduler(
            credits_per_tick=self.cfg.credits_per_tick,
            refill_every_ticks=self.cfg.refill_every_ticks,
            credit_cap_ticks=self.cfg.credit_cap_ticks,
            boost=self.cfg.boost)
        self.vms: List[VirtualMachine] = []
        self.current: Optional[VirtualMachine] = None
        self.need_resched = False
        self.ticks = 0
        self.idle_ticks = 0
        self.host_idle_ns = 0
        self.vcpu_switches = 0
        self._next_tick_ns = self.cfg.tick_ns
        self._slice_end_ns = 0
        self._guest_invariants = bool(invariants)
        tolerated = (self.fault_plan.tolerated_categories()
                     if self.fault_plan is not None else ())
        self.invariant_checker = self._make_checker(invariants, tolerated)
        if self.invariant_checker is not None:
            self.invariant_checker.attach(self)

    @staticmethod
    def _make_checker(invariants, tolerated=()):
        if not invariants:
            return None
        from ..verify.invariants import VirtInvariantChecker

        if isinstance(invariants, VirtInvariantChecker):
            if tolerated:
                invariants.tolerate(*tolerated)
            return invariants
        if invariants == "collect":
            return VirtInvariantChecker(mode="collect", tolerated=tolerated)
        return VirtInvariantChecker(tolerated=tolerated)

    def check_invariants(self) -> None:
        """Run a full virt-ledger sweep now (no-op when checking is off)."""
        if self.invariant_checker is not None:
            self.invariant_checker.check_full()

    # -- VM lifecycle --------------------------------------------------------

    def create_vm(self, name: str, cfg: Optional[MachineConfig] = None,
                  weight: int = 256) -> VirtualMachine:
        """Boot a guest machine and attach it as a vCPU."""
        if any(vm.name == name for vm in self.vms):
            raise SimulationError(f"vm name {name!r} already in use")
        machine = Machine(cfg or default_config(),
                          invariants=self._guest_invariants)
        vm = VirtualMachine(name, machine, weight, self)
        self.scheduler.register(vm)
        self._install_pv_interface(vm)
        self.vms.append(vm)
        if self.invariant_checker is not None:
            self.invariant_checker.on_vm_created(vm)
        return vm

    def vm(self, name: str) -> VirtualMachine:
        for vm in self.vms:
            if vm.name == name:
                return vm
        raise KeyError(f"no such vm {name!r}")

    def _install_pv_interface(self, vm: VirtualMachine) -> None:
        """Register the paravirtual calls a guest uses to see through its
        own (steal-frozen) clock: the host-backed time source and the
        hypervisor-reported steal counter."""

        def sys_pv_host_time(kernel, task):
            yield Compute(_PV_CALL_CYCLES)
            return vm.host_now_estimate()

        def sys_pv_steal(kernel, task):
            yield Compute(_PV_CALL_CYCLES)
            # The guest-visible steal counter: identical to the host ledger
            # unless the steal clock is lying (fault layer).
            return vm.machine.kernel.timekeeper.steal_ns

        table = vm.machine.kernel.syscalls
        table.register("pv_host_time", sys_pv_host_time)
        table.register("pv_steal", sys_pv_steal)

    # -- ledger maintenance --------------------------------------------------

    def _sync_vm(self, vm: VirtualMachine) -> None:
        """Bring a non-RUNNING vCPU's ledger up to host-now: RUNNABLE time
        is steal, BLOCKED time is guest idle (clock catches up 1:1)."""
        now = self.clock.now
        delta = now - vm.last_sync_host_ns
        if delta <= 0:
            return
        if vm.state is VcpuState.RUNNABLE:
            vm.steal_ns += delta
            # The paravirtual steal clock may lie (fault layer): the guest
            # sees the scaled value while the host-side ledger — and every
            # conservation law built on it — keeps the truth.
            reported = delta if self._steal_lie == 1.0 \
                else int(delta * self._steal_lie)
            vm.machine.kernel.timekeeper.account_steal(reported)
            self.steal_lie_ns += reported - delta
            if self.invariant_checker is not None:
                self.invariant_checker.on_steal(vm, delta)
        elif vm.state is VcpuState.BLOCKED:
            vm.idle_ns += delta
            target = vm.last_sync_guest_ns + delta
            vm.machine.clock.advance_to(target)
            vm.last_sync_guest_ns = target
            checker = vm.machine.invariant_checker
            if checker is not None:
                checker.on_idle_advance(delta)
            if self.invariant_checker is not None:
                self.invariant_checker.on_guest_idle(vm, delta)
        vm.last_sync_host_ns = now

    def sync_ledgers(self) -> None:
        """Sync every descheduled vCPU's ledger to host-now (the RUNNING
        one is synced at every slice boundary already)."""
        for vm in self.vms:
            if vm.state is not VcpuState.RUNNING:
                self._sync_vm(vm)

    # -- scheduling ----------------------------------------------------------

    def _earliest_wake(self) -> Optional[int]:
        wake = None
        for vm in self.vms:
            if vm.state is VcpuState.BLOCKED and vm.wake_host_ns is not None:
                if wake is None or vm.wake_host_ns < wake:
                    wake = vm.wake_host_ns
        return wake

    def _wake_vm(self, vm: VirtualMachine) -> None:
        self._sync_vm(vm)  # attribute the blocked gap as guest idle
        vm.state = VcpuState.RUNNABLE
        vm.wake_host_ns = None
        self.scheduler.on_wake(vm)
        if (self.current is not None
                and self.scheduler.check_preempt(self.current, vm)):
            self.current.preemptions += 1
            self.need_resched = True

    def _block_vm(self, vm: VirtualMachine) -> None:
        """The guest halted: park the vCPU until its next event is due."""
        next_event = vm.machine.events.next_time()
        vm.state = VcpuState.BLOCKED
        if next_event is None:
            vm.wake_host_ns = None  # parked forever (guest timer stopped)
        else:
            vm.wake_host_ns = (self.clock.now
                               + (next_event - vm.machine.clock.now))
        if self.current is vm:
            self.current = None
            self.need_resched = True

    def _reschedule(self) -> None:
        prev = self.current
        if prev is not None:
            # Xen semantics: the descheduled vCPU goes to the *tail* of its
            # priority class, so equal-priority vCPUs round-robin.
            self.scheduler.requeue(prev)
        candidates = [vm for vm in self.vms
                      if vm.state in (VcpuState.RUNNABLE, VcpuState.RUNNING)]
        nxt = self.scheduler.pick_next(candidates)
        self.need_resched = False
        if nxt is prev:
            if prev is not None:
                self._slice_end_ns = self.clock.now + self.cfg.slice_ns
            return
        if prev is not None:
            prev.state = VcpuState.RUNNABLE
        if nxt is not None:
            self._sync_vm(nxt)  # accrue the runnable wait as steal
            nxt.state = VcpuState.RUNNING
            self._slice_end_ns = self.clock.now + self.cfg.slice_ns
            self.vcpu_switches += 1
        self.current = nxt

    # -- the accounting tick ---------------------------------------------------

    def _account_tick(self) -> None:
        """One hypervisor accounting tick: bill a whole tick to whichever
        vCPU is sampled on the core (utime/stime split by the sampled guest
        CPU mode) and run the credit debit/refill."""
        self.ticks += 1
        cur = self.current
        self.scheduler.charge_tick(cur, self.vms)
        if cur is None:
            self.idle_ticks += 1
        else:
            guest_kernel = cur.machine.kernel
            user = (guest_kernel.current is not None
                    and guest_kernel.cpu.mode is CPUMode.USER)
            if user:
                cur.billed_utime_ns += self.cfg.tick_ns
            else:
                cur.billed_stime_ns += self.cfg.tick_ns
            cur.sampled_ticks += 1
        self._next_tick_ns += self.cfg.tick_ns
        if self.invariant_checker is not None:
            self.invariant_checker.on_tick()

    # -- the main loop ---------------------------------------------------------

    def step(self) -> bool:
        """One hypervisor loop iteration.  Returns False when no vCPU can
        ever progress again."""
        now = self.clock.now
        if now > self.cfg.max_time_ns:
            raise SimulationError(
                f"hypervisor exceeded max_time_ns at {now}ns")

        for vm in self.vms:
            if (vm.state is VcpuState.BLOCKED and vm.wake_host_ns is not None
                    and vm.wake_host_ns <= now):
                self._wake_vm(vm)
        while now >= self._next_tick_ns:
            self._account_tick()
        if (self.current is not None and now >= self._slice_end_ns):
            self.need_resched = True
        if self.need_resched or self.current is None:
            self._reschedule()

        cur = self.current
        if cur is None:
            wake = self._earliest_wake()
            if wake is None:
                return False  # every guest parked forever
            target = min(wake, self._next_tick_ns)
            idle = target - now
            self.clock.advance_to(target)
            self.host_idle_ns += idle
            if self.invariant_checker is not None:
                self.invariant_checker.on_host_idle(idle)
            return True

        stop = min(self._next_tick_ns, self._slice_end_ns)
        wake = self._earliest_wake()
        if wake is not None and wake < stop:
            stop = wake
        budget = stop - now
        consumed, idled = cur.run_slice(budget)
        self.clock.advance(consumed)
        cur.ran_ns += consumed
        cur.last_sync_host_ns = self.clock.now
        cur.last_sync_guest_ns = cur.machine.clock.now
        if self.invariant_checker is not None:
            self.invariant_checker.on_run(cur, consumed)
        if idled:
            self._block_vm(cur)
        return True

    def run_for(self, duration_ns: int) -> None:
        """Advance host time by ``duration_ns``."""
        deadline = self.clock.now + duration_ns
        while self.clock.now < deadline:
            if not self.step():
                idle = deadline - self.clock.now
                self.clock.advance_to(deadline)
                self.host_idle_ns += idle
                if self.invariant_checker is not None and idle > 0:
                    self.invariant_checker.on_host_idle(idle)
                self.sync_ledgers()
                return

    def run_until(self, predicate: Callable[[], bool],
                  max_ns: Optional[int] = None) -> None:
        """Run until ``predicate()`` holds; raises on deadline/deadlock."""
        deadline = (self.clock.now + max_ns) if max_ns is not None else None
        while not predicate():
            if deadline is not None and self.clock.now >= deadline:
                raise SimulationError(
                    f"hypervisor run_until deadline exceeded at "
                    f"{self.clock.now}ns")
            if not self.step():
                raise DeadlockError(
                    "no vCPU can progress but the predicate is unsatisfied")
        self.sync_ledgers()

    def run_until_exit(self, tasks: Sequence[Task],
                       max_ns: Optional[int] = None) -> None:
        """Run until every guest task in ``tasks`` has exited (the tasks
        may live in different guests)."""
        targets = list(tasks)

        def done() -> bool:
            return all(t.state in (TaskState.ZOMBIE, TaskState.DEAD)
                       for t in targets)

        self.run_until(done, max_ns=max_ns)

    # -- reporting ---------------------------------------------------------------

    def ledger(self, vm: VirtualMachine) -> Dict[str, int]:
        """The vCPU's exact + billed ledger (sync first for fresh numbers)."""
        self.sync_ledgers()
        return {
            "ran_ns": vm.ran_ns,
            "idle_ns": vm.idle_ns,
            "steal_ns": vm.steal_ns,
            "host_wall_ns": self.clock.now - vm.attach_host_ns,
            "billed_utime_ns": vm.billed_utime_ns,
            "billed_stime_ns": vm.billed_stime_ns,
            "sampled_ticks": vm.sampled_ticks,
        }

    def summary(self) -> str:
        self.sync_ledgers()
        lines = [f"host {self.clock.now / 1e9:9.3f}s  ticks={self.ticks} "
                 f"switches={self.vcpu_switches} "
                 f"idle={self.host_idle_ns / 1e9:.3f}s",
                 f"{'vm':<12} {'state':<9} {'ran':>9} {'steal':>9} "
                 f"{'idle':>9} {'billed':>9} {'ticks':>6}"]
        for vm in self.vms:
            lines.append(
                f"{vm.name:<12} {vm.state.value:<9} "
                f"{vm.ran_ns / 1e9:>8.3f}s {vm.steal_ns / 1e9:>8.3f}s "
                f"{vm.idle_ns / 1e9:>8.3f}s "
                f"{vm.billed_total_ns / 1e9:>8.3f}s {vm.sampled_ticks:>6}")
        return "\n".join(lines)
