"""HTTP surface of ``repro serve`` — stdlib only, JSON in and out.

A :class:`ReproServer` is a ``ThreadingHTTPServer`` wrapping one
:class:`~repro.serve.service.MeteringService`; every request thread calls
into the service, which serialises on the store's lock — the HTTP layer
adds no state of its own beyond the request counters on ``/metrics``.

Routes (all responses JSON unless noted):

========  ==================================  =====================================
method    path                                body / result
========  ==================================  =====================================
GET       ``/healthz``                        liveness + version
GET       ``/metrics``                        Prometheus text format (0.0.4)
POST      ``/v1/tenants``                     ``{name, plan?, quota_ns?}`` → tenant
GET       ``/v1/tenants``                     all tenants
GET       ``/v1/tenants/{tid}``               tenant + job-state counts
POST      ``/v1/tenants/{tid}/quota``         ``{quota_ns}`` → tenant
GET       ``/v1/tenants/{tid}/usage``         usage ledger + totals
GET       ``/v1/tenants/{tid}/jobs``          this tenant's jobs
POST      ``/v1/tenants/{tid}/jobs``          ``{spec, wait?, idempotency_key?,
                                              over_quota?}`` → job (429 over quota)
POST      ``/v1/tenants/{tid}/fleet``         ``{fleet, wait?, idempotency_key?,
                                              over_quota?}`` → fleet job
                                              (docs/fleet.md; poll when async)
GET       ``/v1/jobs/{jid}``                  job document (poll for async jobs)
GET       ``/v1/jobs/{jid}/invoice``          the bill
GET       ``/v1/jobs/{jid}/trust``            clocksource trust report
GET       ``/v1/jobs/{jid}/audit``            tenant-side steal/overbilling audit
GET       ``/v1/jobs/{jid}/fleet``            a fleet job's aggregate report
========  ==================================  =====================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import ServeConfig

from .metrics import PROMETHEUS_CONTENT_TYPE
from .service import MeteringService, ServiceError
from .store import QuotaExceeded, StoreError, UsageStore

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Request bodies above this are refused outright (spec documents are small).
MAX_BODY_BYTES = 1 << 20


def _json_bytes(doc: Any) -> bytes:
    return (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    server: "ReproServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # pragma: no cover - manual serving only
            super().log_message(format, *args)

    def _reply(self, status: int, body: bytes,
               content_type: str = JSON_CONTENT_TYPE) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.service.metrics.observe_http(self.command, status)

    def _reply_json(self, status: int, doc: Any) -> None:
        self._reply(status, _json_bytes(doc))

    def _reply_error(self, status: int, message: str,
                     **extra: Any) -> None:
        doc = {"error": message}
        doc.update(extra)
        self._reply_json(status, doc)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].rstrip("/")
        return tuple(part for part in path.split("/") if part)

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        try:
            handled = self._handle(method, self._route(), service)
        except QuotaExceeded as exc:
            self._reply_error(429, str(exc), job=exc.job)
        except ServiceError as exc:
            self._reply_error(exc.status, str(exc))
        except StoreError as exc:
            self._reply_error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_error(500, f"{type(exc).__name__}: {exc}")
        else:
            if not handled:
                self._reply_error(
                    404, f"no route for {method} {self.path}")

    def _handle(self, method: str, route: Tuple[str, ...],
                service: MeteringService) -> bool:
        if method == "GET" and route == ("healthz",):
            from .. import __version__
            self._reply_json(200, {"ok": True, "version": __version__,
                                   "store": service.store.path})
            return True
        if method == "GET" and route == ("metrics",):
            self._reply(200, service.metrics_text().encode("utf-8"),
                        content_type=PROMETHEUS_CONTENT_TYPE)
            return True
        if route[:1] != ("v1",):
            return False

        if route[1:2] == ("tenants",):
            if len(route) == 2:
                if method == "POST":
                    body = self._read_body()
                    name = body.get("name")
                    if not isinstance(name, str) or not name:
                        raise ServiceError(
                            "tenant registration needs a non-empty "
                            "string 'name'")
                    tenant = service.register_tenant(
                        name, plan=body.get("plan", "per-cpu-second"),
                        quota_ns=body.get("quota_ns"))
                    self._reply_json(201, tenant)
                    return True
                if method == "GET":
                    self._reply_json(200,
                                     {"tenants": service.store.tenants()})
                    return True
                return False
            tenant_id = route[2]
            tail = route[3:]
            if method == "GET" and tail == ():
                self._reply_json(200, service.tenant_doc(tenant_id))
                return True
            if method == "POST" and tail == ("quota",):
                body = self._read_body()
                if "quota_ns" not in body:
                    raise ServiceError("quota update needs 'quota_ns' "
                                       "(null clears the quota)")
                self._reply_json(
                    200, service.set_quota(tenant_id, body["quota_ns"]))
                return True
            if method == "GET" and tail == ("usage",):
                self._reply_json(200, service.usage_doc(tenant_id))
                return True
            if tail == ("jobs",):
                if method == "GET":
                    self._reply_json(
                        200, {"jobs": service.jobs_doc(tenant_id)})
                    return True
                body = self._read_body()
                spec_doc = body.get("spec")
                if not isinstance(spec_doc, dict):
                    raise ServiceError(
                        "submission needs a 'spec' object (see docs/serve.md)")
                job = service.submit(
                    tenant_id, spec_doc,
                    idempotency_key=body.get("idempotency_key"),
                    wait=bool(body.get("wait", True)),
                    over_quota=body.get("over_quota", "reject"))
                self._reply_json(200, job)
                return True
            if method == "POST" and tail == ("fleet",):
                body = self._read_body()
                fleet_doc = body.get("fleet")
                if not isinstance(fleet_doc, dict):
                    raise ServiceError(
                        "fleet submission needs a 'fleet' object "
                        "(see docs/fleet.md)")
                job = service.submit_fleet(
                    tenant_id, fleet_doc,
                    idempotency_key=body.get("idempotency_key"),
                    wait=bool(body.get("wait", True)),
                    over_quota=body.get("over_quota", "reject"))
                self._reply_json(200, job)
                return True
            return False

        if route[1:2] == ("jobs",) and len(route) >= 3 and method == "GET":
            job_id = route[2]
            tail = route[3:]
            if tail == ():
                self._reply_json(200, service.job_doc(job_id))
                return True
            if tail == ("invoice",):
                self._reply_json(200, service.invoice_doc(job_id))
                return True
            if tail == ("trust",):
                self._reply_json(200, service.trust_doc(job_id))
                return True
            if tail == ("audit",):
                self._reply_json(200, service.audit_doc(job_id))
                return True
            if tail == ("fleet",):
                self._reply_json(200, service.fleet_doc(job_id))
                return True
        return False


class ReproServer(ThreadingHTTPServer):
    """The serve daemon: HTTP front over one :class:`MeteringService`."""

    daemon_threads = True

    def __init__(self, service: MeteringService, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Run the accept loop on a daemon thread (tests, selftest).

        The tight poll interval keeps ``close()`` prompt — shutdown()
        blocks until the accept loop notices the flag.
        """
        thread = threading.Thread(
            target=lambda: self.serve_forever(poll_interval=0.02),
            name="repro-serve-http", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.service.close()


def serve_forever(cfg: Optional["ServeConfig"] = None,
                  verbose: bool = True) -> None:
    """Entry point for ``repro serve``: block until interrupted."""
    from ..config import ServeConfig

    cfg = cfg or ServeConfig()
    cfg.validate()
    store = UsageStore(cfg.db)
    service = MeteringService(
        store, jobs=cfg.jobs,
        audit_tolerance_fraction=cfg.audit_tolerance_fraction,
        audit_floor_ns=cfg.audit_tolerance_floor_ns)
    server = ReproServer(service, host=cfg.host, port=cfg.port,
                         verbose=verbose)
    print(f"repro serve listening on {server.address} (store: {cfg.db}, "
          f"{cfg.jobs} worker{'s' if cfg.jobs != 1 else ''})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
    finally:
        server.close()
