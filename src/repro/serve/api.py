"""HTTP surface of ``repro serve`` — stdlib only, JSON in and out.

A :class:`ReproServer` is a ``ThreadingHTTPServer`` wrapping one
:class:`~repro.serve.service.MeteringService`; every request thread calls
into the service, which serialises on the store's lock — the HTTP layer
adds no state of its own beyond the request counters on ``/metrics``.

Routes (all responses JSON unless noted):

========  ==================================  =====================================
method    path                                body / result
========  ==================================  =====================================
GET       ``/healthz``                        liveness + version
GET       ``/readyz``                         readiness (200, or 503 while
                                              draining / store down)
GET       ``/metrics``                        Prometheus text format (0.0.4)
POST      ``/v1/tenants``                     ``{name, plan?, quota_ns?}`` → tenant
GET       ``/v1/tenants``                     all tenants
GET       ``/v1/tenants/{tid}``               tenant + job-state counts
POST      ``/v1/tenants/{tid}/quota``         ``{quota_ns}`` → tenant
GET       ``/v1/tenants/{tid}/usage``         usage ledger + totals
GET       ``/v1/tenants/{tid}/jobs``          this tenant's jobs
POST      ``/v1/tenants/{tid}/jobs``          ``{spec, wait?, idempotency_key?,
                                              over_quota?}`` → job (429 over quota)
POST      ``/v1/tenants/{tid}/fleet``         ``{fleet, wait?, idempotency_key?,
                                              over_quota?}`` → fleet job
                                              (docs/fleet.md; poll when async)
GET       ``/v1/jobs/{jid}``                  job document (poll for async jobs)
POST      ``/v1/jobs/{jid}/retry``            re-dispatch a failed/crashed job
                                              (idempotent billing: never
                                              double-bills)
GET       ``/v1/jobs/{jid}/invoice``          the bill
GET       ``/v1/jobs/{jid}/trust``            clocksource trust report
GET       ``/v1/jobs/{jid}/audit``            tenant-side steal/overbilling audit
GET       ``/v1/jobs/{jid}/fleet``            a fleet job's aggregate report
========  ==================================  =====================================
"""

from __future__ import annotations

import contextlib
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import ServeConfig

from .metrics import PROMETHEUS_CONTENT_TYPE
from .service import MeteringService, ServiceError
from .store import QuotaExceeded, StoreError, UsageStore

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Request bodies above this are refused outright (spec documents are small).
MAX_BODY_BYTES = 1 << 20


def _json_bytes(doc: Any) -> bytes:
    return (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode("utf-8")


def _timeout_from(body: Dict[str, Any]) -> Optional[float]:
    """Parse an optional per-request ``timeout_s`` deadline."""
    timeout_s = body.get("timeout_s")
    if timeout_s is None:
        return None
    if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
        raise ServiceError("timeout_s must be a positive number")
    return float(timeout_s)


class _Handler(BaseHTTPRequestHandler):
    server: "ReproServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # pragma: no cover - manual serving only
            super().log_message(format, *args)

    def _reply(self, status: int, body: bytes,
               content_type: str = JSON_CONTENT_TYPE) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.service.metrics.observe_http(self.command, status)

    def _reply_json(self, status: int, doc: Any) -> None:
        self._reply(status, _json_bytes(doc))

    def _reply_error(self, status: int, message: str,
                     **extra: Any) -> None:
        doc = {"error": message}
        doc.update(extra)
        self._reply_json(status, doc)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].rstrip("/")
        return tuple(part for part in path.split("/") if part)

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _reply_truncated(self) -> None:
        """Injected connection reset: claim a full body, send half, drop
        the connection — the client sees a short read mid-JSON."""
        body = _json_bytes({"error": "chaos: connection reset"})
        self.send_response(200)
        self.send_header("Content-Type", JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body) * 2))
        self.end_headers()
        self.wfile.write(body[:len(body) // 2])
        self.close_connection = True
        self.server.service.metrics.observe_http(self.command, 200)

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        chaos = self.server.chaos
        if chaos is not None:
            fault = chaos.http_fault()
            if fault is not None:
                kind, delay_ms = fault
                if kind == "error":
                    self._reply_error(503, "chaos: injected server error")
                    return
                if kind == "reset":
                    self._reply_truncated()
                    return
                time.sleep(delay_ms / 1000.0)  # kind == "slow"
        try:
            handled = self._handle(method, self._route(), service)
        except QuotaExceeded as exc:
            self._reply_error(429, str(exc), job=exc.job)
        except ServiceError as exc:
            self._reply_error(exc.status, str(exc))
        except StoreError as exc:
            self._reply_error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_error(500, f"{type(exc).__name__}: {exc}")
        else:
            if not handled:
                self._reply_error(
                    404, f"no route for {method} {self.path}")

    def _handle(self, method: str, route: Tuple[str, ...],
                service: MeteringService) -> bool:
        if method == "GET" and route == ("healthz",):
            from .. import __version__
            self._reply_json(200, {"ok": True, "version": __version__,
                                   "store": service.store.path})
            return True
        if method == "GET" and route == ("readyz",):
            ready = service.readiness()
            self._reply_json(200 if ready["ready"] else 503, ready)
            return True
        if method == "GET" and route == ("metrics",):
            self._reply(200, service.metrics_text().encode("utf-8"),
                        content_type=PROMETHEUS_CONTENT_TYPE)
            return True
        if route[:1] != ("v1",):
            return False

        if route[1:2] == ("tenants",):
            if len(route) == 2:
                if method == "POST":
                    body = self._read_body()
                    name = body.get("name")
                    if not isinstance(name, str) or not name:
                        raise ServiceError(
                            "tenant registration needs a non-empty "
                            "string 'name'")
                    tenant = service.register_tenant(
                        name, plan=body.get("plan", "per-cpu-second"),
                        quota_ns=body.get("quota_ns"))
                    self._reply_json(201, tenant)
                    return True
                if method == "GET":
                    self._reply_json(200,
                                     {"tenants": service.store.tenants()})
                    return True
                return False
            tenant_id = route[2]
            tail = route[3:]
            if method == "GET" and tail == ():
                self._reply_json(200, service.tenant_doc(tenant_id))
                return True
            if method == "POST" and tail == ("quota",):
                body = self._read_body()
                if "quota_ns" not in body:
                    raise ServiceError("quota update needs 'quota_ns' "
                                       "(null clears the quota)")
                self._reply_json(
                    200, service.set_quota(tenant_id, body["quota_ns"]))
                return True
            if method == "GET" and tail == ("usage",):
                self._reply_json(200, service.usage_doc(tenant_id))
                return True
            if tail == ("jobs",):
                if method == "GET":
                    self._reply_json(
                        200, {"jobs": service.jobs_doc(tenant_id)})
                    return True
                body = self._read_body()
                spec_doc = body.get("spec")
                if not isinstance(spec_doc, dict):
                    raise ServiceError(
                        "submission needs a 'spec' object (see docs/serve.md)")
                job = service.submit(
                    tenant_id, spec_doc,
                    idempotency_key=body.get("idempotency_key"),
                    wait=bool(body.get("wait", True)),
                    over_quota=body.get("over_quota", "reject"),
                    timeout_s=_timeout_from(body))
                self._reply_json(200, job)
                return True
            if method == "POST" and tail == ("fleet",):
                body = self._read_body()
                fleet_doc = body.get("fleet")
                if not isinstance(fleet_doc, dict):
                    raise ServiceError(
                        "fleet submission needs a 'fleet' object "
                        "(see docs/fleet.md)")
                host_range = body.get("host_range")
                if host_range is not None and (
                        not isinstance(host_range, (list, tuple))
                        or len(host_range) != 2):
                    raise ServiceError(
                        "host_range must be a [lo, hi) pair of host "
                        "indices")
                job = service.submit_fleet(
                    tenant_id, fleet_doc,
                    idempotency_key=body.get("idempotency_key"),
                    wait=bool(body.get("wait", True)),
                    over_quota=body.get("over_quota", "reject"),
                    timeout_s=_timeout_from(body),
                    host_range=host_range)
                self._reply_json(200, job)
                return True
            return False

        if route[1:2] == ("jobs",) and len(route) >= 3:
            job_id = route[2]
            tail = route[3:]
            if method == "POST" and tail == ("retry",):
                body = self._read_body()
                job = service.retry_job(
                    job_id, wait=bool(body.get("wait", True)),
                    timeout_s=_timeout_from(body))
                self._reply_json(200, job)
                return True
            if method != "GET":
                return False
            if tail == ():
                self._reply_json(200, service.job_doc(job_id))
                return True
            if tail == ("invoice",):
                self._reply_json(200, service.invoice_doc(job_id))
                return True
            if tail == ("trust",):
                self._reply_json(200, service.trust_doc(job_id))
                return True
            if tail == ("audit",):
                self._reply_json(200, service.audit_doc(job_id))
                return True
            if tail == ("fleet",):
                self._reply_json(200, service.fleet_doc(job_id))
                return True
        return False


class ReproServer(ThreadingHTTPServer):
    """The serve daemon: HTTP front over one :class:`MeteringService`."""

    daemon_threads = True

    def __init__(self, service: MeteringService, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False,
                 chaos: Optional[Any] = None) -> None:
        self.service = service
        self.verbose = verbose
        self.chaos = chaos
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Run the accept loop on a daemon thread (tests, selftest).

        The tight poll interval keeps ``close()`` prompt — shutdown()
        blocks until the accept loop notices the flag.
        """
        thread = threading.Thread(
            target=lambda: self.serve_forever(poll_interval=0.02),
            name="repro-serve-http", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.service.close()

    def graceful_close(self, drain_timeout_s: Optional[float] = None) -> bool:
        """Stop accepting, drain in-flight jobs, then close the store.

        Returns True when every in-flight job finished inside the drain
        deadline; False means the pool was abandoned with work cancelled.
        """
        self.shutdown()
        self.server_close()
        return self.service.shutdown(drain_timeout_s)


def serve_forever(cfg: Optional["ServeConfig"] = None,
                  verbose: bool = True,
                  ready: Optional[Callable[["ReproServer"], None]] = None,
                  ) -> None:
    """Entry point for ``repro serve``: block until interrupted.

    Installs SIGTERM/SIGINT handlers (main thread only) that stop the
    accept loop and drain in-flight jobs before the store closes, so a
    supervisor's stop signal never strands a half-billed job.  The
    optional ``ready`` callback fires with the bound server before the
    accept loop starts — tests use it to learn the ephemeral port.
    """
    from ..config import ServeConfig

    cfg = cfg or ServeConfig()
    cfg.validate()
    store = UsageStore(cfg.db, busy_timeout_ms=cfg.busy_timeout_ms)
    service = MeteringService(
        store, jobs=cfg.jobs,
        audit_tolerance_fraction=cfg.audit_tolerance_fraction,
        audit_floor_ns=cfg.audit_tolerance_floor_ns)
    server = ReproServer(service, host=cfg.host, port=cfg.port,
                         verbose=verbose)

    stop_signals: Dict[str, int] = {}
    previous = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum: int, frame: Any) -> None:
            name = signal.Signals(signum).name
            stop_signals[name] = stop_signals.get(name, 0) + 1
            # shutdown() blocks until the accept loop exits; calling it
            # from the loop's own thread would deadlock, so hop threads.
            threading.Thread(target=server.shutdown,
                             name="repro-serve-stop", daemon=True).start()

        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _on_signal)

    print(f"repro serve listening on {server.address} (store: {cfg.db}, "
          f"{cfg.jobs} worker{'s' if cfg.jobs != 1 else ''})")
    try:
        if ready is not None:
            ready(server)
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        for sig, handler in previous.items():
            with contextlib.suppress(ValueError):
                signal.signal(sig, handler)
        if stop_signals:
            print(f"received {'/'.join(sorted(stop_signals))}, "
                  f"draining (up to {cfg.drain_timeout_s:g}s)")
        drained = server.graceful_close(cfg.drain_timeout_s)
        if not drained:
            print("drain deadline elapsed; unfinished jobs were cancelled")
