"""Prometheus-text-format counters for the serve daemon.

The fleet-health series the ROADMAP asks for, in the plain exposition
format (``# HELP`` / ``# TYPE`` / ``name{labels} value``) so any scraper —
or ``curl | grep`` — can read them.  Wherever a counter has a durable
source of truth it is *derived from the store at scrape time* (jobs by
state, billed ns by tenant and trust grade, quota rejections): a crash
and restart can never make the metrics disagree with the ledger.  Only
genuinely process-local counters (HTTP requests served, jobs in flight,
store fsyncs this process) live in memory.

Output is deterministic: families in declaration order, label values
sorted — the API-contract suite pins the format.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import UsageStore

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _sample(name: str, labels: Dict[str, str], value) -> str:
    if labels:
        body = ",".join(f'{k}="{_escape(str(v))}"'
                        for k, v in sorted(labels.items()))
        return f"{name}{{{body}}} {value}"
    return f"{name} {value}"


class MetricsRegistry:
    """Counter registry + exposition renderer for one service process."""

    def __init__(self, store: "UsageStore") -> None:
        self._store = store
        self._lock = threading.Lock()
        self._http_requests: Dict[Tuple[str, str], int] = {}
        self._jobs_inflight = 0
        self._jobs_failed = 0
        self._quota_rejections: Dict[str, int] = {}
        self._jobs_served_from_ledger = 0

    # -- in-memory counters ------------------------------------------------

    def observe_http(self, method: str, code: int) -> None:
        key = (method.upper(), str(code))
        with self._lock:
            self._http_requests[key] = self._http_requests.get(key, 0) + 1

    def job_started(self) -> None:
        with self._lock:
            self._jobs_inflight += 1

    def job_finished(self) -> None:
        with self._lock:
            self._jobs_inflight -= 1

    def job_failed(self) -> None:
        with self._lock:
            self._jobs_failed += 1

    def quota_rejected(self, tenant_name: str) -> None:
        with self._lock:
            self._quota_rejections[tenant_name] = \
                self._quota_rejections.get(tenant_name, 0) + 1

    def served_from_ledger(self) -> None:
        with self._lock:
            self._jobs_served_from_ledger += 1

    # -- exposition --------------------------------------------------------

    def render(self) -> str:
        """The ``/metrics`` page."""
        store = self._store
        with self._lock:
            http = dict(self._http_requests)
            inflight = self._jobs_inflight
            failed = self._jobs_failed
            rejections = dict(self._quota_rejections)
            from_ledger = self._jobs_served_from_ledger

        lines: List[str] = []

        def family(name: str, kind: str, help_text: str,
                   samples: List[str]) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(samples)

        counts = store.job_state_counts()
        family("repro_serve_jobs_total", "counter",
               "Jobs ever submitted, by current state.",
               [_sample("repro_serve_jobs_total", {"state": state},
                        counts[state]) for state in sorted(counts)])
        family("repro_serve_jobs_inflight", "gauge",
               "Jobs currently executing on the worker pool.",
               [_sample("repro_serve_jobs_inflight", {}, inflight)])
        family("repro_serve_jobs_failed_total", "counter",
               "Job executions that raised and were recorded as failed "
               "(never silently swallowed).",
               [_sample("repro_serve_jobs_failed_total", {}, failed)])
        family("repro_serve_jobs_served_from_ledger_total", "counter",
               "Completed jobs answered from the durable ledger "
               "without re-running the simulation.",
               [_sample("repro_serve_jobs_served_from_ledger_total", {},
                        from_ledger)])
        billed = store.billed_ns_by_tenant_trust()
        family("repro_serve_billed_ns_total", "counter",
               "Billed CPU nanoseconds by tenant and trust grade.",
               [_sample("repro_serve_billed_ns_total",
                        {"tenant": tenant, "trust": trust}, total)
                for (tenant, trust), total in sorted(billed.items())])
        family("repro_serve_ledger_entries_total", "counter",
               "Rows in the append-only usage ledger.",
               [_sample("repro_serve_ledger_entries_total", {},
                        store.ledger_count())])
        family("repro_serve_quota_rejections_total", "counter",
               "Submissions rejected because the tenant was over budget.",
               [_sample("repro_serve_quota_rejections_total",
                        {"tenant": tenant}, n)
                for tenant, n in sorted(rejections.items())]
               or [_sample("repro_serve_quota_rejections_total",
                           {"tenant": ""}, 0)])
        family("repro_serve_store_fsyncs_total", "counter",
               "Durable commits (fsyncs) the usage store performed.",
               [_sample("repro_serve_store_fsyncs_total", {},
                        store.fsyncs)])
        family("repro_serve_deadline_exceeded_total", "counter",
               "Jobs whose waiter's deadline elapsed while they ran "
               "(durable job-row marker, survives restarts).",
               [_sample("repro_serve_deadline_exceeded_total", {},
                        store.deadline_exceeded_count())])
        # Resilience counters: zero and inert without a resilient store
        # wrapper; live when a chaos plan installed one.
        family("repro_serve_store_retries_total", "counter",
               "Store operations re-issued after a transient SQLite "
               "error by the resilient wrapper.",
               [_sample("repro_serve_store_retries_total", {},
                        getattr(store, "retries_total", 0))])
        breaker = getattr(store, "breaker", None)
        family("repro_serve_breaker_open", "gauge",
               "1 while the store circuit breaker refuses calls.",
               [_sample("repro_serve_breaker_open", {},
                        1 if breaker is not None and breaker.is_open
                        else 0)])
        injector = getattr(store, "chaos_injector", None)
        if injector is not None:
            counts = injector.injected_by_site()
            family("repro_serve_chaos_injected_total", "counter",
                   "Faults the chaos injector deliberately fired, by "
                   "site and kind.",
                   [_sample("repro_serve_chaos_injected_total",
                            {"fault": fault}, n)
                    for fault, n in sorted(counts.items())]
                   or [_sample("repro_serve_chaos_injected_total",
                               {"fault": ""}, 0)])
        family("repro_serve_http_requests_total", "counter",
               "HTTP requests served, by method and status code.",
               [_sample("repro_serve_http_requests_total",
                        {"method": method, "code": code}, n)
                for (method, code), n in sorted(http.items())]
               or [_sample("repro_serve_http_requests_total",
                           {"method": "GET", "code": "0"}, 0)])
        return "\n".join(lines) + "\n"
