"""End-to-end selftest for ``repro serve`` — also the CI smoke scenario.

Boots a *real* server on an ephemeral port and drives it over HTTP the
way a tenant would (stdlib ``urllib``, no test framework):

* an **honest** tenant submits the paper's W workload and must get a
  ``consistent`` audit verdict;
* an **attacker** tenant submits the same workload under the §IV-B1
  scheduling attack (nice −20, tick-dodging forks) and must get billed
  for the stolen cycles *and flagged* by the tenant audit;
* a re-submission of the honest spec is served from the durable ledger
  without re-running, byte-identical invoice included;
* a **capped** tenant exhausts its CPU-time quota and sees a 429, then a
  queued submission released by a quota raise;
* ``/metrics`` exposes the whole story and the store passes its
  integrity check (conservation law included).

Every observation lands in the same ``[PASS]/[FAIL]`` check list the
``vm``/``faults`` commands use, and ``repro serve --selftest`` exits
non-zero if any check fails.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from .api import ReproServer
from .service import MeteringService
from .store import UsageStore

POLL_INTERVAL_S = 0.02
POLL_TIMEOUT_S = 60.0


class _Client:
    """Tiny JSON-over-HTTP client for the selftest (stdlib only)."""

    def __init__(self, base: str) -> None:
        self.base = base

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Any, str]:
        """(status, parsed JSON or None, raw text)."""
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        req = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                status = resp.status
                text = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            status = exc.code
            text = exc.read().decode("utf-8")
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        return status, doc, text

    def get(self, path: str) -> Tuple[int, Any, str]:
        return self.request("GET", path)

    def post(self, path: str,
             body: Optional[Dict[str, Any]] = None) -> Tuple[int, Any, str]:
        return self.request("POST", path, body or {})

    def poll_job(self, job_id: str) -> Dict[str, Any]:
        deadline = time.monotonic() + POLL_TIMEOUT_S
        while True:
            status, job, _ = self.get(f"/v1/jobs/{job_id}")
            if status == 200 and job["state"] in ("completed", "failed",
                                                  "rejected"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still "
                                   f"{job and job.get('state')!r} after "
                                   f"{POLL_TIMEOUT_S}s")
            time.sleep(POLL_INTERVAL_S)


def _canon(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True)


def run_selftest(db: str, scale: float = 0.1, jobs: int = 2,
                 quiet: bool = False) -> Dict[str, Any]:
    """Run the scenario against a throwaway server; return the report doc
    (``passed``, ``checks``, endpoint samples)."""
    from ..analysis.figures import paper_workload_params

    checks: List[Dict[str, Any]] = []

    def check(name: str, passed: bool, detail: str) -> None:
        checks.append({"name": name, "passed": bool(passed),
                       "detail": detail})
        if not quiet:
            print(f"  [{'PASS' if passed else 'FAIL'}] {name} ({detail})")

    params = dict(paper_workload_params(scale)["W"])
    honest_spec = {"program": "W", "program_kwargs": params,
                   "label": "serve:honest"}
    attack_spec = {"program": "W", "program_kwargs": params,
                   "attack": "scheduling",
                   "attack_kwargs": {"nice": -20,
                                     "forks": max(1, int(8_000 * scale))},
                   "label": "serve:attacker"}

    store = UsageStore(db)
    service = MeteringService(store, jobs=jobs)
    server = ReproServer(service)
    server.start_background()
    client = _Client(server.address)
    try:
        status, health, _ = client.get("/healthz")
        check("healthz answers", status == 200 and health.get("ok") is True,
              f"status={status} doc={health}")

        _, honest, _ = client.post("/v1/tenants", {"name": "honest"})
        _, attacker, _ = client.post(
            "/v1/tenants", {"name": "attacker", "plan": "per-cpu-second"})
        status, bad, _ = client.post("/v1/tenants",
                                     {"name": "bad", "plan": "free-lunch"})
        check("unknown plan rejected",
              status == 400 and "plan" in bad.get("error", ""),
              f"status={status} error={bad.get('error')!r}")

        # Honest tenant: synchronous submit, audit must come back clean.
        status, hjob, _ = client.post(
            f"/v1/tenants/{honest['tenant_id']}/jobs",
            {"spec": honest_spec})
        check("honest job completes synchronously",
              status == 200 and hjob["state"] == "completed"
              and hjob["invoice"] is not None,
              f"status={status} state={hjob.get('state')}")
        _, haudit, _ = client.get(f"/v1/jobs/{hjob['job_id']}/audit")
        check("honest tenant's audit is consistent",
              haudit["verdict"] == "consistent" and not haudit["flagged"],
              f"verdict={haudit['verdict']} "
              f"overbilling={haudit['overbilling_ns'] / 1e9:+.3f}s")

        # Attacker tenant: §IV-B1 scheduling attack, asynchronous submit.
        status, ajob, _ = client.post(
            f"/v1/tenants/{attacker['tenant_id']}/jobs",
            {"spec": attack_spec, "wait": False})
        check("async submit returns immediately with a pollable job",
              status == 200 and ajob["job_id"].startswith("j-"),
              f"status={status} state={ajob.get('state')}")
        ajob = client.poll_job(ajob["job_id"])
        check("attacker job completes", ajob["state"] == "completed",
              f"state={ajob['state']} error={ajob.get('error')}")
        _, aaudit, _ = client.get(f"/v1/jobs/{ajob['job_id']}/audit")
        check("scheduling attack flagged by the tenant audit",
              aaudit["flagged"]
              and aaudit["verdict"] in ("overbilled", "misreported"),
              f"verdict={aaudit['verdict']} "
              f"overbilling={aaudit['overbilling_ns'] / 1e9:+.3f}s")
        check("attack inflates the victim's bill",
              ajob["invoice"]["billed_ns"] > hjob["invoice"]["billed_ns"],
              f"attacked={ajob['invoice']['billed_ns'] / 1e9:.3f}s "
              f"honest={hjob['invoice']['billed_ns'] / 1e9:.3f}s")

        # Idempotency: same key returns the same job, no re-run.
        status, hjob2, _ = client.post(
            f"/v1/tenants/{honest['tenant_id']}/jobs",
            {"spec": honest_spec, "idempotency_key": "retry-1"})
        status, hjob3, _ = client.post(
            f"/v1/tenants/{honest['tenant_id']}/jobs",
            {"spec": honest_spec, "idempotency_key": "retry-1"})
        check("idempotency key dedups the resubmission",
              hjob2["job_id"] == hjob3["job_id"],
              f"{hjob2['job_id']} vs {hjob3['job_id']}")
        check("resubmitted spec served from the ledger, not re-run",
              hjob2["cached"] is True,
              f"cached={hjob2['cached']}")
        check("ledger-served invoice byte-identical to the original",
              _canon(hjob2["invoice"]) == _canon(hjob["invoice"]),
              f"{len(_canon(hjob2['invoice']))} bytes compared")

        # Quota: capped tenant runs once, then hits its budget.
        _, capped, _ = client.post(
            "/v1/tenants", {"name": "capped", "quota_ns": 1_000_000})
        status, cjob, _ = client.post(
            f"/v1/tenants/{capped['tenant_id']}/jobs",
            {"spec": dict(honest_spec, label="serve:capped")})
        check("capped tenant's first job runs (budget not yet consumed)",
              status == 200 and cjob["state"] == "completed",
              f"status={status} state={cjob.get('state')}")
        status, rejected, _ = client.post(
            f"/v1/tenants/{capped['tenant_id']}/jobs",
            {"spec": dict(honest_spec, label="serve:capped2")})
        check("over-budget submission rejected with 429",
              status == 429 and rejected["job"]["state"] == "rejected",
              f"status={status} error={rejected.get('error')!r}")
        status, queued, _ = client.post(
            f"/v1/tenants/{capped['tenant_id']}/jobs",
            {"spec": dict(honest_spec, label="serve:capped3"),
             "over_quota": "queue", "wait": False})
        check("over-budget submission can queue instead",
              status == 200 and queued["state"] == "queued",
              f"status={status} state={queued.get('state')}")
        client.post(f"/v1/tenants/{capped['tenant_id']}/quota",
                    {"quota_ns": None})
        released = client.poll_job(queued["job_id"])
        check("queued job released by the quota raise",
              released["state"] == "completed",
              f"state={released['state']}")

        # Usage history and the conservation law.
        _, usage, _ = client.get(
            f"/v1/tenants/{honest['tenant_id']}/usage")
        ledger_sum = sum(entry["billed_ns"] for entry in usage["ledger"])
        check("usage ledger sums to the reported total",
              ledger_sum == usage["total_billed_ns"] and ledger_sum > 0,
              f"{len(usage['ledger'])} entries, "
              f"{ledger_sum / 1e9:.3f}s billed")
        integrity = store.integrity_check()
        check("store integrity + conservation law hold",
              integrity["ok"],
              f"problems={integrity['problems']}")

        # Error surface.
        status, _, _ = client.get("/v1/jobs/j-999999")
        check("unknown job is a 404", status == 404, f"status={status}")
        status, badspec, _ = client.post(
            f"/v1/tenants/{honest['tenant_id']}/jobs",
            {"spec": {"program": "W", "bogus_field": 1}})
        check("malformed spec is a 400",
              status == 400 and "bogus_field" in badspec.get("error", ""),
              f"status={status} error={badspec.get('error')!r}")

        # Metrics exposition.
        status, _, metrics_text = client.get("/metrics")
        expected_series = [
            'repro_serve_jobs_total{state="completed"}',
            "repro_serve_jobs_inflight",
            'repro_serve_billed_ns_total{tenant="attacker"',
            'repro_serve_quota_rejections_total{tenant="capped"} 1',
            "repro_serve_ledger_entries_total",
            "repro_serve_store_fsyncs_total",
            'repro_serve_http_requests_total{code="429",method="POST"} 1',
        ]
        missing = [s for s in expected_series if s not in metrics_text]
        check("/metrics exposes the expected series",
              status == 200 and not missing,
              f"missing={missing}" if missing
              else f"{len(metrics_text.splitlines())} lines")
        completed = service.store.job_state_counts()["completed"]
        check("metrics job counts agree with the store",
              f'repro_serve_jobs_total{{state="completed"}} {completed}'
              in metrics_text,
              f"completed={completed}")
    finally:
        server.close()

    passed = all(entry["passed"] for entry in checks)
    return {
        "command": "serve-selftest",
        "db": db,
        "scale": scale,
        "jobs": jobs,
        "passed": passed,
        "checks": checks,
        "metrics": metrics_text if passed else None,
    }
