"""Tenant/job/quota domain logic for the serve daemon — no HTTP in here.

:class:`MeteringService` glues the durable :class:`~repro.serve.store
.UsageStore` to the deterministic :func:`~repro.runner.specs.run_spec`
execution path on a thread worker pool:

* submissions are validated (:func:`~repro.runner.specs.spec_from_dict`),
  deduplicated by idempotency key, quota-checked against the tenant's
  ledger total, and executed concurrently;
* a spec whose identity already has a completed result in the ledger is
  **served from the ledger** — the simulator is deterministic, so the
  stored result is bit-identical to a re-run;
* every completed job is billed through one idempotent store transaction,
  so the conservation law ``sum(job billed) == ledger total`` holds under
  any interleaving and any number of crash-and-retry cycles;
* invoices, trust reports and tenant audits are derived *deterministically
  from the stored result document* — the concurrency suite holds the
  service's invoices byte-identical to serially produced ones.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..metering.billing import (
    PER_SECOND_PLAN,
    PLANS,
    PricePlan,
    TrustReport,
)
from ..metering.steal import audit_result
from ..analysis.experiment import ExperimentResult
from ..runner.specs import SpecError, run_spec, spec_from_dict, spec_key
from .metrics import MetricsRegistry
from .store import InjectedCrash, QuotaExceeded, UsageStore

INVOICE_SCHEMA = "repro-serve-invoice-v1"
TRUST_SCHEMA = "repro-serve-trust-v1"
AUDIT_SCHEMA = "repro-serve-audit-v1"
USAGE_SCHEMA = "repro-serve-usage-v1"

#: Trust-mix grades a fleet job folds into its synthesized watchdog
#: counters, worst-grade-wins like per-run interval grading.
_FLEET_TRUST_KEYS = (("trusted", "watchdog_intervals_trusted"),
                     ("degraded", "watchdog_intervals_degraded"),
                     ("untrusted", "watchdog_intervals_untrusted"))


class ServiceError(ReproError):
    """A request the service refuses; carries the HTTP status to use."""

    status = 400


class NotFound(ServiceError):
    status = 404


class Conflict(ServiceError):
    status = 409


def _trust_doc(trust: TrustReport) -> Dict[str, Any]:
    return {
        "level": trust.level.value,
        "uncertainty_ns": trust.uncertainty_ns,
        "intervals_trusted": trust.intervals_trusted,
        "intervals_degraded": trust.intervals_degraded,
        "intervals_untrusted": trust.intervals_untrusted,
    }


def spec_doc_name(spec_doc: Dict[str, Any]) -> str:
    """Mirror of :attr:`~repro.runner.specs.ExperimentSpec.name` on the
    wire-format document (used for invoice job names, so an invoice is a
    pure function of the spec and its result)."""
    label = spec_doc.get("label") or ""
    if label:
        return label
    base = f"{spec_doc.get('program')}:{spec_doc.get('attack') or 'none'}"
    return f"vm:{base}" if spec_doc.get("vm") is not None else base


def invoice_doc_for(job_name: str, result_doc: Dict[str, Any],
                    plan: PricePlan) -> Dict[str, Any]:
    """One job's invoice as a plain JSON document.

    Deterministic in (job_name, result document, plan) alone — both the
    service and the concurrency suite's serial reference path call exactly
    this function, which is what makes "concurrent invoices are
    byte-identical to serial ones" a meaningful equality.
    """
    usage = result_doc["usage"]
    utime_ns = int(usage["utime_ns"])
    stime_ns = int(usage["stime_ns"])
    billed_ns = utime_ns + stime_ns
    trust = TrustReport.from_stats(result_doc.get("stats", {}))
    low = max(0, billed_ns - trust.uncertainty_ns)
    high = billed_ns + trust.uncertainty_ns
    return {
        "schema": INVOICE_SCHEMA,
        "job": job_name,
        "plan": plan.name,
        "utime_ns": utime_ns,
        "stime_ns": stime_ns,
        "billed_ns": billed_ns,
        "billable_bounds_ns": [low, high],
        "amount_microdollars": plan.cost_microdollars(billed_ns),
        "trust": _trust_doc(trust),
    }


class MeteringService:
    """Hosts many concurrent tenant simulations over one durable ledger."""

    def __init__(self, store: UsageStore, jobs: int = 2,
                 audit_tolerance_fraction: float = 0.1,
                 audit_floor_ns: int = 5_000_000,
                 run: Callable[..., ExperimentResult] = run_spec,
                 fleet_jobs: int = 1,
                 chaos: Optional[Any] = None) -> None:
        self.store = store
        self.metrics = MetricsRegistry(store)
        self.audit_tolerance_fraction = audit_tolerance_fraction
        self.audit_floor_ns = audit_floor_ns
        #: Worker processes per fleet job (1 = serial; the aggregate is
        #: bit-identical either way).
        self.fleet_jobs = max(1, fleet_jobs)
        #: Optional :class:`~repro.chaos.inject.ChaosInjector` firing
        #: worker faults at the top of each job attempt.  None (the
        #: default, and always the case with an empty chaos plan) adds
        #: zero work to the execution path.
        self._chaos = chaos
        #: Set while a graceful shutdown is in progress: /readyz flips to
        #: 503 so load balancers stop routing here, while in-flight jobs
        #: finish billing.
        self.draining = False
        self._run = run
        self._pool = ThreadPoolExecutor(max_workers=max(1, jobs),
                                        thread_name_prefix="repro-serve")
        self._futures: Dict[str, Future] = {}
        self._lock = threading.Lock()

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, name: str, plan: str = PER_SECOND_PLAN.name,
                        quota_ns: Optional[int] = None) -> Dict[str, Any]:
        if plan not in PLANS:
            raise ServiceError(f"unknown plan {plan!r}; "
                               f"have {sorted(PLANS)}")
        return self.store.register_tenant(name, plan=plan, quota_ns=quota_ns)

    def tenant_doc(self, tenant_id: str) -> Dict[str, Any]:
        try:
            tenant = self.store.tenant(tenant_id)
        except KeyError:
            raise NotFound(f"no such tenant {tenant_id!r}") from None
        tenant["billed_ns"] = self.store.ledger_total_ns(tenant_id)
        tenant["jobs"] = {
            state: sum(1 for job in
                       self.store.jobs_for_tenant(tenant_id, state=state))
            for state in ("queued", "running", "completed", "failed",
                          "rejected")}
        return tenant

    def set_quota(self, tenant_id: str,
                  quota_ns: Optional[int]) -> Dict[str, Any]:
        try:
            self.store.set_quota(tenant_id, quota_ns)
        except KeyError:
            raise NotFound(f"no such tenant {tenant_id!r}") from None
        self._release_queued(tenant_id)
        return self.tenant_doc(tenant_id)

    def _release_queued(self, tenant_id: str) -> None:
        """Dispatch queued (over-budget) jobs that now fit the quota.

        Admission goes through :meth:`UsageStore.try_reserve`, which
        re-reads the tenant row under the store lock on every iteration —
        a concurrent ``set_quota`` lowering the budget mid-release is
        honoured immediately instead of being evaluated against a tenant
        dict fetched once before the loop.
        """
        for job in self.store.jobs_for_tenant(tenant_id, state="queued"):
            with self._lock:
                if job["job_id"] in self._futures:
                    continue  # already dispatched, just not running yet
                if not self.store.try_reserve(tenant_id, job["job_id"]):
                    break
                self._dispatch(job["job_id"])

    # -- submission --------------------------------------------------------

    def submit(self, tenant_id: str, spec_doc: Dict[str, Any],
               idempotency_key: Optional[str] = None, wait: bool = True,
               over_quota: str = "reject",
               timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Submit one workload spec for a tenant.

        ``wait=True`` blocks until the job reaches a terminal state and
        returns the completed job document (invoice included);
        ``wait=False`` returns immediately with the job id for polling.
        ``over_quota`` picks the §II budget policy: ``"reject"`` refuses
        the submission (HTTP 429 at the API layer), ``"queue"`` parks it
        until the quota is raised.
        """
        try:
            spec = spec_from_dict(spec_doc)
        except SpecError as exc:
            raise ServiceError(f"bad spec: {exc}") from None
        return self._admit(tenant_id, spec_key(spec), dict(spec_doc),
                           idempotency_key=idempotency_key, wait=wait,
                           over_quota=over_quota, timeout_s=timeout_s)

    def submit_fleet(self, tenant_id: str, fleet_doc: Dict[str, Any],
                     idempotency_key: Optional[str] = None,
                     wait: bool = True, over_quota: str = "reject",
                     timeout_s: Optional[float] = None,
                     host_range: Optional[Any] = None) -> Dict[str, Any]:
        """Submit a whole fleet sweep (see docs/fleet.md) as one job.

        The job's identity is the fleet spec's content hash, so a repeated
        fleet submission is served from the ledger like any repeated spec;
        the population's total billed nanoseconds count against the
        tenant's quota exactly like a single run's.

        ``host_range`` (a ``[lo, hi)`` pair) submits one *shard* of the
        fleet: only those hosts run, the job's ledger identity includes
        the range (shards never ledger-serve each other), and the result
        document carries the exact partial-aggregate state for the shard
        client to merge (see docs/chaos.md).
        """
        from ..errors import ReproError as _ReproError
        from ..fleet import (
            FleetSpecError,
            check_host_range,
            fleet_from_dict,
            fleet_key,
        )

        try:
            fleet = fleet_from_dict(fleet_doc)
            host_range = check_host_range(
                fleet, tuple(host_range) if host_range is not None
                else None)
        except (FleetSpecError, _ReproError) as exc:
            raise ServiceError(f"bad fleet spec: {exc}") from None
        suffix = (f":h{host_range[0]}-{host_range[1]}"
                  if host_range is not None else "")
        spec_doc = {
            "label": (f"fleet:{fleet.hosts}x{fleet.guests}"
                      f":p={fleet.prevalence}:s={fleet.seed}{suffix}"),
            "fleet": fleet.to_dict(),
        }
        if host_range is not None:
            spec_doc["host_range"] = [host_range[0], host_range[1]]
        return self._admit(tenant_id,
                           fleet_key(fleet, host_range=host_range),
                           spec_doc, idempotency_key=idempotency_key,
                           wait=wait, over_quota=over_quota,
                           timeout_s=timeout_s)

    def _admit(self, tenant_id: str, key: str, spec_doc: Dict[str, Any],
               idempotency_key: Optional[str], wait: bool,
               over_quota: str, timeout_s: Optional[float]) -> Dict[str, Any]:
        """Create-dedup-reserve-dispatch, shared by spec and fleet
        submissions."""
        if over_quota not in ("reject", "queue"):
            raise ServiceError(
                f"over_quota must be 'reject' or 'queue', "
                f"got {over_quota!r}")
        try:
            tenant = self.store.tenant(tenant_id)
        except KeyError:
            raise NotFound(f"no such tenant {tenant_id!r}") from None

        with self._lock:
            job, created = self.store.create_job(
                tenant_id, key, dict(spec_doc),
                idempotency_key=idempotency_key)
            job_id = job["job_id"]
            if created:
                # Check-and-reserve is one atomic step under the store
                # lock: racing submissions from one tenant serialise here,
                # so at most one can be dispatched-but-unbilled against a
                # finite quota at a time (see UsageStore.try_reserve).
                if not self.store.try_reserve(tenant_id, job_id):
                    if over_quota == "reject":
                        self.store.set_job_state(
                            job_id, "rejected",
                            error="tenant over CPU-time quota")
                        self.metrics.quota_rejected(tenant["name"])
                        raise QuotaExceeded(
                            f"tenant {tenant['name']!r} is over its "
                            f"CPU-time budget", job=self.store.job(job_id))
                    # over_quota == "queue": park it, undispatched.
                    future = None
                else:
                    future = self._dispatch(job_id)
            else:
                future = self._futures.get(job_id)

        if wait and future is not None:
            self._wait(future, timeout_s, job_id)
        return self.job_doc(job_id)

    def _dispatch(self, job_id: str) -> Future:
        future = self._pool.submit(self._execute, job_id)
        self._futures[job_id] = future
        return future

    def _wait(self, future: Future, timeout_s: Optional[float],
              job_id: str) -> None:
        try:
            future.result(timeout=timeout_s)
        except FutureTimeout:
            # Still executing — the caller polls the job document.  Leave
            # a durable marker so the poller can tell "slow but alive"
            # from "lost": without it a blown deadline is invisible in
            # every record the system keeps.  Best-effort on purpose —
            # the marker must never turn a slow job into a failed one.
            with contextlib.suppress(Exception):
                self.store.mark_deadline_exceeded(job_id)
        except InjectedCrash:
            # Crash simulation: the job is left exactly as the crash left
            # it; the caller inspects the job document.
            pass
        except Exception as exc:
            # _execute records its own failures on the job row before
            # re-raising.  If it died before getting that far (the store
            # update itself failed, a dispatch-path bug), the error must
            # still never vanish silently: record it here.
            try:
                job = self.store.job(job_id)
            except KeyError:  # pragma: no cover - job row gone entirely
                return
            if job["state"] not in ("completed", "failed", "rejected"):
                self.store.set_job_state(
                    job_id, "failed",
                    error=f"{type(exc).__name__}: {exc}")
                self.metrics.job_failed()

    def retry_job(self, job_id: str, wait: bool = True,
                  timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Re-dispatch a job that a crash (or failure) left unfinished.

        The billing transaction is idempotent, so retrying a job that
        already reached the ledger completes it without double-billing.
        """
        job = self.job_doc(job_id)
        if job["state"] == "rejected":
            raise Conflict(f"job {job_id} was rejected; resubmit instead")
        with self._lock:
            future = self._futures.get(job_id)
            if future is None or future.done():
                future = self._dispatch(job_id)
        if wait:
            self._wait(future, timeout_s, job_id)
        return self.job_doc(job_id)

    # -- execution (worker threads) ---------------------------------------

    def _execute(self, job_id: str) -> None:
        self.metrics.job_started()
        try:
            if self._chaos is not None:
                # Injected worker crash/hang — *before* any store write,
                # so a crashed attempt is a clean retry candidate.  The
                # billing transaction is idempotent either way.
                self._chaos.worker_fault()
            job = self.store.job(job_id)
            ledger_doc = self.store.find_result_by_spec(job["spec_key"])
            if ledger_doc is not None:
                self.metrics.served_from_ledger()
                self._bill(job_id, job, ledger_doc, cached=True)
                return
            self.store.set_job_state(job_id, "running")
            if "fleet" in job["spec"]:
                result_doc = self._run_fleet_job(
                    job["spec"]["fleet"], job["spec"].get("host_range"))
            else:
                spec = spec_from_dict(job["spec"])
                result_doc = self._run(spec).to_dict()
            self._bill(job_id, job, result_doc, cached=False)
        except InjectedCrash:
            raise
        except Exception as exc:
            self.store.set_job_state(job_id, "failed",
                                     error=f"{type(exc).__name__}: {exc}")
            self.metrics.job_failed()
            raise
        finally:
            self.store.release_reservation(job_id)
            self.metrics.job_finished()

    def _run_fleet_job(self, fleet_doc: Dict[str, Any],
                       host_range: Optional[Any] = None) -> Dict[str, Any]:
        """Run a fleet sweep and shape its aggregate as a result document.

        The document is :meth:`ExperimentResult.to_dict`-compatible —
        usage carries the population's billed nanoseconds, the oracle the
        honestly-run seconds, and the trust-mix weights land in the
        watchdog counters — so billing, invoices, trust reports and the
        tenant audit all work on fleet jobs unchanged.  The full streaming
        aggregate rides along under ``fleet_report``.

        A *shard* job (``host_range`` set) additionally ships the exact
        partial-aggregate state under ``fleet_state`` so the shard client
        can merge it losslessly; unsharded fleet jobs carry no such key —
        their result documents stay byte-identical to pre-sharding ones.
        """
        from ..fleet import fleet_from_dict, run_fleet

        fleet = fleet_from_dict(fleet_doc)
        hr: Optional[Tuple[int, int]] = (
            (int(host_range[0]), int(host_range[1]))
            if host_range is not None else None)
        aggregator = run_fleet(fleet, jobs=self.fleet_jobs, host_range=hr)
        report = aggregator.report()
        stats = {wire: report["trust_mix"][grade]
                 for grade, wire in _FLEET_TRUST_KEYS
                 if report["trust_mix"][grade]}
        doc = {
            "program": "fleet",
            "attack": "population",
            "usage": {"utime_ns": report["billed_total_ns"], "stime_ns": 0},
            "attacker_usage": None,
            "wall_ns": 0,
            "rusage": None,
            "oracle_seconds": {"user": report["ran_total_ns"] / 1e9},
            "stats": stats,
            "fleet_report": report,
        }
        if hr is not None:
            doc["fleet_state"] = aggregator.to_state()
        return doc

    def _bill(self, job_id: str, job: Dict[str, Any],
              result_doc: Dict[str, Any], cached: bool) -> None:
        tenant = self.store.tenant(job["tenant_id"])
        plan = PLANS[tenant["plan"]]
        usage = result_doc["usage"]
        utime_ns = int(usage["utime_ns"])
        stime_ns = int(usage["stime_ns"])
        billed_ns = utime_ns + stime_ns
        trust = TrustReport.from_stats(result_doc.get("stats", {}))
        self.store.bill_job(
            job_id, result_doc,
            billed_ns=billed_ns, utime_ns=utime_ns, stime_ns=stime_ns,
            trust_level=trust.level.value,
            uncertainty_ns=trust.uncertainty_ns,
            amount_microdollars=plan.cost_microdollars(billed_ns),
            cached=cached)

    # -- queries -----------------------------------------------------------

    def job_doc(self, job_id: str) -> Dict[str, Any]:
        try:
            job = self.store.job(job_id)
        except KeyError:
            raise NotFound(f"no such job {job_id!r}") from None
        if job["state"] == "completed":
            job["invoice"] = self._invoice_for_job(job)
        else:
            job["invoice"] = None
        return job

    def _invoice_for_job(self, job: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self.store.tenant(job["tenant_id"])
        return invoice_doc_for(spec_doc_name(job["spec"]), job["result"],
                               PLANS[tenant["plan"]])

    def _completed_job(self, job_id: str) -> Dict[str, Any]:
        job = self.job_doc(job_id)
        if job["state"] != "completed":
            raise Conflict(f"job {job_id} is {job['state']}, not completed")
        return job

    def invoice_doc(self, job_id: str) -> Dict[str, Any]:
        return self._completed_job(job_id)["invoice"]

    def trust_doc(self, job_id: str) -> Dict[str, Any]:
        job = self._completed_job(job_id)
        trust = TrustReport.from_stats(job["result"].get("stats", {}))
        doc = _trust_doc(trust)
        doc["schema"] = TRUST_SCHEMA
        doc["job_id"] = job_id
        return doc

    def audit_doc(self, job_id: str) -> Dict[str, Any]:
        """The live tenant audit: guest steal estimator for VM jobs, the
        provenance oracle for process jobs (see
        :func:`repro.metering.steal.audit_result`)."""
        job = self._completed_job(job_id)
        result = ExperimentResult.from_dict(job["result"])
        trust = TrustReport.from_stats(result.stats)
        report = audit_result(
            result,
            tolerance_fraction=self.audit_tolerance_fraction,
            tolerance_floor_ns=self.audit_floor_ns,
            trust_uncertainty_ns=trust.uncertainty_ns)
        return {
            "schema": AUDIT_SCHEMA,
            "job_id": job_id,
            "verdict": report.verdict.value,
            "flagged": report.verdict.value != "consistent",
            "billed_ns": report.billed_ns,
            "ran_ns": report.ran_ns,
            "overbilling_ns": report.overbilling_ns,
            "est_steal_ns": report.est_steal_ns,
            "reported_steal_ns": report.reported_steal_ns,
            "report_gap_ns": report.report_gap_ns,
            "samples": report.samples,
            "tolerance_fraction": report.tolerance_fraction,
            "tolerance_floor_ns": report.tolerance_floor_ns,
        }

    def fleet_doc(self, job_id: str) -> Dict[str, Any]:
        """The full streaming aggregate of a completed fleet job."""
        job = self._completed_job(job_id)
        report = job["result"].get("fleet_report")
        if report is None:
            raise Conflict(f"job {job_id} is not a fleet job")
        doc = dict(report)
        doc["job_id"] = job_id
        return doc

    def usage_doc(self, tenant_id: str) -> Dict[str, Any]:
        tenant = self.tenant_doc(tenant_id)
        ledger = self.store.ledger_for_tenant(tenant_id)
        return {
            "schema": USAGE_SCHEMA,
            "tenant": tenant,
            "ledger": [entry.to_dict() for entry in ledger],
            "total_billed_ns": self.store.ledger_total_ns(tenant_id),
            "total_amount_microdollars": sum(
                entry.amount_microdollars for entry in ledger),
        }

    def jobs_doc(self, tenant_id: str) -> List[Dict[str, Any]]:
        self.tenant_doc(tenant_id)  # NotFound on unknown tenant
        return [self.job_doc(job["job_id"])
                for job in self.store.jobs_for_tenant(tenant_id)]

    def metrics_text(self) -> str:
        return self.metrics.render()

    def readiness(self) -> Dict[str, Any]:
        """The ``/readyz`` document: can this process *usefully* take
        traffic right now?  Liveness (``/healthz``) says the process is
        up; readiness also checks that the store answers and that no
        graceful drain is in progress, and surfaces the circuit-breaker
        state when a resilient store wrapper is installed."""
        store_ok = True
        store_error = None
        try:
            self.store.ledger_count()
        except Exception as exc:
            store_ok = False
            store_error = f"{type(exc).__name__}: {exc}"
        breaker = getattr(self.store, "breaker", None)
        with self._lock:
            inflight = sum(1 for f in self._futures.values()
                           if not f.done())
        doc: Dict[str, Any] = {
            "ready": store_ok and not self.draining,
            "draining": self.draining,
            "store_ok": store_ok,
            "jobs_inflight": inflight,
        }
        if store_error is not None:
            doc["store_error"] = store_error
        if breaker is not None:
            doc["breaker"] = breaker.state
        return doc

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait for every dispatched job to reach a terminal state.

        ``timeout_s`` is an *overall* deadline across all in-flight jobs
        (None waits indefinitely).  Returns True when everything reached
        a terminal state, False when the deadline expired with work still
        running — the caller decides whether that is a shutdown error.
        """
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        with self._lock:
            futures = dict(self._futures)
        drained = True
        for job_id, future in futures.items():
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            self._wait(future, remaining, job_id)
            if not future.done():
                drained = False
        return drained

    def shutdown(self, drain_timeout_s: Optional[float] = None) -> bool:
        """Graceful stop: flag draining, drain with a deadline, close.

        Jobs still running when the deadline passes are abandoned to the
        executor (their billing transaction is idempotent, so a restart
        retries them safely); the store is closed regardless so the WAL
        is checkpointed.  Returns :meth:`drain`'s verdict.
        """
        self.draining = True
        drained = self.drain(timeout_s=drain_timeout_s)
        # cancel_futures drops queued-but-unstarted work; running jobs
        # past the deadline are not joined (wait=False) — by design.
        self._pool.shutdown(wait=drained, cancel_futures=not drained)
        self.store.close()
        return drained

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self.store.close()
