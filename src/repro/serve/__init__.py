"""Metering-as-a-service: the ``repro serve`` multi-tenant daemon.

The serving layer turns the reproduction from a batch harness into the
production system the ROADMAP's north star asks for: many tenants submit
workload specs over a JSON/HTTP API, a worker pool executes them through
the same deterministic :func:`~repro.runner.specs.run_spec` path the
figures use, and every bill lands in a durable SQLite WAL ledger
(:class:`UsageStore`) instead of per-run JSON.  The tenant-audit and
trust-report machinery (docs/virt.md, docs/faults.md) becomes a live API:
``GET /v1/jobs/<id>/audit`` runs the steal-estimator/oracle audit on the
stored result and flags overbilling the way the paper's §III-B verifier
does offline.

Layers (each importable on its own):

* :mod:`repro.serve.store` — durable usage ledger (SQLite WAL,
  idempotent billing transactions, crash hooks for the recovery suite);
* :mod:`repro.serve.service` — tenant/job/quota domain logic on a
  thread worker pool, no HTTP anywhere;
* :mod:`repro.serve.metrics` — Prometheus-text-format counters;
* :mod:`repro.serve.api` — stdlib ``ThreadingHTTPServer`` JSON wiring;
* :mod:`repro.serve.selftest` — ``repro serve --selftest``: boots the
  real daemon and drives the honest-vs-attacker end-to-end check.
"""

from .store import (
    InjectedCrash,
    LedgerEntry,
    QuotaExceeded,
    StoreError,
    UsageStore,
)
from .service import MeteringService, ServiceError, invoice_doc_for
from .metrics import MetricsRegistry
from .api import ReproServer, serve_forever
from .selftest import run_selftest

__all__ = [
    "InjectedCrash",
    "LedgerEntry",
    "MeteringService",
    "MetricsRegistry",
    "QuotaExceeded",
    "ReproServer",
    "ServiceError",
    "StoreError",
    "UsageStore",
    "invoice_doc_for",
    "run_selftest",
    "serve_forever",
]
