"""Durable usage store: the append-only billing ledger behind ``repro serve``.

One SQLite database in WAL mode holds three tables:

* ``tenants`` — who may submit work and under what CPU-time budget;
* ``jobs`` — every submission ever made, keyed by a store-assigned job id
  and deduplicated per tenant by an idempotency key;
* ``ledger`` — the append-only usage ledger: exactly one row per
  *completed* job, keyed by spec identity (:func:`~repro.runner.specs
  .spec_key`), carrying the billed nanoseconds, the trust grade and the
  invoice amount.

Crash safety is the point of the design, not an afterthought:

* every billing write is **one transaction** — the ledger INSERT and the
  job-state UPDATE commit together or not at all, so a crash can never
  leave a billed job unrecorded or a recorded job unbilled (no torn rows);
* the ledger INSERT is **idempotent** (``job_id`` is UNIQUE and conflicts
  are ignored), so a crash-and-retry of the same job bills exactly once;
* the WAL journal means a reopened store recovers committed transactions
  and drops uncommitted ones without any application-level repair.

The concurrency/crash suite drives these guarantees directly through
:meth:`UsageStore.set_crash_hook`: a registered hook fires at a named
point inside the billing transaction (``bill:after-insert``,
``bill:before-commit``, ``bill:after-commit``) and raising
:class:`InjectedCrash` there simulates the process dying mid-write.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ReproError


class StoreError(ReproError):
    """The usage store was asked something inconsistent."""


class QuotaExceeded(StoreError):
    """A submission would exceed the tenant's CPU-time budget."""

    def __init__(self, message: str, job: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.job = job


class InjectedCrash(RuntimeError):
    """Raised by test crash hooks to simulate dying mid-transaction."""


#: Job lifecycle.  ``queued`` jobs exist in the store but have not started
#: (over-quota submissions with ``over_quota="queue"`` park here);
#: ``rejected`` jobs were refused at submission and will never run.
JOB_STATES = ("queued", "running", "completed", "failed", "rejected")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tenants (
    tenant_id   TEXT PRIMARY KEY,
    name        TEXT NOT NULL UNIQUE,
    plan        TEXT NOT NULL DEFAULT 'per-cpu-second',
    quota_ns    INTEGER
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id          TEXT PRIMARY KEY,
    tenant_id       TEXT NOT NULL REFERENCES tenants(tenant_id),
    idempotency_key TEXT NOT NULL,
    spec_key        TEXT NOT NULL,
    spec_json       TEXT NOT NULL,
    state           TEXT NOT NULL,
    cached          INTEGER NOT NULL DEFAULT 0,
    error           TEXT,
    result_json     TEXT,
    deadline_exceeded INTEGER NOT NULL DEFAULT 0,
    UNIQUE (tenant_id, idempotency_key)
);
CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs(tenant_id);
CREATE INDEX IF NOT EXISTS idx_jobs_spec ON jobs(spec_key);
CREATE TABLE IF NOT EXISTS ledger (
    entry_id            INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id              TEXT NOT NULL UNIQUE REFERENCES jobs(job_id),
    tenant_id           TEXT NOT NULL,
    spec_key            TEXT NOT NULL,
    billed_ns           INTEGER NOT NULL,
    utime_ns            INTEGER NOT NULL,
    stime_ns            INTEGER NOT NULL,
    trust_level         TEXT NOT NULL,
    uncertainty_ns      INTEGER NOT NULL,
    amount_microdollars INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_ledger_tenant ON ledger(tenant_id);
CREATE INDEX IF NOT EXISTS idx_ledger_spec ON ledger(spec_key);
"""


@dataclass(frozen=True)
class LedgerEntry:
    """One append-only usage record — a completed job's bill."""

    entry_id: int
    job_id: str
    tenant_id: str
    spec_key: str
    billed_ns: int
    utime_ns: int
    stime_ns: int
    trust_level: str
    uncertainty_ns: int
    amount_microdollars: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry_id": self.entry_id,
            "job_id": self.job_id,
            "tenant_id": self.tenant_id,
            "spec_key": self.spec_key,
            "billed_ns": self.billed_ns,
            "utime_ns": self.utime_ns,
            "stime_ns": self.stime_ns,
            "trust_level": self.trust_level,
            "uncertainty_ns": self.uncertainty_ns,
            "amount_microdollars": self.amount_microdollars,
        }


_LEDGER_COLUMNS = ("entry_id, job_id, tenant_id, spec_key, billed_ns, "
                   "utime_ns, stime_ns, trust_level, uncertainty_ns, "
                   "amount_microdollars")


class UsageStore:
    """SQLite-WAL-backed tenant/job/ledger store.

    One connection guarded by a re-entrant lock: the worker pool's threads
    all funnel through it, so SQLite's single-writer rule is satisfied by
    construction and write transactions never interleave mid-flight.
    ``synchronous=FULL`` makes every commit an fsync (counted in
    :attr:`fsyncs` for the ``/metrics`` exposition).
    """

    #: Default lock-wait budget.  Shard workers and external auditors
    #: open the same file from other processes; without a busy timeout a
    #: writer holding the file for one commit makes every concurrent
    #: touch raise "database is locked" *immediately* instead of waiting
    #: out the (millisecond-scale) contention.
    DEFAULT_BUSY_TIMEOUT_MS = 5_000

    def __init__(self, path: str,
                 busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS) -> None:
        self.path = str(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        if self.busy_timeout_ms < 0:
            raise StoreError("busy_timeout_ms must be >= 0")
        self._lock = threading.RLock()
        self._crash_hooks: Dict[str, Callable[[], None]] = {}
        #: In-flight quota reservations (job_id -> tenant_id).  Purely
        #: in-memory: a reservation exists only while the job that took it
        #: is dispatched-but-unbilled in *this* process, so a restart can
        #: never leak one.
        self._reservations: Dict[str, str] = {}
        #: Committed write transactions — with synchronous=FULL, a lower
        #: bound on the fsyncs the durability story paid for.
        self.fsyncs = 0
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        # Explicit transaction control: the store BEGINs and COMMITs by
        # hand so the crash hooks sit at exact, nameable points.
        self._conn.isolation_level = None
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
        with self._transaction("init"):
            for statement in _SCHEMA.strip().split(";\n"):
                if statement.strip():
                    self._conn.execute(statement)
            self._migrate()

    def _migrate(self) -> None:
        """Bring a pre-existing database up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` skips tables that already exist,
        so columns added after a store shipped need an explicit ALTER.
        Runs inside the init transaction.
        """
        columns = {row[1] for row in
                   self._conn.execute("PRAGMA table_info(jobs)")}
        if "deadline_exceeded" not in columns:
            self._conn.execute(
                "ALTER TABLE jobs ADD COLUMN deadline_exceeded "
                "INTEGER NOT NULL DEFAULT 0")

    # -- crash injection ---------------------------------------------------

    def set_crash_hook(self, point: str,
                       hook: Optional[Callable[[], None]]) -> None:
        """Install (or with ``None`` clear) a hook fired at ``point``.

        Points are ``<txn>:<where>`` with ``where`` one of ``after-insert``
        (billing only: ledger row written, job row not yet),
        ``before-commit`` (all rows written, transaction open) and
        ``after-commit`` (transaction durable).  A hook that raises aborts
        the transaction exactly as a crash at that instant would.
        """
        with self._lock:
            if hook is None:
                self._crash_hooks.pop(point, None)
            else:
                self._crash_hooks[point] = hook

    def _fire(self, point: str) -> None:
        hook = self._crash_hooks.get(point)
        if hook is not None:
            hook()

    @contextlib.contextmanager
    def _transaction(self, name: str) -> Iterator[None]:
        """BEGIN IMMEDIATE .. COMMIT with rollback on any exception.

        An exception (an injected crash included) leaves the database as a
        real crash would: the open transaction is abandoned, nothing of it
        is visible afterwards, and the connection is reusable for the
        retry.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield
                self._fire(f"{name}:before-commit")
                self._conn.execute("COMMIT")
            except BaseException:
                with contextlib.suppress(sqlite3.Error):
                    self._conn.execute("ROLLBACK")
                raise
            self.fsyncs += 1
            self._fire(f"{name}:after-commit")

    def close(self) -> None:
        with self._lock:
            with contextlib.suppress(sqlite3.Error):
                self._conn.close()

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, name: str, plan: str = "per-cpu-second",
                        quota_ns: Optional[int] = None) -> Dict[str, Any]:
        if not name or not isinstance(name, str):
            raise StoreError("tenant name must be a non-empty string")
        if quota_ns is not None and (not isinstance(quota_ns, int)
                                     or quota_ns < 0):
            raise StoreError("quota_ns must be a non-negative integer")
        with self._lock:
            row = self._conn.execute(
                "SELECT tenant_id FROM tenants WHERE name = ?",
                (name,)).fetchone()
            if row is not None:
                raise StoreError(f"tenant name {name!r} already registered")
            count = self._conn.execute(
                "SELECT COUNT(*) FROM tenants").fetchone()[0]
            tenant_id = f"t-{count + 1:04d}"
            with self._transaction("tenant"):
                self._conn.execute(
                    "INSERT INTO tenants (tenant_id, name, plan, quota_ns) "
                    "VALUES (?, ?, ?, ?)",
                    (tenant_id, name, plan, quota_ns))
        return self.tenant(tenant_id)

    def tenant(self, tenant_id: str) -> Dict[str, Any]:
        with self._lock:
            row = self._conn.execute(
                "SELECT tenant_id, name, plan, quota_ns FROM tenants "
                "WHERE tenant_id = ?", (tenant_id,)).fetchone()
        if row is None:
            raise KeyError(tenant_id)
        return {"tenant_id": row[0], "name": row[1], "plan": row[2],
                "quota_ns": row[3]}

    def tenants(self) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant_id FROM tenants ORDER BY tenant_id").fetchall()
        return [self.tenant(row[0]) for row in rows]

    def set_quota(self, tenant_id: str,
                  quota_ns: Optional[int]) -> Dict[str, Any]:
        if quota_ns is not None and (not isinstance(quota_ns, int)
                                     or quota_ns < 0):
            raise StoreError("quota_ns must be a non-negative integer")
        with self._lock:
            self.tenant(tenant_id)  # KeyError on unknown tenant
            with self._transaction("tenant"):
                self._conn.execute(
                    "UPDATE tenants SET quota_ns = ? WHERE tenant_id = ?",
                    (quota_ns, tenant_id))
        return self.tenant(tenant_id)

    # -- quota reservations ------------------------------------------------

    def try_reserve(self, tenant_id: str, job_id: str) -> bool:
        """Atomically check the tenant's quota and reserve admission.

        The check-then-dispatch race lives here: billing lands long after
        admission, so "ledger total < quota" alone lets N racing
        submissions all pass before any of them bills.  Under the store
        lock this re-reads the tenant row (a concurrent ``set_quota`` is
        always honoured), then admits only if the tenant is under budget
        **and** has no other dispatched-but-unbilled job holding a
        reservation — one in-flight job pessimistically reserves the whole
        remaining budget, which is exactly serial admission.  Unlimited
        tenants (``quota_ns`` NULL) are admitted without a reservation and
        never serialise.

        Returns True if the job may dispatch; the caller must
        :meth:`release_reservation` once the job reaches a terminal state.
        """
        with self._lock:
            tenant = self.tenant(tenant_id)  # KeyError on unknown tenant
            quota_ns = tenant["quota_ns"]
            if quota_ns is None:
                return True
            if tenant_id in self._reservations.values():
                return False
            if self.ledger_total_ns(tenant_id) >= quota_ns:
                return False
            self._reservations[job_id] = tenant_id
            return True

    def release_reservation(self, job_id: str) -> None:
        """Drop a job's quota reservation (no-op if it never took one)."""
        with self._lock:
            self._reservations.pop(job_id, None)

    def reservation_count(self) -> int:
        with self._lock:
            return len(self._reservations)

    # -- jobs --------------------------------------------------------------

    def create_job(self, tenant_id: str, spec_key: str, spec_doc: Dict,
                   idempotency_key: Optional[str] = None,
                   state: str = "queued") -> Tuple[Dict[str, Any], bool]:
        """Record a submission.  Returns ``(job_doc, created)``: a repeat
        of an idempotency key the tenant already used returns the existing
        job untouched with ``created=False`` — retrying a submission after
        a client-side crash can never enqueue (or bill) the work twice."""
        if state not in JOB_STATES:
            raise StoreError(f"unknown job state {state!r}")
        with self._lock:
            self.tenant(tenant_id)  # KeyError on unknown tenant
            if idempotency_key is not None:
                row = self._conn.execute(
                    "SELECT job_id FROM jobs WHERE tenant_id = ? AND "
                    "idempotency_key = ?",
                    (tenant_id, idempotency_key)).fetchone()
                if row is not None:
                    return self.job(row[0]), False
            count = self._conn.execute(
                "SELECT COUNT(*) FROM jobs").fetchone()[0]
            job_id = f"j-{count + 1:06d}"
            if idempotency_key is None:
                idempotency_key = f"auto:{job_id}"
            with self._transaction("job"):
                self._conn.execute(
                    "INSERT INTO jobs (job_id, tenant_id, idempotency_key, "
                    "spec_key, spec_json, state) VALUES (?, ?, ?, ?, ?, ?)",
                    (job_id, tenant_id, idempotency_key, spec_key,
                     json.dumps(spec_doc, sort_keys=True), state))
            return self.job(job_id), True

    def set_job_state(self, job_id: str, state: str,
                      error: Optional[str] = None) -> None:
        if state not in JOB_STATES:
            raise StoreError(f"unknown job state {state!r}")
        with self._lock:
            self.job(job_id)  # KeyError on unknown job
            with self._transaction("job"):
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ? WHERE job_id = ?",
                    (state, error, job_id))

    def job(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id, tenant_id, idempotency_key, spec_key, "
                "spec_json, state, cached, error, result_json, "
                "deadline_exceeded "
                "FROM jobs WHERE job_id = ?", (job_id,)).fetchone()
        if row is None:
            raise KeyError(job_id)
        return {
            "job_id": row[0],
            "tenant_id": row[1],
            "idempotency_key": row[2],
            "spec_key": row[3],
            "spec": json.loads(row[4]),
            "state": row[5],
            "cached": bool(row[6]),
            "error": row[7],
            "result": json.loads(row[8]) if row[8] is not None else None,
            "deadline_exceeded": bool(row[9]),
        }

    def mark_deadline_exceeded(self, job_id: str) -> None:
        """Record that a waiter's deadline elapsed while this job ran.

        Durable on the job row (not a process counter), so a poller can
        distinguish "slow but alive" from "lost" even across a daemon
        restart.  The marker survives completion: a job that finishes
        *after* blowing a deadline keeps the mark as an SLO paper trail.
        """
        with self._lock:
            self.job(job_id)  # KeyError on unknown job
            with self._transaction("job"):
                self._conn.execute(
                    "UPDATE jobs SET deadline_exceeded = 1 "
                    "WHERE job_id = ?", (job_id,))

    def deadline_exceeded_count(self) -> int:
        with self._lock:
            return int(self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE deadline_exceeded = 1"
            ).fetchone()[0])

    def jobs_for_tenant(self, tenant_id: str,
                        state: Optional[str] = None) -> List[Dict[str, Any]]:
        query = ("SELECT job_id FROM jobs WHERE tenant_id = ?"
                 + (" AND state = ?" if state else "") + " ORDER BY rowid")
        args = (tenant_id, state) if state else (tenant_id,)
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        return [self.job(row[0]) for row in rows]

    def job_state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for state, n in self._conn.execute(
                    "SELECT state, COUNT(*) FROM jobs GROUP BY state"):
                counts[state] = n
        return counts

    # -- billing -----------------------------------------------------------

    def bill_job(self, job_id: str, result_doc: Dict[str, Any],
                 billed_ns: int, utime_ns: int, stime_ns: int,
                 trust_level: str, uncertainty_ns: int,
                 amount_microdollars: int, cached: bool = False) -> bool:
        """Complete a job and append its ledger row — atomically.

        Returns True if this call billed the job, False if an earlier call
        already had (the idempotent retry path).  Either way the job ends
        ``completed`` with its result attached.
        """
        with self._lock:
            job = self.job(job_id)  # KeyError on unknown job
            with self._transaction("bill"):
                cursor = self._conn.execute(
                    "INSERT INTO ledger (job_id, tenant_id, spec_key, "
                    "billed_ns, utime_ns, stime_ns, trust_level, "
                    "uncertainty_ns, amount_microdollars) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT (job_id) DO NOTHING",
                    (job_id, job["tenant_id"], job["spec_key"],
                     int(billed_ns), int(utime_ns), int(stime_ns),
                     trust_level, int(uncertainty_ns),
                     int(amount_microdollars)))
                billed_now = cursor.rowcount == 1
                self._fire("bill:after-insert")
                self._conn.execute(
                    "UPDATE jobs SET state = 'completed', cached = ?, "
                    "result_json = ?, error = NULL WHERE job_id = ?",
                    (1 if cached else 0,
                     json.dumps(result_doc, sort_keys=True), job_id))
            return billed_now

    def ledger_for_tenant(self, tenant_id: str) -> List[LedgerEntry]:
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_LEDGER_COLUMNS} FROM ledger WHERE tenant_id = ? "
                f"ORDER BY entry_id", (tenant_id,)).fetchall()
        return [LedgerEntry(*row) for row in rows]

    def ledger_entry_for_job(self, job_id: str) -> Optional[LedgerEntry]:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_LEDGER_COLUMNS} FROM ledger WHERE job_id = ?",
                (job_id,)).fetchone()
        return LedgerEntry(*row) if row is not None else None

    def ledger_total_ns(self, tenant_id: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(billed_ns), 0) FROM ledger "
                "WHERE tenant_id = ?", (tenant_id,)).fetchone()
        return int(row[0])

    def ledger_count(self) -> int:
        with self._lock:
            return int(self._conn.execute(
                "SELECT COUNT(*) FROM ledger").fetchone()[0])

    def billed_ns_by_tenant_trust(self) -> Dict[Tuple[str, str], int]:
        """(tenant name, trust level) → summed billed ns, for /metrics."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT t.name, l.trust_level, SUM(l.billed_ns) "
                "FROM ledger l JOIN tenants t ON t.tenant_id = l.tenant_id "
                "GROUP BY t.name, l.trust_level").fetchall()
        return {(name, trust): int(total) for name, trust, total in rows}

    def find_result_by_spec(self, spec_key: str) -> Optional[Dict[str, Any]]:
        """The stored result of the earliest completed job with this spec
        identity — how a re-submitted spec is served from the ledger
        instead of re-run (the simulator is deterministic, so the stored
        result IS the result)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result_json FROM jobs WHERE spec_key = ? AND "
                "state = 'completed' AND result_json IS NOT NULL "
                "ORDER BY rowid LIMIT 1", (spec_key,)).fetchone()
        return json.loads(row[0]) if row is not None else None

    # -- integrity ---------------------------------------------------------

    def integrity_check(self) -> Dict[str, Any]:
        """Self-audit of the durability story, run after crash recovery.

        Verifies the SQLite file itself, the one-to-one completed-job ↔
        ledger-row relation (no torn rows, no double bills) and the
        conservation law: each tenant's ledger total equals the sum of the
        bills recomputed from the result documents stored on its completed
        jobs.
        """
        problems: List[str] = []
        with self._lock:
            quick = self._conn.execute("PRAGMA quick_check").fetchone()[0]
            if quick != "ok":  # pragma: no cover - needs real corruption
                problems.append(f"sqlite quick_check: {quick}")
            for (job_id,) in self._conn.execute(
                    "SELECT job_id FROM jobs WHERE state = 'completed' AND "
                    "job_id NOT IN (SELECT job_id FROM ledger)"):
                problems.append(f"completed job {job_id} has no ledger row")
            for (job_id,) in self._conn.execute(
                    "SELECT job_id FROM ledger WHERE job_id NOT IN "
                    "(SELECT job_id FROM jobs WHERE state = 'completed')"):
                problems.append(f"ledger row {job_id} has no completed job")
            for job_id, n in self._conn.execute(
                    "SELECT job_id, COUNT(*) FROM ledger GROUP BY job_id "
                    "HAVING COUNT(*) > 1"):
                problems.append(f"job {job_id} billed {n} times")
            for tenant in self.tenants():
                tenant_id = tenant["tenant_id"]
                from_results = 0
                for job in self.jobs_for_tenant(tenant_id,
                                                state="completed"):
                    usage = (job["result"] or {}).get("usage", {})
                    from_results += (int(usage.get("utime_ns", 0))
                                     + int(usage.get("stime_ns", 0)))
                ledger_total = self.ledger_total_ns(tenant_id)
                if ledger_total != from_results:
                    problems.append(
                        f"tenant {tenant_id}: ledger total {ledger_total} "
                        f"!= billed ns recomputed from job results "
                        f"{from_results}")
        return {"ok": not problems, "problems": problems,
                "ledger_entries": self.ledger_count(),
                "jobs": self.job_state_counts()}
