"""repro — reproduction of Liu & Ding, "On Trustworthiness of CPU Usage
Metering and Accounting" (ICDCSW 2010).

A deterministic discrete-event OS simulator (scheduler, tick accounting,
signals, ptrace, demand paging, dynamic linker, shell and devices), the
paper's six CPU-time metering attacks, trustworthy-metering defenses, and an
experiment harness regenerating every evaluation figure.

Quickstart::

    from repro import Machine, default_config
    from repro.programs.stdlib import install_standard_libraries
    from repro.programs.workloads import make_pi

    machine = Machine(default_config())
    install_standard_libraries(machine.kernel.libraries)
    shell = machine.new_shell()
    task = shell.run_command(make_pi(iterations=20_000))
    machine.run_until_exit([task])
    print(machine.kernel.accounting.usage(task))
"""

from .config import (
    CostModel,
    DiskConfig,
    MachineConfig,
    MemoryConfig,
    NS_PER_SEC,
    SchedulerConfig,
    ServeConfig,
    default_config,
)
from .errors import ReproError, SimulationError, KernelError
from .hw.machine import Machine
from .kernel.accounting import CpuUsage
from .kernel.process import Task, TaskState
from .programs.base import GuestContext, GuestFunction, Program
from .programs.ops import (
    CallLib,
    CallNext,
    Compute,
    Invoke,
    Mem,
    Provenance,
    Syscall,
)
__version__ = "1.9.0"

# Imported after __version__: repro.verify pulls in the runner, whose spec
# hashing reads the version back from this module.
from .verify.invariants import (  # noqa: E402
    InvariantChecker,
    InvariantViolation,
    default_invariants,
    set_default_invariants,
)

__all__ = [
    "CostModel",
    "DiskConfig",
    "MachineConfig",
    "MemoryConfig",
    "NS_PER_SEC",
    "SchedulerConfig",
    "ServeConfig",
    "default_config",
    "ReproError",
    "SimulationError",
    "KernelError",
    "Machine",
    "CpuUsage",
    "Task",
    "TaskState",
    "GuestContext",
    "GuestFunction",
    "Program",
    "CallLib",
    "CallNext",
    "Compute",
    "Invoke",
    "Mem",
    "Provenance",
    "Syscall",
    "InvariantChecker",
    "InvariantViolation",
    "default_invariants",
    "set_default_invariants",
    "__version__",
]
