"""Runtime fault injectors built from a :class:`~repro.faults.plan.FaultPlan`.

Each injector owns one fault family and is wired into the hardware layer by
:class:`~repro.hw.machine.Machine` (or the hypervisor, for the steal-clock
lie).  They are deliberately dumb: every decision is a pure function of the
plan, the simulated clock and a dedicated named RNG stream, so a fault
schedule replays exactly from (seed, plan).

Injectors emit trace records under
:data:`~repro.sim.tracing.HW_FAULT_CATEGORY` — a category of their own, so
hardware-fault events never fold into the pre-existing ``"fault"`` (page
fault) bucket in counters or the capacity-drop breakdown.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from ..sim.clock import Clock
from ..sim.events import EventQueue
from ..sim.tracing import HW_FAULT_CATEGORY, TraceLog
from .plan import FaultPlan

#: :meth:`TickFaultInjector.decide` verdict: swallow the tick entirely.
TICK_DROP = -1
#: Verdict: fire on schedule.
TICK_FIRE = 0


class TickFaultInjector:
    """Decides the fate of each timer fire: on time, late or lost.

    ``decide`` returns :data:`TICK_DROP`, :data:`TICK_FIRE`, or a positive
    delay in ns (always below one tick period, so a delayed tick can never
    reorder past its successor on the grid).
    """

    __slots__ = ("ticks_dropped", "ticks_delayed", "_loss_prob",
                 "_delay_prob", "_delay_max_ns", "_smi_period",
                 "_smi_duration", "_rng", "_trace")

    def __init__(self, plan: FaultPlan, rng: random.Random, tick_ns: int,
                 trace_log: Optional[TraceLog] = None) -> None:
        self.ticks_dropped = 0
        self.ticks_delayed = 0
        self._loss_prob = plan.tick_loss_prob
        self._delay_prob = plan.tick_delay_prob
        # A delay of a full period (or more) would collide with the next
        # grid tick; cap strictly below it.
        self._delay_max_ns = min(plan.tick_delay_max_ns, tick_ns - 1)
        self._smi_period = plan.smi_period_ns
        self._smi_duration = plan.smi_duration_ns
        self._rng = rng
        self._trace = trace_log

    def decide(self, now_ns: int) -> int:
        if self._smi_duration and now_ns % self._smi_period < self._smi_duration:
            # Firmware owns the core: the tick vanishes without a trace the
            # OS could see (the trace log is the experimenter's eye).
            self.ticks_dropped += 1
            self._emit(now_ns, "tick lost to SMI blackout")
            return TICK_DROP
        rng = self._rng
        if self._loss_prob and rng.random() < self._loss_prob:
            self.ticks_dropped += 1
            self._emit(now_ns, "tick lost")
            return TICK_DROP
        if self._delay_prob and rng.random() < self._delay_prob:
            delay = rng.randint(1, self._delay_max_ns)
            self.ticks_delayed += 1
            self._emit(now_ns, "tick delayed", delay_ns=delay)
            return delay
        return TICK_FIRE

    def _emit(self, now_ns: int, message: str, **data: Any) -> None:
        if self._trace is not None:
            self._trace.emit(now_ns, HW_FAULT_CATEGORY, message, **data)


class TscFault:
    """Read-side TSC distortion: drift, a one-shot step, periodic freezes.

    Applied to every TSC *read* (rdtsc and the watchdog's clocksource
    timestamp); the cycle counter the engine retires work into — the
    metering ground truth — is never touched, so conservation invariants
    hold exactly under any TSC fault.
    """

    __slots__ = ("_drift_ppm", "_step", "_step_after", "_freeze_dur",
                 "_freeze_period")

    def __init__(self, plan: FaultPlan) -> None:
        self._drift_ppm = plan.tsc_drift_ppm
        self._step = plan.tsc_step_cycles
        self._step_after = plan.tsc_step_after_cycles
        self._freeze_dur = plan.tsc_freeze_duration_cycles
        self._freeze_period = plan.tsc_freeze_period_cycles

    def transform(self, cycles: int) -> int:
        if self._freeze_dur:
            into = cycles % self._freeze_period
            if into < self._freeze_dur:
                cycles -= into  # stuck at the window start
        if self._drift_ppm:
            cycles += cycles * self._drift_ppm // 1_000_000
        if self._step and cycles >= self._step_after:
            cycles += self._step
        return cycles


class IrqStorm:
    """Spurious device-interrupt generator (no payload behind the lines).

    Self-schedules on the event queue at ``irq_storm_pps`` with ±50%
    uniform jitter from the ``faults:irq`` stream and raises the NIC line;
    the handler cost is real, the packet is not — pure stolen CPU time, the
    hardware-gone-wrong twin of the paper's interrupt flood attack.
    """

    def __init__(self, plan: FaultPlan, clock: Clock, events: EventQueue,
                 pic, rng: random.Random,
                 trace_log: Optional[TraceLog] = None) -> None:
        self.spurious_fired = 0
        self._mean_gap_ns = max(1, int(1e9 / plan.irq_storm_pps))
        self._clock = clock
        self._events = events
        self._pic = pic
        self._rng = rng
        self._trace = trace_log
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        gap = self._mean_gap_ns
        jitter = self._rng.randint(-(gap // 2), gap // 2)
        self._events.schedule(self._clock.now + max(1, gap + jitter),
                              self._fire, name="irq-storm")

    def _fire(self) -> None:
        if not self._running:
            return
        self.spurious_fired += 1
        if self._trace is not None:
            self._trace.emit(self._clock.now, HW_FAULT_CATEGORY,
                             "spurious irq")
        from ..hw.irq import IRQ_NIC

        self._pic.raise_irq(IRQ_NIC)
        self._schedule_next()


class StaleProcfs:
    """Host-side /proc reads served from snapshots up to ``staleness_ns``
    old — a metering exporter that lags the kernel it reads.  Deterministic:
    a snapshot is taken on the first read past its expiry."""

    __slots__ = ("staleness_ns", "stale_reads", "fresh_reads", "_cache")

    def __init__(self, staleness_ns: int) -> None:
        self.staleness_ns = staleness_ns
        self.stale_reads = 0
        self.fresh_reads = 0
        self._cache: Dict[Any, Tuple[int, Dict[str, Any]]] = {}

    def cached(self, key: Any, now_ns: int,
               compute: Callable[[], Dict[str, Any]]) -> Dict[str, Any]:
        entry = self._cache.get(key)
        if entry is not None and now_ns - entry[0] < self.staleness_ns:
            self.stale_reads += 1
            return dict(entry[1])
        value = compute()
        self._cache[key] = (now_ns, dict(value))
        self.fresh_reads += 1
        return value
