"""Declarative, seeded, spec-serializable hardware fault plans.

A :class:`FaultPlan` describes every deliberate hardware/clock misbehaviour
a run should suffer: lost, delayed or jittered timer ticks, TSC drift,
steps and freezes, spurious interrupt storms, SMI-style blackout windows,
stale ``/proc`` reads and a lying hypervisor steal clock.  The plan is
plain data — it round-trips through JSON, participates in the runner's
content-addressed cache identity (only when non-empty, so existing cache
keys are untouched) and is sweepable like any other spec dimension.

Determinism: the plan itself carries no randomness.  Probabilistic faults
(tick loss/delay, storm jitter) draw from dedicated named RNG streams
(``faults:*``) of the machine's :class:`~repro.sim.rng.DeterministicRng`,
so a plan plus a config seed always reproduces the same fault schedule and
never perturbs the draws other subsystems see.

The ``watchdog`` flag selects the kernel-side defense (the clocksource
watchdog plus lost-tick catch-up, see :mod:`repro.kernel.timekeeping`); it
is part of the plan so sweeps can compare defended and undefended runs
point for point.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Set

from ..errors import ConfigError


@dataclass(frozen=True)
class FaultPlan:
    """One run's worth of deliberate hardware/clock faults.

    All-defaults (with any ``watchdog`` setting) is the *empty* plan: no
    injector is installed and the run is bit-identical to one without a
    fault layer at all.
    """

    # -- timer tick faults -------------------------------------------------
    #: Probability that a timer tick is silently swallowed (the IRQ never
    #: reaches the kernel; the grid itself never drifts).
    tick_loss_prob: float = 0.0
    #: Probability that a tick fires late by a uniform random delay.
    tick_delay_prob: float = 0.0
    #: Maximum tick delay in ns (clamped below one tick period at runtime,
    #: so a delayed tick never reorders past its successor).
    tick_delay_max_ns: int = 0
    #: SMI-style blackout: every ``smi_period_ns``, ticks whose grid
    #: instant falls inside the first ``smi_duration_ns`` are suppressed
    #: (firmware owns the core; the OS sees nothing).
    smi_period_ns: int = 0
    smi_duration_ns: int = 0
    #: Which CPU's local timer the tick faults above target on an SMP
    #: machine.  None (the default) preserves the historical behavior —
    #: CPU 0, the timekeeping CPU — and is omitted from the serialized
    #: form so every pre-existing plan identity stays byte-identical.
    tick_cpu: Optional[int] = None

    # -- TSC faults (read-side: metering ground truth is untouched) --------
    #: Frequency error of the TSC clocksource, in parts per million.
    tsc_drift_ppm: int = 0
    #: One-shot step added to every TSC read at/after the trigger count.
    tsc_step_cycles: int = 0
    tsc_step_after_cycles: int = 0
    #: Periodic freeze: within each ``tsc_freeze_period_cycles`` window the
    #: first ``tsc_freeze_duration_cycles`` of reads stick at the window
    #: start (a halted/deep-C-state TSC).
    tsc_freeze_duration_cycles: int = 0
    tsc_freeze_period_cycles: int = 0
    #: Which CPU's TSC the faults above corrupt on an SMP machine (a
    #: desynced socket).  None = CPU 0, omitted when serialized, exactly
    #: like ``tick_cpu``.
    tsc_cpu: Optional[int] = None

    # -- spurious interrupt storm -----------------------------------------
    #: Rate of spurious device interrupts (no payload behind them), in
    #: interrupts per second of simulated time.  Arrival jitter is drawn
    #: from the ``faults:irq`` stream.
    irq_storm_pps: float = 0.0

    # -- stale procfs ------------------------------------------------------
    #: Host-side /proc reads return snapshots up to this old (a lagging
    #: metering exporter), 0 = always fresh.
    procfs_staleness_ns: int = 0

    # -- lying hypervisor steal clock --------------------------------------
    #: The paravirtual steal clock reports ``true_steal * factor`` to the
    #: guest (1.0 = honest).  Hypervisor-level runs only.
    steal_lie_factor: float = 1.0

    # -- defense -----------------------------------------------------------
    #: Install the clocksource watchdog + lost-tick catch-up (the kernel's
    #: defense).  Ignored by the empty plan.
    watchdog: bool = True

    def __post_init__(self) -> None:
        for name in ("tick_loss_prob", "tick_delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
        for name in ("tick_delay_max_ns", "smi_period_ns", "smi_duration_ns",
                     "tsc_drift_ppm", "tsc_step_cycles",
                     "tsc_step_after_cycles", "tsc_freeze_duration_cycles",
                     "tsc_freeze_period_cycles", "procfs_staleness_ns"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.irq_storm_pps < 0:
            raise ConfigError("irq_storm_pps must be >= 0")
        if self.steal_lie_factor < 0:
            raise ConfigError("steal_lie_factor must be >= 0")
        if self.smi_duration_ns > 0 and self.smi_period_ns <= 0:
            raise ConfigError("smi_duration_ns needs a positive "
                              "smi_period_ns")
        if (self.tsc_freeze_duration_cycles > 0
                and self.tsc_freeze_period_cycles <= 0):
            raise ConfigError("tsc_freeze_duration_cycles needs a positive "
                              "tsc_freeze_period_cycles")
        if self.tick_delay_prob > 0 and self.tick_delay_max_ns <= 0:
            raise ConfigError("tick_delay_prob needs a positive "
                              "tick_delay_max_ns")
        for name in ("tick_cpu", "tsc_cpu"):
            cpu = getattr(self, name)
            if cpu is not None and (not isinstance(cpu, int) or cpu < 0):
                raise ConfigError(f"{name} must be None or a CPU index "
                                  f">= 0, got {cpu!r}")

    # -- structure queries -------------------------------------------------

    def has_tick_faults(self) -> bool:
        return (self.tick_loss_prob > 0 or self.tick_delay_prob > 0
                or self.smi_duration_ns > 0)

    def has_tsc_faults(self) -> bool:
        return (self.tsc_drift_ppm != 0 or self.tsc_step_cycles != 0
                or self.tsc_freeze_duration_cycles > 0)

    def is_empty(self) -> bool:
        """True when the plan injects nothing (the ``watchdog`` flag alone
        does not make a plan non-empty: with no fault to defend against the
        defense is inert by construction)."""
        return not (self.has_tick_faults() or self.has_tsc_faults()
                    or self.irq_storm_pps > 0
                    or self.procfs_staleness_ns > 0
                    or self.steal_lie_factor != 1.0)

    def tolerated_categories(self) -> Set[str]:
        """Invariant-checker categories this plan *declares* broken.

        Most faults keep every conservation law intact (tick loss merely
        under-samples; catch-up replays exact jiffies; TSC faults are
        read-side only).  The lying steal clock is the exception: the guest
        timekeeper's steal counter knowingly diverges from the hypervisor
        ledger, so the ``steal-injection`` cross-check must tolerate it.
        """
        out: Set[str] = set()
        if self.steal_lie_factor != 1.0:
            out.add("steal-injection")
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full plain-data form (every field, defaults included — except
        the CPU-targeting fields, omitted while None so plan documents
        and every identity derived from them predate-SMP-targeting
        byte-identically)."""
        doc = {f.name: getattr(self, f.name) for f in fields(self)}
        for name in ("tick_cpu", "tsc_cpu"):
            if doc[name] is None:
                del doc[name]
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys fail loudly so a typo
        in a spec never silently runs fault-free."""
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(f"unknown fault plan field(s) "
                              f"{sorted(unknown)}; have {sorted(known)}")
        return cls(**dict(doc))

    def describe(self) -> str:
        """Short human summary of the active injectors."""
        parts = []
        if self.tick_loss_prob > 0:
            parts.append(f"tick-loss p={self.tick_loss_prob:g}")
        if self.tick_delay_prob > 0:
            parts.append(f"tick-delay p={self.tick_delay_prob:g}"
                         f"<={self.tick_delay_max_ns}ns")
        if self.smi_duration_ns > 0:
            parts.append(f"smi {self.smi_duration_ns}/{self.smi_period_ns}ns")
        if self.tsc_drift_ppm != 0:
            parts.append(f"tsc-drift {self.tsc_drift_ppm}ppm")
        if self.tsc_step_cycles != 0:
            parts.append(f"tsc-step {self.tsc_step_cycles}cy")
        if self.tsc_freeze_duration_cycles > 0:
            parts.append("tsc-freeze")
        if self.tick_cpu is not None:
            parts.append(f"tick@cpu{self.tick_cpu}")
        if self.tsc_cpu is not None:
            parts.append(f"tsc@cpu{self.tsc_cpu}")
        if self.irq_storm_pps > 0:
            parts.append(f"irq-storm {self.irq_storm_pps:g}pps")
        if self.procfs_staleness_ns > 0:
            parts.append(f"stale-procfs {self.procfs_staleness_ns}ns")
        if self.steal_lie_factor != 1.0:
            parts.append(f"steal-lie x{self.steal_lie_factor:g}")
        if not parts:
            return "no faults"
        wd = "on" if self.watchdog else "off"
        return ", ".join(parts) + f" (watchdog {wd})"


def normalize_plan(faults) -> "FaultPlan | None":
    """Coerce a faults argument (None, mapping or plan) to an active
    :class:`FaultPlan`, collapsing empty plans to None so the zero-fault
    path stays byte-for-byte identical to a machine without a fault layer."""
    if faults is None:
        return None
    plan = faults if isinstance(faults, FaultPlan) \
        else FaultPlan.from_dict(dict(faults))
    return None if plan.is_empty() else plan


def sweep_plan(intensity: float, watchdog: bool = True) -> FaultPlan:
    """The canonical one-knob plan used by the ``faultsweep`` figure and
    the fault CLI: tick loss scales directly with ``intensity`` and TSC
    drift crosses the watchdog's unstable threshold at high intensity."""
    if intensity < 0:
        raise ConfigError("fault intensity must be >= 0")
    return FaultPlan(
        tick_loss_prob=min(0.9, round(intensity, 6)),
        tsc_drift_ppm=int(1_000_000 * intensity),
        watchdog=watchdog,
    )
