"""Deterministic hardware/clock fault injection.

The fault layer turns the simulator from "attacks on a perfect clock" into
"metering under unreliable and adversarial time": a serializable
:class:`FaultPlan` describes which hardware lies (timer, TSC, interrupt
lines, /proc, the paravirtual steal clock) and the injectors in
:mod:`repro.faults.injectors` carry it out, seeded and replayable.  The
kernel-side defense — the clocksource watchdog with lost-tick catch-up and
trust-graded metering intervals — lives in :mod:`repro.kernel.timekeeping`.

See ``docs/faults.md`` for the fault taxonomy, watchdog semantics and
trust levels.
"""

from .injectors import (
    TICK_DROP,
    TICK_FIRE,
    IrqStorm,
    StaleProcfs,
    TickFaultInjector,
    TscFault,
)
from .plan import FaultPlan, normalize_plan, sweep_plan

__all__ = [
    "FaultPlan",
    "normalize_plan",
    "sweep_plan",
    "TickFaultInjector",
    "TscFault",
    "IrqStorm",
    "StaleProcfs",
    "TICK_DROP",
    "TICK_FIRE",
]
