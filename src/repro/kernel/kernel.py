"""The kernel facade: task lifecycle, scheduling glue, signals, IRQs, OOM.

Owns every cross-cutting operation the engine, syscalls and machine loop
need.  The accounting-relevant paths are deliberately explicit:

* :meth:`consume` — every slice of executed work lands here once, with its
  mode, provenance and charge kind (billing scheme + ground-truth oracle);
* :meth:`_timer_irq` — the per-jiffy sampling point (paper §III-A);
* :meth:`context switch <schedule>` — switch cost charged to prev or next
  per configuration;
* interrupt handlers — handler time charged to whoever is running.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..config import MachineConfig
from ..errors import SimulationError
from ..hw.cpu import CPU, CPUMode
from ..hw.disk import Disk
from ..hw.irq import IRQ_DISK, IRQ_NIC, IRQ_TIMER, InterruptController
from ..hw.nic import NetworkCard
from ..programs.base import GuestContext, GuestFunction, Program
from ..programs.ops import Compute, Provenance, Syscall
from ..sim.clock import Clock
from ..sim.events import EventQueue
from ..sim.rng import DeterministicRng
from ..sim.tracing import HW_FAULT_CATEGORY, TraceLog
from .accounting import AccountingScheme, ChargeKind, CpuUsage, make_accounting
from .engine import ExecState, ExecutionEngine, Frame, Segment
from .loader.linker import LinkMap, build_link_map, process_body
from .loader.registry import LibraryRegistry
from .mm.manager import MemoryManager
from .mm.vm import DATA_BASE
from .process import Task, TaskState
from .sched import make_scheduler
from .signals import (
    SIGCHLD,
    SIGCONT,
    SIGKILL,
    SIGSTOP,
    SIGTRAP,
    SignalAction,
    default_action,
    signal_name,
)
from .syscalls import SyscallTable
from .timekeeping import TimeKeeper

#: Sentinel distinguishing "no wake arrived while stopped" from payload None.
_NO_WAKE = object()

#: Hoisted enum members for the charge path.
_MODE_USER = CPUMode.USER
_MODE_KERNEL = CPUMode.KERNEL
#: Oracle key of context-switch overhead (kernel mode, system provenance).
_KEY_SWITCH = (False, Provenance.SYSTEM)


class CpuContext:
    """Saved per-CPU kernel state (SMP register bank).

    ``Kernel.current``/``need_resched``/``scheduler``/``cpu`` always describe
    the *active* CPU; :meth:`Kernel.set_active_cpu` swaps them through these
    banks.  On a uniprocessor no switch ever happens, so every pre-SMP code
    path is untouched.  The scheduler and CPU references are fixed at boot;
    only the mutable fields are written back on a switch.
    """

    __slots__ = ("index", "cpu", "scheduler", "timer", "current",
                 "need_resched", "irq_window", "tick_offset_ns")

    def __init__(self, index, cpu, scheduler, timer, tick_offset_ns):
        self.index = index
        self.cpu = cpu
        self.scheduler = scheduler
        self.timer = timer
        self.current = None
        self.need_resched = False
        self.irq_window = (0, 0)
        self.tick_offset_ns = tick_offset_ns


def _close_frames(frames) -> None:
    """Close and drop every frame generator.

    A generator that is *currently executing* (the syscall frame whose
    handler invoked exit/execve) cannot be closed from within itself; it is
    simply dropped — the engine never resumes a frame once the stack is
    cleared, and GC finalises it.
    """
    for frame in frames:
        if not getattr(frame.gen, "gi_running", False):
            frame.gen.close()
    frames.clear()


class Kernel:
    """The simulated operating system."""

    def __init__(self, cfg: MachineConfig, clock: Clock, events: EventQueue,
                 cpu: CPU, pic: InterruptController, disk: Disk,
                 nic: NetworkCard, rng: DeterministicRng,
                 trace_log: TraceLog) -> None:
        self.cfg = cfg
        self.costs = cfg.costs
        self.clock = clock
        self.events = events
        self.cpu = cpu
        self.pic = pic
        self.disk = disk
        self.nic = nic
        self.rng = rng
        self.trace_log = trace_log

        self.accounting: AccountingScheme = make_accounting(cfg)
        self.scheduler = make_scheduler(cfg)
        self.mm = MemoryManager(cfg.memory)
        self.libraries = LibraryRegistry()
        self.syscalls = SyscallTable(self)
        self.engine = ExecutionEngine(self)
        self.timekeeper = TimeKeeper(cfg.tick_ns, cfg.nproc)

        self.tasks: Dict[int, Task] = {}
        self._next_pid = 1
        self.current: Optional[Task] = None
        self.need_resched = False

        #: SMP state.  ``current``/``need_resched``/``scheduler``/``cpu``
        #: above are the *active* CPU's bank; set_active_cpu swaps them.
        self.nproc = cfg.nproc
        self._smp = cfg.nproc > 1
        self.cpu_index = 0
        self._active_tick_offset = 0
        self._cpu_contexts: List[CpuContext] = []
        #: READY tasks in flight to another CPU's run queue (IPI-deferred:
        #: applied at the machine's slice barrier, never mid-slice).
        self._pending_migrations: List[Tuple[Task, int]] = []
        #: Tasks moved by the load balancer over the run's lifetime.
        self.balance_moves = 0
        #: Optional runtime invariant checker (see repro.verify); attached
        #: by the machine when invariant checking is enabled.
        self.invariants = None
        #: Optional clocksource watchdog (see repro.kernel.timekeeping);
        #: attached by the machine when a fault plan enables it.  Its
        #: presence also turns on lost-tick compensation in _timer_irq.
        self.watchdog = None
        #: Optional stale-/proc cache fault (see repro.faults), consulted
        #: by repro.kernel.procfs read paths.
        self.procfs_fault = None
        #: LSM-style policy: may non-root users ptrace their own processes?
        self.policy_allow_user_ptrace = True

        #: Wait queues: channel → tasks parked on it.
        self._wait_queues: Dict[str, List[Task]] = {}

        #: Handler-time ns that fired while the CPU was idle.
        self.idle_irq_ns = 0
        self.context_switches = 0
        #: Window [start, end) of the most recent interrupt handler, used to
        #: sample deferred ticks as system time (see _timer_irq).
        self._irq_window = (0, 0)

        #: Hot-path precomputations.  Ops are immutable, so the fixed
        #: entry/exit costs of every syscall share two Compute instances;
        #: the context-switch charge is the same pair of numbers each time.
        self.syscall_entry_op = Compute(self.costs.syscall_entry_cycles)
        self.syscall_exit_op = Compute(self.costs.syscall_exit_cycles)
        self._switch_cycles = (self.costs.context_switch_cycles
                               + self.costs.schedule_pick_cycles)
        self._switch_ns = cpu.cycles_to_ns(self._switch_cycles)
        self._charge_switch_to_prev = self.cfg.charge_switch_to == "prev"

        pic.register(IRQ_TIMER, self._timer_irq)
        pic.register(IRQ_NIC, self._nic_irq)
        pic.register(IRQ_DISK, self._disk_irq)

    # ------------------------------------------------------------------
    # SMP: per-CPU banks, migration, load balancing
    # ------------------------------------------------------------------

    def init_smp(self, cpus: List[CPU], timers) -> None:
        """Wire the per-CPU contexts (called by the machine when nproc > 1).

        CPU 0 keeps the kernel's boot-time scheduler and CPU objects so the
        active bank is context 0's from the start; the other CPUs get their
        own run queue each.
        """
        self._cpu_contexts = [
            CpuContext(0, self.cpu, self.scheduler, timers[0],
                       timers[0].offset_ns)]
        for i in range(1, self.nproc):
            self._cpu_contexts.append(CpuContext(
                i, cpus[i], make_scheduler(self.cfg), timers[i],
                timers[i].offset_ns))

    def set_active_cpu(self, index: int) -> None:
        """Bank-switch the kernel onto CPU ``index``."""
        if index == self.cpu_index:
            return
        old = self._cpu_contexts[self.cpu_index]
        old.current = self.current
        old.need_resched = self.need_resched
        old.irq_window = self._irq_window
        new = self._cpu_contexts[index]
        self.cpu_index = index
        self.cpu = new.cpu
        self.scheduler = new.scheduler
        self.current = new.current
        self.need_resched = new.need_resched
        self._irq_window = new.irq_window
        self._active_tick_offset = new.tick_offset_ns

    def timer_interrupt(self, cpu_index: int) -> None:
        """Per-CPU local-timer entry point (SMP machines only): the CPU's
        staggered TimerDevice calls this instead of raising IRQ 0."""
        self.set_active_cpu(cpu_index)
        self.pic.counts[IRQ_TIMER] = self.pic.counts.get(IRQ_TIMER, 0) + 1
        self._timer_irq(IRQ_TIMER)

    def per_cpu_state(self) -> List[Tuple["CpuContext", Optional[Task]]]:
        """(context, current) per CPU with the active bank synced — for the
        invariant checker, procfs and the load balancer.  Single-CPU
        kernels report one pseudo-context."""
        if not self._smp:
            ctx = CpuContext(0, self.cpu, self.scheduler, None, 0)
            return [(ctx, self.current)]
        return [(ctx, self.current if ctx.index == self.cpu_index
                 else ctx.current)
                for ctx in self._cpu_contexts]

    def migrate_current(self, target: int) -> int:
        """sched_setaffinity-style self-migration of the current task.

        Pins the task to ``target`` and requests a resched; schedule()
        parks the task in the pending-migration list and the slice barrier
        enqueues it on the target's run queue (IPI semantics — a task
        never sits in two run queues, and never hops mid-slice)."""
        task = self.current
        if not self._smp:
            return 0
        target = int(target) % self.nproc
        task.cpus_allowed = {target}
        if target != self.cpu_index:
            task.cpu = target
            task.migrations += 1
            self.need_resched = True
            self.trace("sched", lambda: f"migrate -> cpu{target}", task.pid)
        return target

    def flush_migrations(self) -> int:
        """Apply IPI-deferred migrations (slice-barrier hook)."""
        if not self._pending_migrations:
            return 0
        pending = self._pending_migrations
        self._pending_migrations = []
        moved = 0
        for task, src in pending:
            if task.state is not TaskState.READY:
                continue  # exited/stopped while in flight
            self._migrate_place(task, src, task.cpu)
            moved += 1
        return moved

    def load_balance(self) -> int:
        """CFS-style periodic balancing (slice-barrier hook): while the
        busiest run queue leads the idlest by 2+ runnable tasks, pull one
        task across, respecting affinity."""
        ctxs = self._cpu_contexts
        if not ctxs:
            return 0
        moves = 0
        while True:
            loads = []
            for ctx, cur in self.per_cpu_state():
                loads.append(ctx.scheduler.nr_runnable
                             + (1 if cur is not None else 0))
            busiest = max(range(self.nproc), key=lambda i: (loads[i], -i))
            idlest = min(range(self.nproc), key=lambda i: (loads[i], i))
            if loads[busiest] - loads[idlest] < 2:
                break
            task = ctxs[busiest].scheduler.steal_task(
                allowed=lambda t: t.cpus_allowed is None
                or idlest in t.cpus_allowed)
            if task is None:
                break
            task.migrations += 1
            self._migrate_place(task, busiest, idlest)
            moves += 1
        self.balance_moves += moves
        return moves

    def _migrate_place(self, task: Task, src: int, dst: int) -> None:
        """Enqueue a migrating task on ``dst``, renormalizing CFS vruntime
        the way set_task_cpu() does (− src.min_vruntime + dst.min_vruntime
        keeps the task's relative fairness position)."""
        src_sched = self._cpu_contexts[src].scheduler
        dst_sched = self._cpu_contexts[dst].scheduler
        src_min = getattr(src_sched, "min_vruntime", None)
        dst_min = getattr(dst_sched, "min_vruntime", None)
        if src_min is not None and dst_min is not None:
            task.vruntime = max(0, task.vruntime - src_min + dst_min)
        task.cpu = dst
        dst_sched.enqueue(task, wakeup=False)

    def _dequeue_anywhere(self, task: Task) -> None:
        """Remove a READY task from whichever run queue holds it (or from
        the pending-migration list)."""
        if self._smp:
            for i, (t, _src) in enumerate(self._pending_migrations):
                if t is task:
                    del self._pending_migrations[i]
                    return
            self._cpu_contexts[task.cpu].scheduler.dequeue(task)
        else:
            self.scheduler.dequeue(task)

    def _enqueue_runnable(self, task: Task, wakeup: bool) -> None:
        """Enqueue a newly-runnable task, honoring SMP placement: wake to
        the waking CPU (cheap wake balancing) unless the task is pinned
        elsewhere, in which case enqueue straight on the pinned queue."""
        if self._smp:
            allowed = task.cpus_allowed
            if allowed is not None and self.cpu_index not in allowed:
                dst = min(c for c in allowed if 0 <= c < self.nproc)
                if task.cpu != dst:
                    task.migrations += 1
                task.cpu = dst
                ctx = self._cpu_contexts[dst]
                ctx.scheduler.enqueue(task, wakeup=wakeup)
                ctx.need_resched = True
                return
            if task.cpu != self.cpu_index:
                task.cpu = self.cpu_index
                task.migrations += 1
        self.scheduler.enqueue(task, wakeup=wakeup)

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    def trace(self, category: str, message,
              pid: Optional[int] = None, **data) -> None:
        """Emit a trace record.  ``message`` may be a zero-argument callable
        (evaluated only if the record is stored) for hot call sites."""
        self.trace_log.emit(self.clock.now, category, message, pid, **data)

    # ------------------------------------------------------------------
    # time consumption (the single charging point)
    # ------------------------------------------------------------------

    def consume(self, task: Task, ns: int, cycles: int, user_mode: bool,
                provenance: Provenance, kind: ChargeKind) -> None:
        """Advance time for work executed by ``task``.

        This is the hottest function in the simulator — every engine charge
        flush lands here — so Clock.advance, CPU.retire_cycles and
        Task.oracle_charge are inlined (callers only ever pass non-negative
        integers, which is all those wrappers additionally enforce).
        """
        clock = self.clock
        clock._now += ns
        if clock.on_advance is not None and ns:
            clock.on_advance(ns)
        self.cpu._cycles += cycles
        self.accounting.charge(
            task, _MODE_USER if user_mode else _MODE_KERNEL, ns, kind,
            self.cpu_index)
        oracle = task.oracle_ns
        key = (user_mode, provenance)
        oracle[key] = oracle.get(key, 0) + ns
        if self.invariants is not None:
            self.invariants.on_charge(task, ns, user_mode, kind)

    def consume_irq(self, cycles: int, provenance: Provenance) -> None:
        """Advance time for an interrupt handler, billed to the current task
        (the commodity behaviour the flooding attack exploits)."""
        ns = self.cpu.cycles_to_ns(cycles)
        start = self.clock.now
        self.clock.advance(ns)
        self._irq_window = (start, self.clock.now)
        self.cpu.retire_cycles(cycles)
        self.accounting.charge(self.current, CPUMode.KERNEL, ns,
                               ChargeKind.IRQ, self.cpu_index)
        if self.current is not None:
            self.current.oracle_charge(False, provenance, ns)
        else:
            self.idle_irq_ns += ns
        if self.invariants is not None:
            self.invariants.on_charge(self.current, ns, False, ChargeKind.IRQ)

    # ------------------------------------------------------------------
    # IRQ handlers
    # ------------------------------------------------------------------

    def _timer_irq(self, line: int) -> None:
        # Sample the interrupted context *first* (as account_process_tick
        # does), then pay the handler cost.
        current = self.current
        mode = self.cpu.mode if current is not None else CPUMode.KERNEL
        # A tick whose nominal (grid) instant fell inside a device-handler
        # window was deferred by that handler: on hardware its saved regs
        # would point into the handler, so it samples as system time.  This
        # is how the interrupt flood turns into victim stime (Fig. 10).
        offset = self._active_tick_offset
        nominal = ((self.clock.now - offset) // self.cfg.tick_ns) \
            * self.cfg.tick_ns + offset
        window_start, window_end = self._irq_window
        if window_start <= nominal < window_end:
            mode = CPUMode.KERNEL
        if self.watchdog is not None and self.cpu_index == 0:
            # Lost-tick compensation: if grid instants passed without a
            # jiffy (tick swallowed by an SMI or masked window), replay
            # them against the interrupted context before accounting this
            # one — the tick_nohz_idle-style catch-up Linux performs from
            # jiffies_update when it sees jiffies lag the clocksource.
            missed = nominal // self.cfg.tick_ns - 1 - self.timekeeper.jiffies
            if missed > 0:
                self._catch_up_ticks(missed, current, mode)
        self.timekeeper.tick(current is not None, mode is CPUMode.USER,
                             self.cpu_index)
        self.accounting.on_tick(current, mode, self.cpu_index)
        if self.invariants is not None:
            self.invariants.on_tick(current, mode is CPUMode.USER)
        if self.watchdog is not None and self.cpu_index == 0:
            # The watchdog cross-checks the *global* jiffy counter, which
            # only the timekeeping CPU advances (see TimeKeeper).
            self.watchdog.on_tick(self.clock.now)
        if current is not None:
            self._update_curr(current)
            if self.scheduler.task_tick(current):
                self.need_resched = True
        # The periodic tick is benign system overhead, not device traffic:
        # the oracle files it under SYSTEM so only genuinely external
        # interrupts (NIC, disk) count as attack-relevant IRQ time.
        self.consume_irq(self.costs.timer_handler_cycles, Provenance.SYSTEM)

    def _catch_up_ticks(self, missed: int, current: Optional[Task],
                        mode: CPUMode) -> None:
        """Replay ``missed`` lost jiffies against the interrupted context.

        Replays only the sampling actions (timekeeper, accounting scheme,
        oracle checker) — scheduler task_tick is *not* replayed, mirroring
        Linux where catch-up updates jiffies and cpustat but preemption
        decisions only happen on real interrupts.
        """
        running = current is not None
        user = mode is CPUMode.USER
        for _ in range(missed):
            self.timekeeper.tick(running, user, self.cpu_index)
            self.accounting.on_tick(current, mode, self.cpu_index)
            if self.invariants is not None:
                self.invariants.on_tick(current, user)
        self.timekeeper.jiffies_caught_up += missed
        if self.watchdog is not None:
            self.watchdog.note_caught_up(missed)
        self.trace(HW_FAULT_CATEGORY,
                   lambda: f"tick catch-up: replayed {missed} lost jiffies",
                   current.pid if current is not None else None)

    def _nic_irq(self, line: int) -> None:
        if self._smp:
            # Device interrupts land on the line's affine CPU: whoever runs
            # there eats the handler time (the IRQ-steering attack surface).
            self.set_active_cpu(self.pic.affinity(line))
        self.consume_irq(self.costs.nic_handler_cycles, Provenance.IRQ)

    def _disk_irq(self, line: int) -> None:
        if self._smp:
            self.set_active_cpu(self.pic.affinity(line))
        self.consume_irq(self.costs.disk_handler_cycles, Provenance.IRQ)
        completion = self.disk.take_completion()
        if completion is not None:
            completion()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def request_resched(self) -> None:
        self.need_resched = True

    def _update_curr(self, task: Task) -> None:
        now = self.clock._now
        delta = now - task.last_dispatch_ns
        if delta > 0:
            self.scheduler.update_curr(task, delta)
        task.last_dispatch_ns = now

    def schedule(self) -> None:
        """__schedule(): pick the next task, paying the switch cost."""
        prev = self.current
        if prev is not None:
            self._update_curr(prev)
            if prev.state is TaskState.RUNNING:
                prev.state = TaskState.READY
            if prev.state is TaskState.READY:
                prev.involuntary_switches += 1
                if self._smp and prev.cpu != self.cpu_index:
                    # The task asked to run elsewhere (sys_migrate): park
                    # it for the slice barrier instead of requeueing here.
                    self._pending_migrations.append((prev, self.cpu_index))
                else:
                    self.scheduler.put_prev(prev)

        nxt = self.scheduler.pick_next()
        self.need_resched = False
        if nxt is None:
            self.current = None
            self.cpu.mode = CPUMode.KERNEL
            # Unload the previous task's debug registers.  A fresh object:
            # cpu.debug aliases the *task's* register file while it runs,
            # so clearing in place would wipe the task's watchpoints.
            from ..hw.cpu import DebugRegisters

            self.cpu.debug = DebugRegisters()
            return

        if nxt is not prev:
            self.context_switches += 1
            self._charge_switch(prev, nxt)
        self.current = nxt
        nxt.state = TaskState.RUNNING
        nxt.last_dispatch_ns = self.clock.now
        self.scheduler.on_pick(nxt)
        # Load the task's debug registers (per-thread DR state).
        self.cpu.debug = nxt.debug

    def _charge_switch(self, prev: Optional[Task], nxt: Task) -> None:
        # Clock.advance / CPU.retire_cycles / Task.oracle_charge inlined,
        # as in consume() — one switch per schedule() adds up.
        ns = self._switch_ns
        clock = self.clock
        clock._now += ns
        if clock.on_advance is not None and ns:
            clock.on_advance(ns)
        self.cpu._cycles += self._switch_cycles
        target = prev if self._charge_switch_to_prev else nxt
        if target is None or not target.alive:
            target = nxt
        self.accounting.charge(target, _MODE_KERNEL, ns, ChargeKind.SWITCH)
        oracle = target.oracle_ns
        oracle[_KEY_SWITCH] = oracle.get(_KEY_SWITCH, 0) + ns
        if self.invariants is not None:
            self.invariants.on_charge(target, ns, False, ChargeKind.SWITCH)

    # ------------------------------------------------------------------
    # blocking and waking
    # ------------------------------------------------------------------

    def block_current(self, task: Task, channel: str) -> None:
        """Park the current task on ``channel`` (engine Block op path)."""
        if task is not self.current:
            raise SimulationError("only the current task can block")
        self._update_curr(task)
        task.state = TaskState.WAITING
        task.wait_channel = channel
        task.voluntary_switches += 1
        self._wait_queues.setdefault(channel, []).append(task)

    def block_on(self, task: Task, channel: str) -> None:
        """Park the current task on ``channel`` from non-frame kernel code
        (page-fault swap-in path)."""
        self.block_current(task, channel)

    def _unpark(self, task: Task) -> None:
        """Remove a task from its wait queue, if any."""
        channel = task.wait_channel
        if channel is None:
            return
        queue = self._wait_queues.get(channel)
        if queue and task in queue:
            queue.remove(task)
            if not queue:
                del self._wait_queues[channel]
        task.wait_channel = None

    def wake(self, task: Task, payload: object = None) -> bool:
        """Make a parked task runnable; returns True if a wake happened."""
        if not task.alive:
            return False
        if task.state is TaskState.WAITING:
            self._unpark(task)
            st = task.exec_state
            if st is not None:
                st.send_value = payload
                st.blocked_frame = None
            task.state = TaskState.READY
            self._enqueue_runnable(task, wakeup=True)
            self._maybe_preempt(task)
            return True
        if task.state is TaskState.STOPPED and task.wait_channel is not None:
            # The wake arrived while the task was stopped: remember it so
            # SIGCONT resumes straight to READY.
            self._unpark(task)
            task._pending_wake = payload  # type: ignore[attr-defined]
            return True
        return False

    def wake_channel(self, channel: str, payload: object = None) -> int:
        """Wake every task parked on ``channel``; returns the count."""
        woken = 0
        for task in list(self._wait_queues.get(channel, ())):
            if self.wake(task, payload):
                woken += 1
        return woken

    def _maybe_preempt(self, woken: Task) -> None:
        if self._smp and woken.cpu != self.cpu_index:
            return  # remote enqueue; that CPU reschedules at its slice
        if self.current is None:
            return
        if self.scheduler.check_preempt_wakeup(self.current, woken):
            self.need_resched = True

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def post_signal(self, target: Task, sig: int,
                    sender_pid: Optional[int] = None) -> None:
        if not target.alive:
            return
        target.post_signal(sig, sender_pid)
        target.signals_received += 1
        self.trace("signal", lambda: f"post {signal_name(sig)}", target.pid,
                   sender=sender_pid)
        if target is not self.current:
            # Off-CPU target: resolve dispositions immediately (the engine
            # only runs for the current task).  Delivery cost for off-CPU
            # targets is absorbed by the sender's syscall cost.
            self._resolve_signals_off_cpu(target)

    def _resolve_signals_off_cpu(self, target: Task) -> None:
        while target.pending_signals and target.alive:
            sig, sender = target.pending_signals.pop(0)
            action = default_action(sig, target.tracer is not None)
            self._apply_signal_action(target, sig, action)

    def deliver_signals(self, task: Task) -> None:
        """Engine hook: queue delivery (with cost) for the current task."""
        if not task.pending_signals:
            return
        sig, sender = task.pending_signals.pop(0)
        action = default_action(sig, task.tracer is not None)
        prov = Provenance.TRACER if sig in (SIGTRAP, SIGSTOP, SIGCONT) \
            else Provenance.SYSTEM
        st = task.exec_state

        def apply() -> None:
            self._apply_signal_action(task, sig, action)

        cycles = self.costs.signal_deliver_cycles
        if action is SignalAction.TRAP:
            # ptrace_stop() runs in the tracee: billed to the victim.
            cycles += self.costs.ptrace_stop_cycles
        st.segments.append(Segment(cycles, False, prov, ChargeKind.SYSCALL,
                                   on_done=apply))

    def _apply_signal_action(self, task: Task, sig: int,
                             action: SignalAction) -> None:
        if action is SignalAction.IGNORE:
            return
        if action is SignalAction.TERMINATE:
            self.do_exit(task, 128 + sig, signal=sig)
            return
        if action in (SignalAction.STOP, SignalAction.TRAP):
            self._stop_task(task, sig)
            return
        if action is SignalAction.CONTINUE:
            if task.state is TaskState.STOPPED:
                self.resume_stopped(task)
            return
        raise SimulationError(f"unhandled signal action {action}")

    def _stop_task(self, task: Task, sig: int) -> None:
        if task.state is TaskState.STOPPED:
            return
        was_running = task is self.current
        if task.state is TaskState.READY:
            self._dequeue_anywhere(task)
        if was_running:
            self._update_curr(task)
            self.need_resched = True
        # A WAITING task keeps its wait channel; a wake while stopped is
        # remembered (see wake()).
        task.state = TaskState.STOPPED
        task.stop_signal = sig
        task.stop_pending_report = True
        self.trace("signal", f"stopped by {signal_name(sig)}", task.pid)
        self._notify_stop(task)

    def _notify_stop(self, task: Task) -> None:
        """Wake anyone waiting on this task's stop (parent and tracer)."""
        if task.tracer is not None:
            self.wake_channel(f"wait:{task.tracer.pid}")
        if task.parent is not None:
            self.wake_channel(f"wait:{task.parent.pid}")

    def resume_stopped(self, task: Task) -> None:
        if task.state is not TaskState.STOPPED:
            return
        task.stop_signal = None
        task.stop_pending_report = False
        pending_wake = getattr(task, "_pending_wake", _NO_WAKE)
        if pending_wake is not _NO_WAKE:
            del task._pending_wake
            st = task.exec_state
            if st is not None:
                st.send_value = pending_wake
                st.blocked_frame = None
            task.state = TaskState.READY
            self._enqueue_runnable(task, wakeup=True)
            self._maybe_preempt(task)
        elif task.wait_channel is not None:
            task.state = TaskState.WAITING
        else:
            task.state = TaskState.READY
            self._enqueue_runnable(task, wakeup=True)
            self._maybe_preempt(task)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _make_guest_ctx(self, argv: Tuple, pid: int) -> GuestContext:
        def stream_factory(name: str):
            return self.rng.stream(f"guest:{pid}:{name}")

        return GuestContext(argv=tuple(argv), rng_stream_factory=stream_factory)

    def _root_frame(self, ctx: GuestContext, fn: Optional[GuestFunction],
                    args: Tuple) -> Frame:
        """Wrapper body: run ``fn`` then exit with its return value."""

        def body():
            code = 0
            if fn is not None:
                from ..programs.ops import Invoke

                code = yield Invoke(fn, args)
            yield Syscall("exit", (code if isinstance(code, int) else 0,))

        prov = fn.provenance if fn is not None else Provenance.USER
        return Frame(body(), prov, fn.name if fn else "noop", user_mode=True)

    def create_task(self, name: str, uid: Optional[int] = None,
                    nice: Optional[int] = None,
                    parent: Optional[Task] = None,
                    tgid: Optional[int] = None) -> Task:
        """Allocate a PCB.  uid/nice default to the parent's (or 1000/0)."""
        if uid is None:
            uid = parent.uid if parent is not None else 1000
        if nice is None:
            nice = parent.nice if parent is not None else 0
        task = Task(self._alloc_pid(), name, uid=uid, nice=nice, tgid=tgid)
        task.parent = parent
        if parent is not None:
            parent.children.append(task)
            task.env = dict(parent.env)
        self.tasks[task.pid] = task
        return task

    def spawn(self, fn: Optional[GuestFunction] = None, args: Tuple = (),
              name: str = "task", uid: Optional[int] = None,
              nice: Optional[int] = None,
              env: Optional[Dict[str, str]] = None,
              parent: Optional[Task] = None) -> Task:
        """Create and enqueue a task running ``fn`` (no program image)."""
        task = self.create_task(name, uid=uid, nice=nice, parent=parent)
        if env:
            task.env.update(env)
        task.mm = self.mm.create_space()
        task.guest_ctx = self._make_guest_ctx((), task.pid)
        task.guest_ctx.shared["_link_map"] = LinkMap([])
        task.exec_state = ExecState()
        task.exec_state.push_frame(self._root_frame(task.guest_ctx, fn, args))
        task.vruntime = getattr(self.scheduler, "min_vruntime", 0)
        task.cpu = self.cpu_index
        self.scheduler.enqueue(task)
        self.trace("task", lambda: f"spawn {name}", task.pid)
        return task

    def spawn_program(self, program: Program, name: Optional[str] = None,
                      uid: Optional[int] = None, nice: Optional[int] = None,
                      env: Optional[Dict[str, str]] = None) -> Task:
        """Create a task and exec ``program`` into it directly (no shell)."""

        def body(ctx):
            yield Syscall("execve", (program,))
            return 0

        fn = GuestFunction(f"exec:{program.name}", body, Provenance.USER)
        return self.spawn(fn, name=name or program.name, uid=uid, nice=nice,
                          env=env)

    def do_fork(self, parent: Task, child_fn: Optional[GuestFunction],
                child_args: Tuple) -> Task:
        child = self.create_task(
            f"{parent.name}-child", parent=parent)
        child.mm = self.mm.create_space()
        child.guest_ctx = self._make_guest_ctx((), child.pid)
        child.guest_ctx.shared["_link_map"] = LinkMap([])
        child.exec_state = ExecState()
        child.exec_state.push_frame(
            self._root_frame(child.guest_ctx, child_fn, child_args))
        self.scheduler.on_fork(parent, child)
        child.cpu = self.cpu_index
        self.scheduler.enqueue(child)
        self.trace("task", "fork", parent.pid, child=child.pid)
        return child

    def do_clone_thread(self, leader: Task, fn: GuestFunction,
                        args: Tuple) -> Task:
        thread = self.create_task(
            f"{leader.name}/t", parent=leader, tgid=leader.tgid)
        thread.mm = self.mm.grab_space(leader.mm)
        thread.guest_ctx = leader.guest_ctx  # shared thread-group view
        thread.exec_state = ExecState()
        thread.exec_state.push_frame(
            self._root_frame(leader.guest_ctx, fn, args))
        self.scheduler.on_fork(leader, thread)
        thread.cpu = self.cpu_index
        self.scheduler.enqueue(thread)
        self.trace("task", "clone-thread", leader.pid, thread=thread.pid)
        return thread

    def install_image(self, task: Task, program: Program) -> None:
        """execve point of no return: replace the whole process image."""
        if task.mm is not None:
            if task.mm.users > 1:
                raise SimulationError(
                    "execve from a multithreaded process is not modelled")
            self.mm.drop_space(task.mm)
        task.mm = self.mm.create_space()
        task.name = program.name
        ctx = self._make_guest_ctx(program.argv, task.pid)
        task.guest_ctx = ctx
        self._bind_data_symbols(task, program)
        link_map = build_link_map(program, task.env, self.libraries)
        ctx.shared["_link_map"] = link_map
        ctx.shared["_program"] = program
        ctx.shared["_costs"] = self.costs
        # Mutate the existing ExecState in place: the engine holds a live
        # reference to it while this runs (from inside the execve syscall).
        st = task.exec_state
        if st is None:
            st = ExecState()
            task.exec_state = st
        _close_frames(st.frames)
        st.segments.clear()
        st.pending_mem = None
        st.send_value = None
        st.blocked_frame = None
        st.push_frame(Frame(
            process_body(ctx, program, link_map, self.costs),
            Provenance.LIB, f"crt0:{program.name}", user_mode=True))
        self.trace("task", lambda: f"execve {program.name}", task.pid,
                   libs=len(link_map))

    def _bind_data_symbols(self, task: Task, program: Program) -> None:
        if not program.data_symbols:
            return
        page = task.mm.page_size
        total = 0
        offsets = {}
        for symbol, size in program.data_symbols.items():
            if size <= 0:
                raise SimulationError(f"symbol {symbol!r} has size {size}")
            offsets[symbol] = total
            total += (size + 7) // 8 * 8
        npages = (total + page - 1) // page
        task.mm.add_region(DATA_BASE, max(npages, 1), "data")
        for symbol, offset in offsets.items():
            task.guest_ctx.bind_symbol(symbol, DATA_BASE + offset)

    def do_exit(self, task: Task, code: int,
                signal: Optional[int] = None) -> None:
        if not task.alive:
            return
        if task is self.current:
            self._update_curr(task)
            self.need_resched = True
        elif task.state is TaskState.READY:
            self._dequeue_anywhere(task)
        elif task.state is TaskState.WAITING:
            self._unpark(task)
        task.state = TaskState.ZOMBIE
        task.exit_code = code
        task.exit_signal = signal
        task.pending_signals.clear()
        if task.exec_state is not None:
            _close_frames(task.exec_state.frames)
            task.exec_state.segments.clear()
            task.exec_state.pending_mem = None
        if task.mm is not None:
            self.mm.drop_space(task.mm)
            task.mm = None
        # Detach tracing relations.
        for tracee_pid in list(task.tracees):
            tracee = self.tasks.get(tracee_pid)
            if tracee is not None:
                tracee.tracer = None
        task.tracees.clear()
        if task.tracer is not None:
            # A blocked tracer must learn its tracee is gone.
            tracer = task.tracer
            tracer.tracees.discard(task.pid)
            task.tracer = None
            self.wake_channel(f"wait:{tracer.pid}")
        # Reparent children to nobody (init is implicit).
        for child in task.children:
            child.parent = None
        self.trace("task", lambda: f"exit code={code}"
                   + (f" signal={signal_name(signal)}" if signal else ""),
                   task.pid)
        if task.parent is not None:
            self.post_signal(task.parent, SIGCHLD, sender_pid=task.pid)
            self.wake_channel(f"wait:{task.parent.pid}")
        if self.invariants is not None:
            # Exit reconciliation: the dying task's books must balance.
            self.invariants.on_exit(task)

    def reap(self, parent: Task, zombie: Task) -> None:
        if zombie.state is not TaskState.ZOMBIE:
            raise SimulationError(f"cannot reap live task {zombie.pid}")
        zombie.state = TaskState.DEAD
        if zombie in parent.children:
            parent.children.remove(zombie)
        # POSIX RUSAGE_CHILDREN semantics: the child's own usage plus its
        # reaped descendants' accumulates into the parent at wait() time.
        usage = self.accounting.usage(zombie)
        parent.acct_cutime_ns += usage.utime_ns + zombie.acct_cutime_ns
        parent.acct_cstime_ns += usage.stime_ns + zombie.acct_cstime_ns

    # ------------------------------------------------------------------
    # wait() support
    # ------------------------------------------------------------------

    def _wait_candidates(self, task: Task, pid: int) -> List[Task]:
        out = list(task.children)
        for tracee_pid in task.tracees:
            tracee = self.tasks.get(tracee_pid)
            if tracee is not None and tracee not in out:
                out.append(tracee)
        if pid != -1:
            out = [t for t in out if t.pid == pid]
        return out

    def find_zombie_child(self, task: Task, pid: int = -1) -> Optional[Task]:
        candidates = task.children if pid == -1 else \
            [t for t in task.children if t.pid == pid]
        for child in candidates:
            if child.state is TaskState.ZOMBIE:
                return child
        return None

    def find_stop_report(self, task: Task, pid: int = -1) -> Optional[Task]:
        """Stops are reported only to the *tracer* (waitpid without
        WUNTRACED does not report stopped children)."""
        # Scans children then non-child tracees directly — the same
        # candidate order as _wait_candidates without building the list
        # (waitpid polls this on every wake).
        for cand in task.children:
            if ((pid == -1 or cand.pid == pid)
                    and cand.state is TaskState.STOPPED
                    and cand.stop_pending_report and cand.tracer is task):
                return cand
        for tracee_pid in task.tracees:
            cand = self.tasks.get(tracee_pid)
            if (cand is not None and (pid == -1 or cand.pid == pid)
                    and cand.state is TaskState.STOPPED
                    and cand.stop_pending_report and cand.tracer is task):
                return cand
        return None

    def has_waitable(self, task: Task, pid: int = -1) -> bool:
        for t in task.children:
            if ((pid == -1 or t.pid == pid)
                    and (t.alive or t.state is TaskState.ZOMBIE)):
                return True
        for tracee_pid in task.tracees:
            t = self.tasks.get(tracee_pid)
            if (t is not None and (pid == -1 or t.pid == pid)
                    and (t.alive or t.state is TaskState.ZOMBIE)):
                return True
        return False

    # ------------------------------------------------------------------
    # memory helpers (engine fault paths)
    # ------------------------------------------------------------------

    def swap_writeback(self, task: Task) -> None:
        """Submit the dirty-victim writeback for an eviction (async)."""
        self.disk.submit(1, write=True, on_complete=lambda: None)

    def begin_swap_in(self, task: Task, vaddr: int, frame) -> None:
        channel = f"page:{task.pid}:0x{vaddr:x}"
        self.trace("fault", lambda: f"major fault 0x{vaddr:x}", task.pid)

        def complete() -> None:
            if not task.alive or task.mm is None:
                # Killed while sleeping on I/O: give the frame back.
                self.mm.phys.release(frame.pfn)
                return
            self.mm.complete_major_fault(task.mm, vaddr, frame)
            self.wake_channel(channel)

        self.disk.submit(1, write=False, on_complete=complete)
        self.block_on(task, channel)

    def oom_kill(self, requester: Task) -> bool:
        """Invoke the OOM killer; True if a victim was killed."""
        victim = self.mm.pick_oom_victim(
            [t for t in self.tasks.values() if t.alive and t.mm is not None])
        if victim is None:
            return False
        self.trace("oom", f"killing pid {victim.pid} (rss={victim.mm.rss})",
                   requester.pid)
        self.do_exit(victim, 128 + SIGKILL, signal=SIGKILL)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def task_by_pid(self, pid: int) -> Optional[Task]:
        return self.tasks.get(pid)

    def thread_group(self, task: Task) -> List[Task]:
        return [t for t in self.tasks.values() if t.tgid == task.tgid]

    def rusage(self, task: Task) -> Dict[str, object]:
        """getrusage(RUSAGE_SELF): aggregated over the thread group."""
        usage = CpuUsage()
        minflt = majflt = nvcsw = nivcsw = 0
        for member in self.thread_group(task):
            usage = usage + self.accounting.usage(member)
            minflt += member.minor_faults
            majflt += member.major_faults
            nvcsw += member.voluntary_switches
            nivcsw += member.involuntary_switches
        return {
            "utime_ns": usage.utime_ns,
            "stime_ns": usage.stime_ns,
            "cutime_ns": task.acct_cutime_ns,
            "cstime_ns": task.acct_cstime_ns,
            "minflt": minflt,
            "majflt": majflt,
            "nvcsw": nvcsw,
            "nivcsw": nivcsw,
        }

    def alive_tasks(self) -> List[Task]:
        return [t for t in self.tasks.values() if t.alive]

    def all_finished(self) -> bool:
        return not self.alive_tasks()
