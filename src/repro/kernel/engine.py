"""The op-stream execution engine: the simulated CPU core loop.

Drives one task's generator frames, converting ops into exactly-timed
slices of simulated work.  Everything the paper's attacks depend on happens
here, at its natural architectural point:

* ``Compute`` blocks are divisible, so a timer tick preempts mid-block at
  the exact nanosecond — tick *sampling* is therefore exact, unlike a pure
  Python timing harness (the calibration concern);
* ``Mem`` accesses consult the page table (minor/major faults) and the
  debug registers (watchpoint → debug exception → SIGTRAP), the thrashing
  and exception-flooding machinery;
* ``Syscall`` pushes a kernel-mode frame whose cycles are charged as system
  time attributed to the *calling code's provenance*, so injected code's
  syscalls are visible to the oracle;
* signals are delivered at the return-to-user boundary, costing kernel time
  in the target's context, as on real hardware.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from ..config import NS_PER_SEC
from ..errors import (
    FileNotFound,
    OutOfMemory,
    SimulationError,
)
from ..hw.cpu import CPUMode
from ..programs.base import GuestFunction
from ..programs.ops import (
    CallLib,
    CallNext,
    Compute,
    Invoke,
    Mem,
    Op,
    Provenance,
    Syscall,
)
from .accounting import ChargeKind
from .mm.manager import FaultKind
from .process import TaskState
from .signals import SIGSEGV, SIGTRAP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel
    from .process import Task

#: Hoisted enum members — the engine loop references these on every op.
_KIND_USER = ChargeKind.USER
_KIND_SYSCALL = ChargeKind.SYSCALL
_FAULT_HIT = FaultKind.HIT


class StopReason(enum.Enum):
    """Why the engine stopped running a task."""

    #: The time budget (distance to the next event) was used up.
    BUDGET = "budget"
    #: The kernel requested a reschedule (tick preemption, yield, wakeup).
    PREEMPTED = "preempted"
    #: The task blocked (wait, sleep, disk I/O).
    BLOCKED = "blocked"
    #: The task was stopped by a signal or a traced stop.
    STOPPED = "stopped"
    #: The task exited (or was killed).
    EXITED = "exited"


class Block(Op):
    """Kernel-internal op: park the task on ``channel`` until woken.

    Only kernel frames yield this.  The value passed to
    :meth:`Kernel.wake` is sent back into the yielding generator.
    """

    __slots__ = ("channel",)

    def __init__(self, channel: str) -> None:
        self.channel = channel

    def __repr__(self) -> str:
        return f"Block({self.channel!r})"


class ReplaceImage(Op):
    """Kernel-internal op: execve point-of-no-return.

    The engine discards the whole frame stack (including the syscall frame
    that yielded this) and installs the new process image.
    """

    __slots__ = ("program",)

    def __init__(self, program) -> None:
        self.program = program

    def __repr__(self) -> str:
        return f"ReplaceImage({self.program!r})"


class Frame:
    """One entry of a task's execution stack."""

    __slots__ = ("gen", "provenance", "name", "lib", "user_mode", "started")

    def __init__(self, gen, provenance: Provenance, name: str,
                 lib=None, user_mode: bool = True) -> None:
        self.gen = gen
        self.provenance = provenance
        self.name = name
        self.lib = lib
        self.user_mode = user_mode
        self.started = False

    def __repr__(self) -> str:
        mode = "user" if self.user_mode else "kernel"
        return f"Frame({self.name!r}, {self.provenance.value}, {mode})"


class Segment:
    """A chunk of pending timed work (divisible)."""

    __slots__ = ("cycles_left", "user_mode", "provenance", "kind", "on_done",
                 "benign_done")

    def __init__(self, cycles: int, user_mode: bool, provenance: Provenance,
                 kind: ChargeKind,
                 on_done: Optional[Callable[[], None]] = None,
                 benign_done: bool = False) -> None:
        self.cycles_left = int(cycles)
        self.user_mode = user_mode
        self.provenance = provenance
        self.kind = kind
        self.on_done = on_done
        #: True when ``on_done`` only mutates engine bookkeeping (pushing a
        #: frame, clearing pending state) and never observes the clock, the
        #: TSC, the accounts or the trace log — such callbacks may run while
        #: charges are still batched in the engine loop.
        self.benign_done = benign_done


class PendingMem:
    """A memory access in progress (possibly mid-fault or mid-trap)."""

    __slots__ = ("op", "remaining")

    def __init__(self, op: Mem) -> None:
        self.op = op
        self.remaining = op.repeat


class ExecState:
    """Per-task execution machinery."""

    __slots__ = ("frames", "segments", "send_value", "pending_mem",
                 "blocked_frame")

    def __init__(self) -> None:
        self.frames: List[Frame] = []
        self.segments: Deque[Segment] = deque()
        self.send_value: object = None
        self.pending_mem: Optional[PendingMem] = None
        #: Frame that yielded a Block, awaiting the wake payload.
        self.blocked_frame: Optional[Frame] = None

    def push_frame(self, frame: Frame) -> None:
        self.frames.append(frame)

    @property
    def depth(self) -> int:
        return len(self.frames)


class ExecutionEngine:
    """Runs tasks' op streams against the kernel and hardware."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    # -- public entry point ------------------------------------------------

    def run(self, task: "Task", budget_ns: int) -> Tuple[int, StopReason]:
        """Run ``task`` for at most ``budget_ns``; returns (consumed, why).

        The clock is advanced as work is consumed.  The engine stops at the
        first of: budget exhaustion, a kernel resched request, the task
        blocking/stopping/exiting.
        """
        checker = self.kernel.invariants
        if checker is None:
            return self._run_loop(task, budget_ns)
        # Under invariant checking, hold the engine to its own contract:
        # the consumed total it reports is exactly the time the clock
        # moved while it ran, and it never overruns its budget.
        start_ns = self.kernel.clock.now
        consumed, reason = self._run_loop(task, budget_ns)
        checker.on_engine_stop(task, consumed,
                               self.kernel.clock.now - start_ns, budget_ns)
        return consumed, reason

    def _run_loop(self, task: "Task", budget_ns: int) -> Tuple[int, StopReason]:
        kernel = self.kernel
        cpu = kernel.cpu
        freq = cpu.freq_hz
        mm = kernel.mm
        mem_cost = kernel.costs.mem_access_cycles
        plt_cost = kernel.costs.lib_call_cycles
        st = task.exec_state
        if st is None:
            raise SimulationError(f"task {task.pid} has no exec state")
        segments = st.segments
        consumed = 0

        # Deferred-charge batching.  Within one engine run no event can fire
        # (the machine hands us a budget that ends exactly at the next
        # event), and every component of kernel.consume — clock advance, TSC
        # retire, accounting charge, oracle charge, invariant ledger — is an
        # order-independent sum per (user_mode, provenance, kind) key.  So
        # the loop accumulates slices locally — the active key inline, any
        # other keys folded into a small dict — and issues one
        # kernel.consume per key at the next flush point.  A flush MUST
        # precede anything that could observe the clock, the TSC, the
        # accounts or the trace log mid-run: returning to the machine loop,
        # sending into kernel-mode frames (syscall handlers read the clock),
        # task exit, non-benign segment on_done callbacks (faults, signal
        # actions), and the cold _dispatch paths (Block, ReplaceImage).
        b_ns = 0
        b_cycles = 0
        b_user = True
        b_kind = None
        b_prov: Optional[Provenance] = None  # None <=> active batch is empty
        b_more = None  # folded non-active batches: key -> [ns, cycles]

        def fold() -> None:
            nonlocal b_ns, b_cycles, b_prov, b_more
            if b_more is None:
                b_more = {}
            entry = b_more.get((b_user, b_prov, b_kind))
            if entry is None:
                b_more[(b_user, b_prov, b_kind)] = [b_ns, b_cycles]
            else:
                entry[0] += b_ns
                entry[1] += b_cycles
            b_ns = 0
            b_cycles = 0
            b_prov = None

        def flush() -> None:
            nonlocal b_ns, b_cycles, b_prov, b_more
            if b_more is not None:
                if b_prov is not None:
                    fold()
                for (user, prov, kind), (ns, cycles) in b_more.items():
                    kernel.consume(task, ns, cycles, user, prov, kind)
                b_more = None
            elif b_prov is not None:
                kernel.consume(task, b_ns, b_cycles, b_user, b_prov, b_kind)
                b_ns = 0
                b_cycles = 0
                b_prov = None

        mode_user = CPUMode.USER
        mode_kernel = CPUMode.KERNEL
        running = TaskState.RUNNING
        ready = TaskState.READY

        while True:
            state = task.state
            if state is not running and state is not ready:
                if b_prov is not None or b_more is not None:
                    flush()
                return consumed, self._reason_for_state(task)
            if kernel.need_resched:
                if b_prov is not None or b_more is not None:
                    flush()
                return consumed, StopReason.PREEMPTED
            if consumed >= budget_ns:
                if b_prov is not None or b_more is not None:
                    flush()
                return consumed, StopReason.BUDGET

            if segments:
                seg = segments[0]
                user_mode = seg.user_mode
                cpu.mode = mode_user if user_mode else mode_kernel
                cycles_left = seg.cycles_left
                if cycles_left == 0:
                    segments.popleft()
                    if seg.on_done is not None:
                        if not seg.benign_done and (b_prov is not None
                                                    or b_more is not None):
                            flush()
                        seg.on_done()
                    continue
                if b_prov is not None and (
                        b_user is not user_mode
                        or b_prov is not seg.provenance
                        or b_kind is not seg.kind):
                    fold()
                avail = (budget_ns - consumed) * freq // NS_PER_SEC
                if avail <= 0:
                    # Sub-cycle remainder: burn it as zero-work time so the
                    # clock reaches the next event and the machine can make
                    # progress.
                    if b_prov is None:
                        b_user = user_mode
                        b_prov = seg.provenance
                        b_kind = seg.kind
                    b_ns += budget_ns - consumed
                    consumed = budget_ns
                    continue
                run = cycles_left if cycles_left < avail else avail
                ns = (run * NS_PER_SEC + freq - 1) // freq
                seg.cycles_left = cycles_left - run
                if b_prov is None:
                    b_user = user_mode
                    b_prov = seg.provenance
                    b_kind = seg.kind
                b_ns += ns
                b_cycles += run
                consumed += ns
                if run == cycles_left:
                    segments.popleft()
                    if seg.on_done is not None:
                        if not seg.benign_done and (b_prov is not None
                                                    or b_more is not None):
                            flush()
                        seg.on_done()
                continue

            # Return-to-user boundary: deliver pending signals first (the
            # delivery segment is kernel-mode, so a key-change flush happens
            # before it runs, and its apply() callback is non-benign).
            if task.pending_signals:
                kernel.deliver_signals(task)
                continue

            if st.pending_mem is not None:
                self._continue_mem(task, st, flush)
                continue

            # -- pull the next op ------------------------------------------
            frames = st.frames
            if not frames:
                # The root generator ran off its end without exit(): exit(0).
                flush()
                kernel.do_exit(task, 0)
                continue
            frame = frames[-1]
            value, st.send_value = st.send_value, None
            try:
                if frame.started:
                    if not frame.user_mode and (b_prov is not None
                                                or b_more is not None):
                        # Kernel frames (syscall handlers) may read the
                        # clock/TSC.  An *unstarted* kernel frame is exempt:
                        # it is always a syscall invocation body, and its
                        # code before the first yield is just the entry-cost
                        # op — it observes nothing.
                        flush()
                    op = frame.gen.send(value)
                else:
                    frame.started = True
                    op = frame.gen.send(None)
            except StopIteration as stop:
                frames.pop()
                st.send_value = stop.value
                if not frames and task.alive:
                    # Root frame finished without exit(): implicit
                    # exit(status).
                    flush()
                    code = stop.value if isinstance(stop.value, int) else 0
                    kernel.do_exit(task, code)
                continue

            # -- dispatch: hot ops inline, everything else via _dispatch ---
            op_cls = op.__class__
            if op_cls is Compute:
                # Fully inlined: run the first slice now, materialising a
                # Segment only for the part that does not fit in the
                # remaining budget.  The send that produced the op may have
                # run kernel code (handlers post signals, wake tasks, queue
                # work), so the loop-top checks must be re-established
                # first — if any fail, queue the whole op and let the loop
                # top decide, exactly as the cold dispatch path would.
                state = task.state
                if (kernel.need_resched or segments
                        or (state is not running and state is not ready)):
                    segments.append(Segment(
                        op.cycles, frame.user_mode, frame.provenance,
                        _KIND_USER if frame.user_mode else _KIND_SYSCALL))
                    continue
                user_mode = frame.user_mode
                cpu.mode = mode_user if user_mode else mode_kernel
                cycles_left = op.cycles
                if cycles_left:
                    prov = frame.provenance
                    kind = _KIND_USER if user_mode else _KIND_SYSCALL
                    if b_prov is not None and (
                            b_user is not user_mode
                            or b_prov is not prov
                            or b_kind is not kind):
                        fold()
                    avail = (budget_ns - consumed) * freq // NS_PER_SEC
                    if avail <= 0:
                        # Sub-cycle remainder (see the segment loop above).
                        if b_prov is None:
                            b_user = user_mode
                            b_prov = prov
                            b_kind = kind
                        b_ns += budget_ns - consumed
                        consumed = budget_ns
                        segments.append(Segment(cycles_left, user_mode,
                                                prov, kind))
                        continue
                    if cycles_left > avail:
                        segments.append(Segment(cycles_left - avail,
                                                user_mode, prov, kind))
                        run = avail
                    else:
                        run = cycles_left
                    ns = (run * NS_PER_SEC + freq - 1) // freq
                    if b_prov is None:
                        b_user = user_mode
                        b_prov = prov
                        b_kind = kind
                    b_ns += ns
                    b_cycles += run
                    consumed += ns
                continue
            if op_cls is Mem:
                if not frame.user_mode:
                    raise SimulationError(
                        "kernel frames may not yield Mem ops")
                # Fast path: a present page with debug registers disarmed
                # and no queued work, signal or resched — charge every
                # repeat straight into the batch, exactly what the slow
                # path's single plain segment would do.  (The slow path
                # delivers pending signals *before* the access, so any
                # pending signal forces it.)
                state = task.state
                space = task.mm
                if (space is not None and not task.debug.armed
                        and not kernel.need_resched and not segments
                        and not task.pending_signals
                        and (state is running or state is ready)
                        and mm.classify(space, op.vaddr) is _FAULT_HIT):
                    cycles_left = mem_cost * op.repeat
                    avail = (budget_ns - consumed) * freq // NS_PER_SEC
                    if cycles_left <= avail:
                        mm.note_access(space, op.vaddr, op.write)
                        cpu.mode = mode_user
                        if cycles_left:
                            prov = frame.provenance
                            if b_prov is not None and (
                                    b_user is not True
                                    or b_prov is not prov
                                    or b_kind is not _KIND_USER):
                                fold()
                            ns = (cycles_left * NS_PER_SEC + freq - 1) // freq
                            if b_prov is None:
                                b_user = True
                                b_prov = prov
                                b_kind = _KIND_USER
                            b_ns += ns
                            b_cycles += cycles_left
                            consumed += ns
                        st.send_value = None
                        continue
                st.pending_mem = PendingMem(op)
                continue
            if op_cls is Syscall:
                self._start_syscall(task, st, frame, op)
                continue
            if op_cls is Invoke:
                fn = op.fn
                st.push_frame(Frame(
                    fn.instantiate(task.guest_ctx, *op.args),
                    fn.provenance, fn.name, user_mode=frame.user_mode))
                continue
            if op_cls is CallLib:
                # Fast path: resolve, charge the whole PLT overhead into
                # the batch and push the callee — what the slow path's
                # PLT segment plus benign push on_done would do, provided
                # that segment could not be preempted or split.
                state = task.state
                if (not kernel.need_resched and not segments
                        and (state is running or state is ready)):
                    ctx = task.guest_ctx
                    link_map = (ctx.shared.get("_link_map")
                                if ctx is not None else None)
                    if link_map is not None:
                        try:
                            lib, fn = link_map.resolve(op.symbol)
                        except FileNotFound:
                            lib = None
                        if lib is not None:
                            avail = ((budget_ns - consumed)
                                     * freq // NS_PER_SEC)
                            if plt_cost <= avail:
                                cpu.mode = mode_user
                                if plt_cost:
                                    prov = frame.provenance
                                    if b_prov is not None and (
                                            b_user is not True
                                            or b_prov is not prov
                                            or b_kind is not _KIND_USER):
                                        fold()
                                    ns = ((plt_cost * NS_PER_SEC + freq - 1)
                                          // freq)
                                    if b_prov is None:
                                        b_user = True
                                        b_prov = prov
                                        b_kind = _KIND_USER
                                    b_ns += ns
                                    b_cycles += plt_cost
                                    consumed += ns
                                st.push_frame(Frame(
                                    fn.instantiate(ctx, *op.args),
                                    fn.provenance,
                                    f"{lib.name}:{op.symbol}", lib=lib))
                                continue
                self._call_lib(task, st, frame, op.symbol, op.args,
                               after=None, flush=flush)
                continue
            if op_cls is CallNext:
                if frame.lib is None:
                    raise SimulationError(
                        "CallNext outside a library function frame")
                self._call_lib(task, st, frame, op.symbol, op.args,
                               after=frame.lib, flush=flush)
                continue
            flush()
            self._dispatch(task, st, frame, op)

    # -- op dispatch --------------------------------------------------------------

    def _dispatch(self, task: "Task", st: ExecState, frame: Frame,
                  op: Op) -> None:
        kernel = self.kernel
        if isinstance(op, Compute):
            kind = ChargeKind.USER if frame.user_mode else ChargeKind.SYSCALL
            st.segments.append(Segment(op.cycles, frame.user_mode,
                                       frame.provenance, kind))
            return
        if isinstance(op, Mem):
            if not frame.user_mode:
                raise SimulationError("kernel frames may not yield Mem ops")
            st.pending_mem = PendingMem(op)
            return
        if isinstance(op, Syscall):
            self._start_syscall(task, st, frame, op)
            return
        if isinstance(op, Invoke):
            fn: GuestFunction = op.fn
            gen = fn.instantiate(task.guest_ctx, *op.args)
            st.push_frame(Frame(gen, fn.provenance, fn.name,
                                user_mode=frame.user_mode))
            return
        if isinstance(op, CallLib):
            self._call_lib(task, st, frame, op.symbol, op.args, after=None)
            return
        if isinstance(op, CallNext):
            if frame.lib is None:
                raise SimulationError(
                    "CallNext outside a library function frame")
            self._call_lib(task, st, frame, op.symbol, op.args,
                           after=frame.lib)
            return
        if isinstance(op, Block):
            if frame.user_mode:
                raise SimulationError("user frames may not yield Block ops")
            st.blocked_frame = frame
            kernel.block_current(task, op.channel)
            return
        if isinstance(op, ReplaceImage):
            kernel.install_image(task, op.program)
            return
        raise SimulationError(f"unknown op {op!r}")

    def _call_lib(self, task: "Task", st: ExecState, frame: Frame,
                  symbol: str, args, after,
                  flush: Optional[Callable[[], None]] = None) -> None:
        kernel = self.kernel
        link_map = task.guest_ctx.shared.get("_link_map") if task.guest_ctx else None
        if link_map is None:
            raise SimulationError(
                f"task {task.pid} has no link map (not exec'd?)")
        try:
            if after is None:
                lib, fn = link_map.resolve(symbol)
            else:
                lib, fn = link_map.resolve_after(symbol, after)
        except FileNotFound:
            # Undefined symbol at call time: the process dies like a
            # lazy-binding failure would.
            if flush is not None:
                flush()
            kernel.trace("link", f"undefined symbol {symbol}", task.pid)
            kernel.do_exit(task, 127)
            return
        gen = fn.instantiate(task.guest_ctx, *args)
        callee = Frame(gen, fn.provenance, f"{lib.name}:{symbol}", lib=lib)
        # Small PLT-call overhead charged to the caller, then enter callee.
        st.segments.append(Segment(
            kernel.costs.lib_call_cycles, True, frame.provenance,
            ChargeKind.USER, on_done=lambda: st.push_frame(callee),
            benign_done=True))

    # -- syscalls ------------------------------------------------------------------

    def _start_syscall(self, task: "Task", st: ExecState, caller: Frame,
                       op: Syscall) -> None:
        kernel = self.kernel
        gen = kernel.syscalls.frame(task, op.name, op.args, caller.provenance)
        st.push_frame(Frame(gen, caller.provenance, f"sys_{op.name}",
                            user_mode=False))

    # -- memory ---------------------------------------------------------------------

    def _continue_mem(self, task: "Task", st: ExecState,
                      flush: Optional[Callable[[], None]] = None) -> None:
        kernel = self.kernel
        pending = st.pending_mem
        op = pending.op
        mm = kernel.mm
        space = task.mm
        if space is None:
            raise SimulationError(f"task {task.pid} has no address space")

        kind = mm.classify(space, op.vaddr)
        if kind is FaultKind.SEGV:
            st.pending_mem = None
            if flush is not None:
                flush()
            kernel.trace("fault", f"SIGSEGV at 0x{op.vaddr:x}", task.pid)
            kernel.post_signal(task, SIGSEGV)
            return
        if kind is FaultKind.MINOR:
            self._start_minor_fault(task, st, op)
            return
        if kind is FaultKind.MAJOR:
            self._start_major_fault(task, st, op)
            return

        # Present page.
        frame_prov = st.frames[-1].provenance if st.frames else Provenance.USER
        watched = task.debug.armed and task.debug.hit(op.vaddr, op.write) is not None
        mm.note_access(space, op.vaddr, op.write)
        cost = kernel.costs.mem_access_cycles
        if not watched:
            # Fast path: all remaining repeats as one divisible segment.
            repeats = pending.remaining
            st.pending_mem = None

            def done_plain() -> None:
                st.send_value = None

            st.segments.append(Segment(cost * repeats, True, frame_prov,
                                       ChargeKind.USER, on_done=done_plain,
                                       benign_done=True))
            return

        # Watched access: one access, then the debug exception fires.
        pending.remaining -= 1
        last = pending.remaining == 0

        def done_watched() -> None:
            if last:
                st.pending_mem = None
                st.send_value = None
            self._debug_exception(task, st)

        st.segments.append(Segment(cost, True, frame_prov, ChargeKind.USER,
                                   on_done=done_watched))

    def _debug_exception(self, task: "Task", st: ExecState) -> None:
        """A hardware watchpoint fired: exception, then SIGTRAP."""
        kernel = self.kernel
        kernel.trace("debug", "watchpoint hit", task.pid)
        task.debug_exceptions += 1

        def done() -> None:
            kernel.post_signal(task, SIGTRAP)

        st.segments.append(Segment(
            kernel.costs.debug_exception_cycles, False, Provenance.TRACER,
            ChargeKind.SYSCALL, on_done=done))

    def _start_minor_fault(self, task: "Task", st: ExecState, op: Mem) -> None:
        kernel = self.kernel
        task.minor_faults += 1
        frame_prov = st.frames[-1].provenance if st.frames else Provenance.USER

        def done() -> None:
            try:
                wrote_back = kernel.mm.complete_minor_fault(task.mm, op.vaddr)
            except OutOfMemory:
                if not kernel.oom_kill(requester=task):
                    raise
                if not task.alive:
                    return
                wrote_back = kernel.mm.complete_minor_fault(task.mm, op.vaddr)
            self._charge_reclaim(task, st, frame_prov)
            if wrote_back:
                kernel.swap_writeback(task)

        st.segments.append(Segment(
            kernel.costs.minor_fault_cycles +
            kernel.costs.page_zero_cycles, False, frame_prov,
            ChargeKind.SYSCALL, on_done=done))

    def _start_major_fault(self, task: "Task", st: ExecState, op: Mem) -> None:
        kernel = self.kernel
        task.major_faults += 1
        frame_prov = st.frames[-1].provenance if st.frames else Provenance.USER

        def done() -> None:
            try:
                frame, wrote_back = kernel.mm.begin_major_fault(task.mm, op.vaddr)
            except OutOfMemory:
                if not kernel.oom_kill(requester=task):
                    raise
                if not task.alive:
                    return
                frame, wrote_back = kernel.mm.begin_major_fault(task.mm, op.vaddr)
            self._charge_reclaim(task, st, frame_prov)
            if wrote_back:
                kernel.swap_writeback(task)
            kernel.begin_swap_in(task, op.vaddr, frame)

        st.segments.append(Segment(
            kernel.costs.major_fault_cycles, False, frame_prov,
            ChargeKind.SYSCALL, on_done=done))

    def _charge_reclaim(self, task: "Task", st: ExecState,
                        provenance: Provenance) -> None:
        """Charge direct-reclaim scan work performed by the last allocation."""
        kernel = self.kernel
        scanned = kernel.mm.last_reclaim_scanned
        if not scanned:
            return
        kernel.mm.last_reclaim_scanned = 0
        cycles = scanned * kernel.costs.reclaim_scan_cycles_per_frame
        st.segments.append(Segment(cycles, False, provenance,
                                   ChargeKind.SYSCALL))

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _reason_for_state(task: "Task") -> StopReason:
        if task.state is TaskState.WAITING:
            return StopReason.BLOCKED
        if task.state is TaskState.STOPPED:
            return StopReason.STOPPED
        if task.state in (TaskState.ZOMBIE, TaskState.DEAD):
            return StopReason.EXITED
        raise SimulationError(
            f"engine stopped with task in state {task.state}")
