"""The op-stream execution engine: the simulated CPU core loop.

Drives one task's generator frames, converting ops into exactly-timed
slices of simulated work.  Everything the paper's attacks depend on happens
here, at its natural architectural point:

* ``Compute`` blocks are divisible, so a timer tick preempts mid-block at
  the exact nanosecond — tick *sampling* is therefore exact, unlike a pure
  Python timing harness (the calibration concern);
* ``Mem`` accesses consult the page table (minor/major faults) and the
  debug registers (watchpoint → debug exception → SIGTRAP), the thrashing
  and exception-flooding machinery;
* ``Syscall`` pushes a kernel-mode frame whose cycles are charged as system
  time attributed to the *calling code's provenance*, so injected code's
  syscalls are visible to the oracle;
* signals are delivered at the return-to-user boundary, costing kernel time
  in the target's context, as on real hardware.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from ..errors import (
    FileNotFound,
    OutOfMemory,
    SimulationError,
)
from ..hw.cpu import CPUMode
from ..programs.base import GuestFunction
from ..programs.ops import (
    CallLib,
    CallNext,
    Compute,
    Invoke,
    Mem,
    Op,
    Provenance,
    Syscall,
)
from .accounting import ChargeKind
from .mm.manager import FaultKind
from .signals import SIGSEGV, SIGTRAP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel
    from .process import Task


class StopReason(enum.Enum):
    """Why the engine stopped running a task."""

    #: The time budget (distance to the next event) was used up.
    BUDGET = "budget"
    #: The kernel requested a reschedule (tick preemption, yield, wakeup).
    PREEMPTED = "preempted"
    #: The task blocked (wait, sleep, disk I/O).
    BLOCKED = "blocked"
    #: The task was stopped by a signal or a traced stop.
    STOPPED = "stopped"
    #: The task exited (or was killed).
    EXITED = "exited"


class Block(Op):
    """Kernel-internal op: park the task on ``channel`` until woken.

    Only kernel frames yield this.  The value passed to
    :meth:`Kernel.wake` is sent back into the yielding generator.
    """

    __slots__ = ("channel",)

    def __init__(self, channel: str) -> None:
        self.channel = channel

    def __repr__(self) -> str:
        return f"Block({self.channel!r})"


class ReplaceImage(Op):
    """Kernel-internal op: execve point-of-no-return.

    The engine discards the whole frame stack (including the syscall frame
    that yielded this) and installs the new process image.
    """

    __slots__ = ("program",)

    def __init__(self, program) -> None:
        self.program = program

    def __repr__(self) -> str:
        return f"ReplaceImage({self.program!r})"


class Frame:
    """One entry of a task's execution stack."""

    __slots__ = ("gen", "provenance", "name", "lib", "user_mode", "started")

    def __init__(self, gen, provenance: Provenance, name: str,
                 lib=None, user_mode: bool = True) -> None:
        self.gen = gen
        self.provenance = provenance
        self.name = name
        self.lib = lib
        self.user_mode = user_mode
        self.started = False

    def __repr__(self) -> str:
        mode = "user" if self.user_mode else "kernel"
        return f"Frame({self.name!r}, {self.provenance.value}, {mode})"


class Segment:
    """A chunk of pending timed work (divisible)."""

    __slots__ = ("cycles_left", "user_mode", "provenance", "kind", "on_done")

    def __init__(self, cycles: int, user_mode: bool, provenance: Provenance,
                 kind: ChargeKind,
                 on_done: Optional[Callable[[], None]] = None) -> None:
        self.cycles_left = int(cycles)
        self.user_mode = user_mode
        self.provenance = provenance
        self.kind = kind
        self.on_done = on_done


class PendingMem:
    """A memory access in progress (possibly mid-fault or mid-trap)."""

    __slots__ = ("op", "remaining")

    def __init__(self, op: Mem) -> None:
        self.op = op
        self.remaining = op.repeat


class ExecState:
    """Per-task execution machinery."""

    __slots__ = ("frames", "segments", "send_value", "pending_mem",
                 "blocked_frame")

    def __init__(self) -> None:
        self.frames: List[Frame] = []
        self.segments: Deque[Segment] = deque()
        self.send_value: object = None
        self.pending_mem: Optional[PendingMem] = None
        #: Frame that yielded a Block, awaiting the wake payload.
        self.blocked_frame: Optional[Frame] = None

    def push_frame(self, frame: Frame) -> None:
        self.frames.append(frame)

    @property
    def depth(self) -> int:
        return len(self.frames)


class ExecutionEngine:
    """Runs tasks' op streams against the kernel and hardware."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    # -- public entry point ------------------------------------------------

    def run(self, task: "Task", budget_ns: int) -> Tuple[int, StopReason]:
        """Run ``task`` for at most ``budget_ns``; returns (consumed, why).

        The clock is advanced as work is consumed.  The engine stops at the
        first of: budget exhaustion, a kernel resched request, the task
        blocking/stopping/exiting.
        """
        checker = self.kernel.invariants
        if checker is None:
            return self._run_loop(task, budget_ns)
        # Under invariant checking, hold the engine to its own contract:
        # the consumed total it reports is exactly the time the clock
        # moved while it ran, and it never overruns its budget.
        start_ns = self.kernel.clock.now
        consumed, reason = self._run_loop(task, budget_ns)
        checker.on_engine_stop(task, consumed,
                               self.kernel.clock.now - start_ns, budget_ns)
        return consumed, reason

    def _run_loop(self, task: "Task", budget_ns: int) -> Tuple[int, StopReason]:
        kernel = self.kernel
        consumed = 0
        st = task.exec_state
        if st is None:
            raise SimulationError(f"task {task.pid} has no exec state")
        while True:
            if not task.runnable:
                return consumed, self._reason_for_state(task)
            if kernel.need_resched:
                return consumed, StopReason.PREEMPTED
            if consumed >= budget_ns:
                return consumed, StopReason.BUDGET

            if st.segments:
                consumed += self._run_segment(task, st, budget_ns - consumed)
                continue

            # Return-to-user boundary: deliver pending signals first.
            if task.pending_signals:
                kernel.deliver_signals(task)
                continue

            if st.pending_mem is not None:
                self._continue_mem(task, st)
                continue

            self._pull_op(task, st)

    # -- segment execution ----------------------------------------------------

    def _run_segment(self, task: "Task", st: ExecState, budget_ns: int) -> int:
        kernel = self.kernel
        cpu = kernel.cpu
        seg = st.segments[0]
        cpu.mode = CPUMode.USER if seg.user_mode else CPUMode.KERNEL

        if seg.cycles_left == 0:
            st.segments.popleft()
            if seg.on_done is not None:
                seg.on_done()
            return 0

        avail_cycles = cpu.ns_to_cycles(budget_ns)
        if avail_cycles <= 0:
            # Sub-cycle remainder: burn it as zero-work time so the clock
            # reaches the next event and the machine can make progress.
            kernel.consume(task, budget_ns, 0, seg.user_mode,
                           seg.provenance, seg.kind)
            return budget_ns

        run = min(seg.cycles_left, avail_cycles)
        ns = cpu.cycles_to_ns(run)
        seg.cycles_left -= run
        kernel.consume(task, ns, run, seg.user_mode, seg.provenance, seg.kind)
        if seg.cycles_left == 0:
            st.segments.popleft()
            if seg.on_done is not None:
                seg.on_done()
        return ns

    # -- op dispatch --------------------------------------------------------------

    def _pull_op(self, task: "Task", st: ExecState) -> None:
        kernel = self.kernel
        if not st.frames:
            # The root generator ran off its end without exit(): exit(0).
            kernel.do_exit(task, 0)
            return
        frame = st.frames[-1]
        value, st.send_value = st.send_value, None
        try:
            if frame.started:
                op = frame.gen.send(value)
            else:
                frame.started = True
                op = frame.gen.send(None)
        except StopIteration as stop:
            st.frames.pop()
            st.send_value = stop.value
            if not st.frames and task.alive:
                # Root frame finished without exit(): implicit exit(status).
                code = stop.value if isinstance(stop.value, int) else 0
                kernel.do_exit(task, code)
            return
        self._dispatch(task, st, frame, op)

    def _dispatch(self, task: "Task", st: ExecState, frame: Frame,
                  op: Op) -> None:
        kernel = self.kernel
        if isinstance(op, Compute):
            kind = ChargeKind.USER if frame.user_mode else ChargeKind.SYSCALL
            st.segments.append(Segment(op.cycles, frame.user_mode,
                                       frame.provenance, kind))
            return
        if isinstance(op, Mem):
            if not frame.user_mode:
                raise SimulationError("kernel frames may not yield Mem ops")
            st.pending_mem = PendingMem(op)
            return
        if isinstance(op, Syscall):
            self._start_syscall(task, st, frame, op)
            return
        if isinstance(op, Invoke):
            fn: GuestFunction = op.fn
            gen = fn.instantiate(task.guest_ctx, *op.args)
            st.push_frame(Frame(gen, fn.provenance, fn.name,
                                user_mode=frame.user_mode))
            return
        if isinstance(op, CallLib):
            self._call_lib(task, st, frame, op.symbol, op.args, after=None)
            return
        if isinstance(op, CallNext):
            if frame.lib is None:
                raise SimulationError(
                    "CallNext outside a library function frame")
            self._call_lib(task, st, frame, op.symbol, op.args,
                           after=frame.lib)
            return
        if isinstance(op, Block):
            if frame.user_mode:
                raise SimulationError("user frames may not yield Block ops")
            st.blocked_frame = frame
            kernel.block_current(task, op.channel)
            return
        if isinstance(op, ReplaceImage):
            kernel.install_image(task, op.program)
            return
        raise SimulationError(f"unknown op {op!r}")

    def _call_lib(self, task: "Task", st: ExecState, frame: Frame,
                  symbol: str, args, after) -> None:
        kernel = self.kernel
        link_map = task.guest_ctx.shared.get("_link_map") if task.guest_ctx else None
        if link_map is None:
            raise SimulationError(
                f"task {task.pid} has no link map (not exec'd?)")
        try:
            if after is None:
                lib, fn = link_map.resolve(symbol)
            else:
                lib, fn = link_map.resolve_after(symbol, after)
        except FileNotFound:
            # Undefined symbol at call time: the process dies like a
            # lazy-binding failure would.
            kernel.trace("link", f"undefined symbol {symbol}", task.pid)
            kernel.do_exit(task, 127)
            return
        gen = fn.instantiate(task.guest_ctx, *args)
        callee = Frame(gen, fn.provenance, f"{lib.name}:{symbol}", lib=lib)
        # Small PLT-call overhead charged to the caller, then enter callee.
        st.segments.append(Segment(
            kernel.costs.lib_call_cycles, True, frame.provenance,
            ChargeKind.USER, on_done=lambda: st.push_frame(callee)))

    # -- syscalls ------------------------------------------------------------------

    def _start_syscall(self, task: "Task", st: ExecState, caller: Frame,
                       op: Syscall) -> None:
        kernel = self.kernel
        gen = kernel.syscalls.frame(task, op.name, op.args, caller.provenance)
        st.push_frame(Frame(gen, caller.provenance, f"sys_{op.name}",
                            user_mode=False))

    # -- memory ---------------------------------------------------------------------

    def _continue_mem(self, task: "Task", st: ExecState) -> None:
        kernel = self.kernel
        pending = st.pending_mem
        op = pending.op
        mm = kernel.mm
        space = task.mm
        if space is None:
            raise SimulationError(f"task {task.pid} has no address space")

        kind = mm.classify(space, op.vaddr)
        if kind is FaultKind.SEGV:
            st.pending_mem = None
            kernel.trace("fault", f"SIGSEGV at 0x{op.vaddr:x}", task.pid)
            kernel.post_signal(task, SIGSEGV)
            return
        if kind is FaultKind.MINOR:
            self._start_minor_fault(task, st, op)
            return
        if kind is FaultKind.MAJOR:
            self._start_major_fault(task, st, op)
            return

        # Present page.
        frame_prov = st.frames[-1].provenance if st.frames else Provenance.USER
        watched = task.debug.armed and task.debug.hit(op.vaddr, op.write) is not None
        mm.note_access(space, op.vaddr, op.write)
        cost = kernel.costs.mem_access_cycles
        if not watched:
            # Fast path: all remaining repeats as one divisible segment.
            repeats = pending.remaining
            st.pending_mem = None

            def done_plain() -> None:
                st.send_value = None

            st.segments.append(Segment(cost * repeats, True, frame_prov,
                                       ChargeKind.USER, on_done=done_plain))
            return

        # Watched access: one access, then the debug exception fires.
        pending.remaining -= 1
        last = pending.remaining == 0

        def done_watched() -> None:
            if last:
                st.pending_mem = None
                st.send_value = None
            self._debug_exception(task, st)

        st.segments.append(Segment(cost, True, frame_prov, ChargeKind.USER,
                                   on_done=done_watched))

    def _debug_exception(self, task: "Task", st: ExecState) -> None:
        """A hardware watchpoint fired: exception, then SIGTRAP."""
        kernel = self.kernel
        kernel.trace("debug", "watchpoint hit", task.pid)
        task.debug_exceptions += 1

        def done() -> None:
            kernel.post_signal(task, SIGTRAP)

        st.segments.append(Segment(
            kernel.costs.debug_exception_cycles, False, Provenance.TRACER,
            ChargeKind.SYSCALL, on_done=done))

    def _start_minor_fault(self, task: "Task", st: ExecState, op: Mem) -> None:
        kernel = self.kernel
        task.minor_faults += 1
        frame_prov = st.frames[-1].provenance if st.frames else Provenance.USER

        def done() -> None:
            try:
                wrote_back = kernel.mm.complete_minor_fault(task.mm, op.vaddr)
            except OutOfMemory:
                if not kernel.oom_kill(requester=task):
                    raise
                if not task.alive:
                    return
                wrote_back = kernel.mm.complete_minor_fault(task.mm, op.vaddr)
            self._charge_reclaim(task, st, frame_prov)
            if wrote_back:
                kernel.swap_writeback(task)

        st.segments.append(Segment(
            kernel.costs.minor_fault_cycles +
            kernel.costs.page_zero_cycles, False, frame_prov,
            ChargeKind.SYSCALL, on_done=done))

    def _start_major_fault(self, task: "Task", st: ExecState, op: Mem) -> None:
        kernel = self.kernel
        task.major_faults += 1
        frame_prov = st.frames[-1].provenance if st.frames else Provenance.USER

        def done() -> None:
            try:
                frame, wrote_back = kernel.mm.begin_major_fault(task.mm, op.vaddr)
            except OutOfMemory:
                if not kernel.oom_kill(requester=task):
                    raise
                if not task.alive:
                    return
                frame, wrote_back = kernel.mm.begin_major_fault(task.mm, op.vaddr)
            self._charge_reclaim(task, st, frame_prov)
            if wrote_back:
                kernel.swap_writeback(task)
            kernel.begin_swap_in(task, op.vaddr, frame)

        st.segments.append(Segment(
            kernel.costs.major_fault_cycles, False, frame_prov,
            ChargeKind.SYSCALL, on_done=done))

    def _charge_reclaim(self, task: "Task", st: ExecState,
                        provenance: Provenance) -> None:
        """Charge direct-reclaim scan work performed by the last allocation."""
        kernel = self.kernel
        scanned = kernel.mm.last_reclaim_scanned
        if not scanned:
            return
        kernel.mm.last_reclaim_scanned = 0
        cycles = scanned * kernel.costs.reclaim_scan_cycles_per_frame
        st.segments.append(Segment(cycles, False, provenance,
                                   ChargeKind.SYSCALL))

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _reason_for_state(task: "Task") -> StopReason:
        from .process import TaskState

        if task.state is TaskState.WAITING:
            return StopReason.BLOCKED
        if task.state is TaskState.STOPPED:
            return StopReason.STOPPED
        if task.state in (TaskState.ZOMBIE, TaskState.DEAD):
            return StopReason.EXITED
        raise SimulationError(
            f"engine stopped with task in state {task.state}")
