"""Signal numbers and default dispositions.

A deliberately small subset of POSIX: enough for process control (STOP /
CONT / KILL / CHLD), fatal faults (SEGV), and tracing (TRAP).  Handlers are
not user-installable — none of the paper's attacks needs them — but every
delivery still costs kernel time, which is the point of the thrashing
attack.
"""

from __future__ import annotations

import enum

SIGKILL = 9
SIGSEGV = 11
SIGCHLD = 17
SIGCONT = 18
SIGSTOP = 19
SIGTRAP = 5
SIGTERM = 15
SIGUSR1 = 10

SIGNAL_NAMES = {
    SIGTRAP: "SIGTRAP",
    SIGKILL: "SIGKILL",
    SIGUSR1: "SIGUSR1",
    SIGSEGV: "SIGSEGV",
    SIGTERM: "SIGTERM",
    SIGCHLD: "SIGCHLD",
    SIGCONT: "SIGCONT",
    SIGSTOP: "SIGSTOP",
}


class SignalAction(enum.Enum):
    """What delivery of a signal does by default."""

    TERMINATE = "terminate"
    STOP = "stop"
    CONTINUE = "continue"
    IGNORE = "ignore"
    #: Stop and report to the tracer (SIGTRAP on a traced task).
    TRAP = "trap"


def default_action(sig: int, traced: bool) -> SignalAction:
    """The kernel's default disposition for ``sig``.

    Any signal delivered to a *traced* task causes a traced stop so the
    tracer can inspect it — that ptrace semantics is what turns every
    watchpoint hit into two context switches in the thrashing attack.
    """
    if sig == SIGKILL:
        return SignalAction.TERMINATE  # not interceptable, even traced
    if traced:
        return SignalAction.TRAP
    if sig in (SIGSEGV, SIGTERM, SIGUSR1, SIGTRAP):
        return SignalAction.TERMINATE
    if sig == SIGSTOP:
        return SignalAction.STOP
    if sig == SIGCONT:
        return SignalAction.CONTINUE
    if sig == SIGCHLD:
        return SignalAction.IGNORE
    return SignalAction.TERMINATE


def signal_name(sig: int) -> str:
    return SIGNAL_NAMES.get(sig, f"SIG{sig}")
