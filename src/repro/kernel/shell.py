"""The command shell: fork + execve, with the shell-attack hook.

Models bash's ``execute_disk_command()``: to run a command the shell forks,
and the child calls ``execve``.  The kernel starts metering the child *at
fork* (paper §IV-A1), so anything the — server-controlled — shell arranges
to run between ``fork()`` and ``execve()`` is billed to the user's process.
:attr:`Shell.post_fork_payload` is exactly that injection point; the shell
attack sets it to a CPU-bound payload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..programs.base import GuestFunction, Program
from ..programs.ops import Invoke, Provenance, Syscall
from .process import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel


class Shell:
    """A login shell for one user session."""

    def __init__(self, kernel: "Kernel",
                 env: Optional[Dict[str, str]] = None) -> None:
        self.kernel = kernel
        #: The session environment; execve'd programs inherit it (this is
        #: where a malicious provider plants LD_PRELOAD).
        self.env: Dict[str, str] = dict(env or {})
        #: Code injected between fork() and execve() — the shell attack.
        #: None for an untampered shell.
        self.post_fork_payload: Optional[GuestFunction] = None
        self.commands_run = 0

    def set_env(self, key: str, value: str) -> None:
        self.env[key] = value

    def unset_env(self, key: str) -> None:
        self.env.pop(key, None)

    def run_command(self, program: Program, uid: Optional[int] = None,
                    nice: Optional[int] = None,
                    name: Optional[str] = None) -> Task:
        """Launch ``program`` the way a shell does; returns the child task.

        The child's op stream is: [injected payload, if the shell was
        tampered with] → execve(program).  Metering of the child starts at
        creation, so the payload's cycles land in the user's bill.
        """
        payload = self.post_fork_payload
        self.commands_run += 1

        def trampoline(ctx):
            if payload is not None:
                yield Invoke(payload)
            yield Syscall("execve", (program,))
            return 0

        fn = GuestFunction(f"sh -c {program.name}", trampoline,
                           Provenance.USER)
        return self.kernel.spawn(fn, name=name or program.name, uid=uid,
                                 nice=nice, env=dict(self.env))
