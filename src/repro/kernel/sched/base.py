"""Scheduler interface.

The kernel drives schedulers through this narrow API.  Time flows in via
:meth:`update_curr` (called with the exact ns the current task just ran) and
:meth:`task_tick` (the per-jiffy hook).  The distinction matters: the
*accounting* bug the paper attacks lives in the accounting scheme, not here
— schedulers always see exact runtimes, as real CFS does via the rq clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...config import SchedulerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..process import Task


class Scheduler:
    """Abstract run-queue scheduler."""

    name = "abstract"

    def __init__(self, cfg: SchedulerConfig) -> None:
        self.cfg = cfg
        self._seq = 0

    # -- queue membership ---------------------------------------------------

    def enqueue(self, task: "Task", wakeup: bool = False) -> None:
        """Add a runnable task.  ``wakeup`` marks a sleep→runnable change."""
        raise NotImplementedError

    def dequeue(self, task: "Task") -> None:
        """Remove a task (it blocked, stopped or exited)."""
        raise NotImplementedError

    def pick_next(self) -> Optional["Task"]:
        """Pop the next task to run, or None if the queue is empty."""
        raise NotImplementedError

    def put_prev(self, task: "Task") -> None:
        """Return the preempted current task to the queue."""
        raise NotImplementedError

    @property
    def nr_runnable(self) -> int:
        raise NotImplementedError

    def queued_pids(self) -> Optional[list]:
        """Every queued task's pid, one entry per queue membership.

        Used by the invariant checker to verify run-queue consistency
        (READY tasks queued exactly once, nobody else queued at all).
        Returning None opts a scheduler out of the check.
        """
        return None

    def steal_task(self, allowed=None) -> Optional["Task"]:
        """Dequeue and return the queued task the load balancer should
        pull from this queue, or None if nothing is stealable.

        ``allowed`` is an optional predicate Task -> bool (affinity
        filter).  Policies pick their least-locally-deserving task so the
        steal costs the source queue as little as possible, and must be
        deterministic.  Returning None opts a scheduler out of balancing.
        """
        return None

    # -- time hooks -----------------------------------------------------------

    def update_curr(self, task: "Task", delta_ns: int) -> None:
        """Charge ``delta_ns`` of actual runtime to the current task."""
        raise NotImplementedError

    def task_tick(self, task: "Task") -> bool:
        """Per-jiffy hook for the running task; True requests a resched."""
        raise NotImplementedError

    def check_preempt_wakeup(self, current: "Task", woken: "Task") -> bool:
        """Should ``woken`` preempt ``current`` right now?"""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------

    def on_fork(self, parent: "Task", child: "Task") -> None:
        """Initialise the child's scheduler fields from the parent."""
        raise NotImplementedError

    def on_pick(self, task: "Task") -> None:
        """Called when ``task`` becomes the running task."""
        task.ran_since_pick = 0

    def on_nice_change(self, task: "Task") -> None:
        """React to a setpriority() on a task (possibly queued)."""

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq
