"""Run-queue schedulers: CFS (default, as in the paper's 2.6.29 kernel),
an O(1)-style priority scheduler, and plain round-robin."""

from .base import Scheduler
from .cfs import CfsScheduler, NICE_TO_WEIGHT
from .o1 import O1Scheduler
from .rr import RoundRobinScheduler
from .factory import make_scheduler

__all__ = [
    "Scheduler",
    "CfsScheduler",
    "NICE_TO_WEIGHT",
    "O1Scheduler",
    "RoundRobinScheduler",
    "make_scheduler",
]
