"""Scheduler construction from configuration."""

from __future__ import annotations

from ...config import MachineConfig
from ...errors import ConfigError
from .base import Scheduler
from .cfs import CfsScheduler
from .o1 import O1Scheduler
from .rr import RoundRobinScheduler


def make_scheduler(cfg: MachineConfig) -> Scheduler:
    """Instantiate the scheduler named by ``cfg.scheduler.kind``."""
    kind = cfg.scheduler.kind
    if kind == "cfs":
        return CfsScheduler(cfg.scheduler)
    if kind == "o1":
        sched = O1Scheduler(cfg.scheduler)
        sched.set_jiffy_ns(cfg.tick_ns)
        return sched
    if kind == "rr":
        return RoundRobinScheduler(cfg.scheduler)
    raise ConfigError(f"unknown scheduler kind {kind!r}")
