"""An O(1)-style priority scheduler (Linux 2.6.0–2.6.22 era).

Two priority arrays (active/expired); the running task's timeslice is
decremented at every tick and the task is moved to the expired array when it
runs out, giving the classic epoch behaviour.  Timeslices follow the
``task_timeslice()`` scaling: nice 0 → 100 ms, nice −20 → 200 ms, nice 19 →
5 ms.  Interactivity bonuses are deliberately omitted (documented
simplification; the metering attacks do not depend on them).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from ...config import SchedulerConfig
from ...errors import SimulationError
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..process import Task

MAX_PRIO = 140
MAX_USER_PRIO = 40
MIN_TIMESLICE_NS = 5_000_000


class _PrioArray:
    """One of the two O(1) priority arrays."""

    def __init__(self) -> None:
        self.queues: Dict[int, Deque["Task"]] = {}
        self.count = 0

    def push(self, task: "Task") -> None:
        self.queues.setdefault(task.static_prio, deque()).append(task)
        self.count += 1

    def pop_best(self) -> Optional["Task"]:
        if not self.count:
            return None
        best = min(prio for prio, q in self.queues.items() if q)
        task = self.queues[best].popleft()
        if not self.queues[best]:
            del self.queues[best]
        self.count -= 1
        return task

    def best_prio(self) -> Optional[int]:
        if not self.count:
            return None
        return min(prio for prio, q in self.queues.items() if q)

    def pids(self):
        return [task.pid for q in self.queues.values() for task in q]

    def remove(self, task: "Task") -> bool:
        # Usually the task sits at its current static_prio, but a nice
        # change may have moved the label out from under us — fall back to
        # scanning every queue.
        candidates = [task.static_prio] + [
            p for p in list(self.queues) if p != task.static_prio]
        for prio in candidates:
            q = self.queues.get(prio)
            if q is None:
                continue
            try:
                q.remove(task)
            except ValueError:
                continue
            if not q:
                del self.queues[prio]
            self.count -= 1
            return True
        return False


class O1Scheduler(Scheduler):
    """Active/expired array scheduler."""

    name = "o1"

    def __init__(self, cfg: SchedulerConfig) -> None:
        super().__init__(cfg)
        self._active = _PrioArray()
        self._expired = _PrioArray()
        #: Jiffy length; the factory overrides it from the machine config.
        self._jiffy_ns = 4_000_000

    def timeslice_for(self, task: "Task") -> int:
        """task_timeslice(): scale the base slice by static priority."""
        slice_ns = (self.cfg.base_timeslice_ns
                    * (MAX_PRIO - task.static_prio) // (MAX_USER_PRIO // 2))
        return max(slice_ns, MIN_TIMESLICE_NS)

    # -- queue ---------------------------------------------------------------

    @property
    def nr_runnable(self) -> int:
        return self._active.count + self._expired.count

    def queued_pids(self):
        return self._active.pids() + self._expired.pids()

    def enqueue(self, task: "Task", wakeup: bool = False) -> None:
        if task.timeslice_ns <= 0:
            task.timeslice_ns = self.timeslice_for(task)
        self._active.push(task)

    def dequeue(self, task: "Task") -> None:
        if not self._active.remove(task) and not self._expired.remove(task):
            raise SimulationError(f"task {task.pid} not queued")

    def pick_next(self) -> Optional["Task"]:
        task = self._active.pop_best()
        if task is not None:
            return task
        # Epoch switch: swap arrays.
        if self._expired.count:
            self._active, self._expired = self._expired, self._active
            return self._active.pop_best()
        return None

    def put_prev(self, task: "Task") -> None:
        if task.timeslice_ns <= 0:
            task.timeslice_ns = self.timeslice_for(task)
            self._expired.push(task)
        else:
            self._active.push(task)

    def steal_task(self, allowed=None) -> Optional["Task"]:
        # Pull from the tail end of the priority spectrum: the task with
        # the numerically highest (weakest) static priority, expired array
        # first — it is the last in line here, so the steal disturbs the
        # local epoch the least.  Pid breaks ties for determinism.
        best = None
        for array in (self._expired, self._active):
            for q in array.queues.values():
                for task in q:
                    if allowed is not None and not allowed(task):
                        continue
                    if best is None or (task.static_prio, task.pid) \
                            > (best.static_prio, best.pid):
                        best = task
            if best is not None:
                array.remove(best)
                return best
        return None

    # -- time ----------------------------------------------------------------

    def update_curr(self, task: "Task", delta_ns: int) -> None:
        task.ran_since_pick += max(delta_ns, 0)

    def task_tick(self, task: "Task") -> bool:
        # scheduler_tick(): one whole jiffy off the running task's slice
        # per tick — the historical O(1) behaviour (itself tick-sampled,
        # like the accounting it was built beside).
        task.timeslice_ns -= min(task.timeslice_ns, self._jiffy_ns)
        return task.timeslice_ns <= 0

    def set_jiffy_ns(self, jiffy_ns: int) -> None:
        self._jiffy_ns = jiffy_ns

    def check_preempt_wakeup(self, current: "Task", woken: "Task") -> bool:
        return woken.static_prio < current.static_prio

    # -- lifecycle --------------------------------------------------------------

    def on_fork(self, parent: "Task", child: "Task") -> None:
        # Classic O(1): the child inherits half the parent's remaining slice.
        half = parent.timeslice_ns // 2
        child.timeslice_ns = half
        parent.timeslice_ns -= half

    def on_nice_change(self, task: "Task") -> None:
        # Requeue at the new priority if currently queued.
        if self._active.remove(task):
            self._active.push(task)
        elif self._expired.remove(task):
            self._expired.push(task)
