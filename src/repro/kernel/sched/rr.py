"""Plain round-robin scheduler: one FIFO queue, fixed timeslice.

The simplest possible baseline.  Useful in tests (fully predictable pick
order) and in the ablation showing that the scheduling attack is a property
of tick *accounting*, not of any particular scheduling policy.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from ...config import SchedulerConfig
from ...errors import SimulationError
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..process import Task


class RoundRobinScheduler(Scheduler):
    """FIFO queue with a fixed per-dispatch timeslice."""

    name = "rr"

    def __init__(self, cfg: SchedulerConfig) -> None:
        super().__init__(cfg)
        self._queue: Deque["Task"] = deque()

    @property
    def nr_runnable(self) -> int:
        return len(self._queue)

    def queued_pids(self):
        return [task.pid for task in self._queue]

    def enqueue(self, task: "Task", wakeup: bool = False) -> None:
        if task in self._queue:
            raise SimulationError(f"task {task.pid} enqueued twice")
        task.timeslice_ns = self.cfg.base_timeslice_ns
        self._queue.append(task)

    def dequeue(self, task: "Task") -> None:
        try:
            self._queue.remove(task)
        except ValueError:
            raise SimulationError(f"task {task.pid} not queued") from None

    def pick_next(self) -> Optional["Task"]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def put_prev(self, task: "Task") -> None:
        task.timeslice_ns = self.cfg.base_timeslice_ns
        self._queue.append(task)

    def steal_task(self, allowed=None) -> Optional["Task"]:
        # Steal from the back of the FIFO: the task that would run last.
        for task in reversed(self._queue):
            if allowed is None or allowed(task):
                self._queue.remove(task)
                return task
        return None

    def update_curr(self, task: "Task", delta_ns: int) -> None:
        task.ran_since_pick += max(delta_ns, 0)
        task.timeslice_ns -= min(task.timeslice_ns, max(delta_ns, 0))

    def task_tick(self, task: "Task") -> bool:
        return task.timeslice_ns <= 0

    def check_preempt_wakeup(self, current: "Task", woken: "Task") -> bool:
        return False

    def on_fork(self, parent: "Task", child: "Task") -> None:
        child.timeslice_ns = self.cfg.base_timeslice_ns
