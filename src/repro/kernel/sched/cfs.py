"""The Completely Fair Scheduler, as shipped in the paper's 2.6.29 kernel.

Faithful to the mechanisms the scheduling attack interacts with:

* weights from the Linux ``prio_to_weight`` table (nice −20..19);
* ``vruntime`` advanced by ``delta * NICE_0_WEIGHT / weight``;
* ``place_entity`` sleeper fairness: a waking task's vruntime is pulled up
  to ``min_vruntime − sched_latency/2`` but never pushed back;
* tick preemption in ``check_preempt_tick`` style — a compute-bound task is
  only preempted *at a timer tick*, while blockers yield mid-jiffy.  That
  asymmetry (involuntary switches at ticks, voluntary switches between
  them) is precisely why the Fork attack's cycles hide from tick sampling.

The red-black tree is replaced by a binary heap with lazy deletion, which
preserves pick-min semantics and determinism.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ...config import SchedulerConfig
from ...errors import SimulationError
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..process import Task

#: Linux kernel prio_to_weight[]: weight for nice -20..19.
NICE_TO_WEIGHT: Dict[int, int] = {
    -20: 88761, -19: 71755, -18: 56483, -17: 46273, -16: 36291,
    -15: 29154, -14: 23254, -13: 18705, -12: 14949, -11: 11916,
    -10: 9548, -9: 7620, -8: 6100, -7: 4904, -6: 3906,
    -5: 3121, -4: 2501, -3: 1991, -2: 1586, -1: 1277,
    0: 1024, 1: 820, 2: 655, 3: 526, 4: 423,
    5: 335, 6: 272, 7: 215, 8: 172, 9: 137,
    10: 110, 11: 87, 12: 70, 13: 56, 14: 45,
    15: 36, 16: 29, 17: 23, 18: 18, 19: 15,
}

NICE_0_WEIGHT = 1024


def weight_of(task: "Task") -> int:
    try:
        return NICE_TO_WEIGHT[task.nice]
    except KeyError:
        raise SimulationError(f"nice {task.nice} outside [-20, 19]") from None


class CfsScheduler(Scheduler):
    """Single-runqueue CFS."""

    name = "cfs"

    def __init__(self, cfg: SchedulerConfig) -> None:
        super().__init__(cfg)
        #: (vruntime, seq, task) heap with lazy deletion.
        self._heap: List[Tuple[int, int, "Task"]] = []
        #: Tasks currently queued (for lazy-deletion validation).
        self._queued: Dict[int, "Task"] = {}
        self.min_vruntime = 0
        self._total_weight = 0

    # -- queue ---------------------------------------------------------------

    @property
    def nr_runnable(self) -> int:
        return len(self._queued)

    def queued_pids(self):
        # The _queued dict is authoritative; the heap may hold stale entries.
        return list(self._queued)

    def _push(self, task: "Task") -> None:
        task.enqueue_seq = self._next_seq()
        heapq.heappush(self._heap, (task.vruntime, task.enqueue_seq, task))

    def enqueue(self, task: "Task", wakeup: bool = False) -> None:
        if task.pid in self._queued:
            raise SimulationError(f"task {task.pid} enqueued twice")
        if wakeup:
            self._place_entity(task)
        self._queued[task.pid] = task
        self._total_weight += weight_of(task)
        self._push(task)

    def dequeue(self, task: "Task") -> None:
        if task.pid not in self._queued:
            raise SimulationError(f"task {task.pid} not queued")
        del self._queued[task.pid]
        self._total_weight -= weight_of(task)
        # Heap entry removed lazily by pick_next.

    def pick_next(self) -> Optional["Task"]:
        while self._heap:
            vruntime, seq, task = self._heap[0]
            if task.pid not in self._queued or seq != task.enqueue_seq \
                    or vruntime != task.vruntime:
                heapq.heappop(self._heap)  # stale entry
                continue
            heapq.heappop(self._heap)
            del self._queued[task.pid]
            self._total_weight -= weight_of(task)
            self._update_min_vruntime(task.vruntime)
            return task
        return None

    def put_prev(self, task: "Task") -> None:
        self.enqueue(task, wakeup=False)

    def peek_min(self) -> Optional["Task"]:
        while self._heap:
            vruntime, seq, task = self._heap[0]
            if task.pid not in self._queued or seq != task.enqueue_seq \
                    or vruntime != task.vruntime:
                heapq.heappop(self._heap)
                continue
            return task
        return None

    def steal_task(self, allowed=None) -> Optional["Task"]:
        # Pull the entity with the *largest* vruntime: it would have waited
        # the longest here anyway, so moving it costs local fairness the
        # least (the flip side of pick-min).  Pid breaks ties for
        # determinism.
        best = None
        for task in self._queued.values():
            if allowed is not None and not allowed(task):
                continue
            if best is None or (task.vruntime, task.pid) > (best.vruntime,
                                                            best.pid):
                best = task
        if best is not None:
            self.dequeue(best)
        return best

    def _update_min_vruntime(self, curr_vruntime: Optional[int]) -> None:
        """2.6.29 update_min_vruntime(): advance to min(curr, leftmost).

        Taking the *minimum* of the running entity and the queue head is
        load-bearing for the scheduling attack: while the fork chain runs,
        min_vruntime creeps forward only by the chain's (weight-scaled)
        debit per fork instead of leaping to the preempted victim's
        vruntime, so the tick-quantized overshoot the victim accumulated
        becomes headroom the chain spends in sub-jiffy bursts.
        """
        leftmost = self.peek_min()
        if curr_vruntime is not None and leftmost is not None:
            candidate = min(curr_vruntime, leftmost.vruntime)
        elif curr_vruntime is not None:
            candidate = curr_vruntime
        elif leftmost is not None:
            candidate = leftmost.vruntime
        else:
            return
        self.min_vruntime = max(self.min_vruntime, candidate)

    # -- time ----------------------------------------------------------------

    def update_curr(self, task: "Task", delta_ns: int) -> None:
        if delta_ns <= 0:
            return
        task.vruntime += delta_ns * NICE_0_WEIGHT // weight_of(task)
        task.ran_since_pick += delta_ns
        self._update_min_vruntime(task.vruntime)

    def _sched_slice(self, task: "Task") -> int:
        """Ideal slice for ``task``: its weighted share of the latency."""
        total = self._total_weight + weight_of(task)
        nr = self.nr_runnable + 1
        period = self.cfg.sched_latency_ns
        min_gran = self.cfg.min_granularity_ns
        if nr * min_gran > period:
            period = nr * min_gran
        # No per-task floor: 2.6.29 sched_slice() relies on period
        # stretching alone; a light task next to a heavy one gets a slice
        # well under min_granularity (and is preempted at the next tick).
        return period * weight_of(task) // max(total, 1)

    def task_tick(self, task: "Task") -> bool:
        """check_preempt_tick: preempt when the slice is used up."""
        ideal = self._sched_slice(task)
        if task.ran_since_pick > ideal:
            return True
        if task.ran_since_pick < self.cfg.min_granularity_ns:
            return False
        leftmost = self.peek_min()
        if leftmost is None:
            return False
        vdiff = task.vruntime - leftmost.vruntime
        return vdiff > ideal

    def check_preempt_wakeup(self, current: "Task", woken: "Task") -> bool:
        vdiff = current.vruntime - woken.vruntime
        return vdiff > self.cfg.wakeup_granularity_ns

    # -- lifecycle -------------------------------------------------------------

    def _place_entity(self, task: "Task") -> None:
        """Sleeper fairness: pull the waker up to min_vruntime - thresh."""
        thresh = self.cfg.sched_latency_ns // 2  # GENTLE_FAIR_SLEEPERS
        task.vruntime = max(task.vruntime, self.min_vruntime - thresh)

    def sched_vslice(self, task: "Task") -> int:
        """sched_vslice(): the task's ideal slice in vruntime units."""
        return self._sched_slice(task) * NICE_0_WEIGHT // weight_of(task)

    def on_fork(self, parent: "Task", child: "Task") -> None:
        # task_new_fair() as shipped in 2.6.29:
        #   * place_entity(initial=1) with START_DEBIT: the new entity is
        #     placed one vslice to the right of min_vruntime, so a fork
        #     loop cannot monopolise the CPU;
        #   * sysctl_sched_child_runs_first (default 1): if the placement
        #     put the child behind the parent, their vruntimes are swapped
        #     — the *parent* carries the debit.
        # The combination paces the scheduling attack's fork chain into
        # short bursts that trigger right after a timer tick (when the
        # victim is preempted), which is exactly how the attacker's cycles
        # hide from tick sampling; and the debit shrinks with the
        # attacker's weight, which is why the attack strengthens as Fork's
        # nice value drops (paper Fig. 7).
        placed = (max(parent.vruntime, self.min_vruntime)
                  + self.sched_vslice(child))
        if placed > parent.vruntime:
            # child_runs_first: child inherits the parent's vruntime, the
            # parent takes the debited placement.
            child.vruntime = parent.vruntime
            parent.vruntime = placed
        else:
            child.vruntime = placed

    def on_nice_change(self, task: "Task") -> None:
        # Weight changes take effect on the next update_curr/enqueue; if the
        # task is queued we must fix the aggregate weight bookkeeping.
        if task.pid in self._queued:
            # Recompute total weight from scratch (rare operation).
            self._total_weight = sum(weight_of(t) for t in self._queued.values())
