"""Jiffies, tick bookkeeping and the clocksource watchdog.

The :class:`TimeKeeper` is thin by design: the tick's *accounting* action
lives in the accounting scheme and its *scheduling* action in the
scheduler; this module only keeps the counters a real kernel's timekeeping
code would (jiffies, ticks observed per task state) so tests and reports
can assert on them.

The :class:`ClocksourceWatchdog` is the kernel-side defense of the fault
layer (see :mod:`repro.faults` and ``docs/faults.md``): modelled on Linux's
``clocksource_watchdog()``, it periodically cross-checks the fine-grained
clocksource (the invariant TSC) against the coarse but trustworthy one
(jiffies off the PIT grid).  When the two disagree beyond a threshold it
marks the TSC unstable and falls back to jiffies; alongside, the kernel's
lost-tick compensation (``Kernel._timer_irq``) replays jiffies a masked
tick swallowed.  Every check closes a :class:`ClockInterval` carrying a
trust grade and an uncertainty bound, which is how metering degrades
*gracefully*: billing keeps flowing, each interval just says how much the
numbers can be trusted (:class:`TrustLevel`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.cpu import CPU
    from ..hw.timer import TimerDevice
    from ..sim.clock import Clock


class TrustLevel(enum.Enum):
    """How much a metering interval's numbers can be trusted."""

    #: Clocksources agree, no tick was recovered: full confidence.
    TRUSTED = "trusted"
    #: Ticks were recovered by catch-up, arrived late, or the clocksources
    #: mildly disagree (or the watchdog is running on the jiffies
    #: fallback): numbers are correct to within ``uncertainty_ns``.
    DEGRADED = "degraded"
    #: The clocksource cross-check failed outright in this interval: the
    #: fine-grained time base was caught lying.
    UNTRUSTED = "untrusted"


#: Ordering for "worst trust level" aggregation.
TRUST_SEVERITY = {TrustLevel.TRUSTED: 0, TrustLevel.DEGRADED: 1,
                  TrustLevel.UNTRUSTED: 2}


@dataclass(frozen=True)
class ClockInterval:
    """One watchdog check window, graded."""

    start_ns: int
    end_ns: int
    #: Jiffies accounted inside the window (including caught-up ones).
    jiffies: int
    #: Jiffies recovered by lost-tick catch-up inside the window.
    caught_up: int
    #: Ticks that fired late inside the window.
    delayed: int
    #: TSC-derived elapsed time minus jiffies-derived elapsed time.
    skew_ns: int
    trust: TrustLevel
    #: Half-width of the interval's CPU-time error bound.
    uncertainty_ns: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "jiffies": self.jiffies,
            "caught_up": self.caught_up,
            "delayed": self.delayed,
            "skew_ns": self.skew_ns,
            "trust": self.trust.value,
            "uncertainty_ns": self.uncertainty_ns,
        }


class TimeKeeper:
    """Tracks jiffies and tick statistics.

    SMP note (audited for PR 6): ``jiffies`` is a single global counter in
    Linux, advanced by one designated timekeeping CPU — not once per CPU
    per period.  We mirror that: only CPU 0's tick increments ``jiffies``
    (so ``uptime_ns`` stays wall time), while every CPU's tick increments
    ``ticks_total`` and its own per-CPU mode counter.  On a uniprocessor
    every tick is CPU 0's, so the pre-SMP behavior is unchanged.
    """

    def __init__(self, tick_ns: int, nproc: int = 1) -> None:
        self.tick_ns = tick_ns
        self.nproc = nproc
        self.jiffies = 0
        self.ticks_user = 0
        self.ticks_kernel = 0
        self.ticks_idle = 0
        #: Tick samples across all CPUs (== jiffies on a uniprocessor,
        #: modulo lost-tick catch-up which replays jiffies without a
        #: hardware tick).  The per-mode counters above sum to this.
        self.ticks_total = 0
        #: Per-CPU tick counts by sampled mode, for /proc/stat "cpuN" rows.
        self.cpu_ticks_user = [0] * nproc
        self.cpu_ticks_kernel = [0] * nproc
        self.cpu_ticks_idle = [0] * nproc
        #: Involuntary-wait time reported by the hypervisor (ns the vCPU was
        #: runnable but descheduled) — the /proc/stat "steal" column.  Zero
        #: on bare metal; a hypervisor injects it via :meth:`account_steal`.
        self.steal_ns = 0
        #: Jiffies recovered by lost-tick compensation (a subset of
        #: ``jiffies``); zero unless the clocksource watchdog is active.
        self.jiffies_caught_up = 0
        #: CLOCK_REALTIME discipline: signed ns the network time plane has
        #: steered this host's wall clock away from the boot-relative
        #: uptime axis (settimeofday/adjtimex landing on the timekeeper).
        #: Stays 0 — and out of :meth:`snapshot` — unless a sync daemon is
        #: attached, so pre-timesync machines are byte-identical.
        self.walltime_offset_ns = 0
        self.sync_steered = False

    @property
    def walltime_ns(self) -> int:
        """The host's wall-clock view: uptime plus sync-plane steering.
        Equals ``uptime_ns`` exactly on machines without a time plane."""
        return self.uptime_ns + self.walltime_offset_ns

    def tick(self, running: bool, user_mode: bool, cpu: int = 0) -> None:
        if cpu == 0:
            # The timekeeping CPU drives the global jiffy counter.
            self.jiffies += 1
        self.ticks_total += 1
        if not running:
            self.ticks_idle += 1
            self.cpu_ticks_idle[cpu] += 1
        elif user_mode:
            self.ticks_user += 1
            self.cpu_ticks_user[cpu] += 1
        else:
            self.ticks_kernel += 1
            self.cpu_ticks_kernel[cpu] += 1

    def account_steal(self, ns: int) -> None:
        """Credit ``ns`` of hypervisor-reported steal time (paravirtual
        steal clock, like KVM's MSR_KVM_STEAL_TIME)."""
        if ns < 0:
            raise ValueError(f"steal delta must be >= 0, got {ns}")
        self.steal_ns += ns

    @property
    def uptime_ns(self) -> int:
        return self.jiffies * self.tick_ns

    def snapshot(self) -> dict:
        doc = {
            "jiffies": self.jiffies,
            "user": self.ticks_user,
            "kernel": self.ticks_kernel,
            "idle": self.ticks_idle,
            "steal_ns": self.steal_ns,
            "jiffies_caught_up": self.jiffies_caught_up,
        }
        if self.sync_steered:
            # Present only on sync-disciplined machines so every other
            # snapshot stays byte-identical to the pre-timesync format.
            doc["walltime_offset_ns"] = self.walltime_offset_ns
        if self.nproc > 1:
            # Added only on SMP machines so single-CPU snapshots stay
            # byte-identical to the pre-SMP format.
            doc["ticks_total"] = self.ticks_total
            doc["cpu_ticks"] = [
                {"user": self.cpu_ticks_user[c],
                 "kernel": self.cpu_ticks_kernel[c],
                 "idle": self.cpu_ticks_idle[c]}
                for c in range(self.nproc)
            ]
        return doc


class ClocksourceWatchdog:
    """Linux-style clocksource cross-check with trust-graded intervals.

    Every ``check_every_ticks`` sampled jiffies, compare the elapsed time
    the TSC clocksource reports against what the jiffy counter reports for
    the same window.  Relative skew at or above ``unstable_skew`` marks the
    TSC unstable — permanently, as Linux does — and timekeeping falls back
    to the jiffies clocksource; skew at or above ``degraded_skew``, any
    caught-up or late tick, or running on the fallback merely degrades the
    window.  Each check closes one :class:`ClockInterval` whose
    ``uncertainty_ns`` bounds how far metered CPU time inside the window
    can be off.

    SMP note (audited for PR 6): the watchdog runs on the timekeeping CPU
    only (CPU 0), like Linux's, because its arithmetic cross-checks the
    *global* jiffy counter — which only CPU 0 advances — against CPU 0's
    TSC.  The kernel guarantees this by invoking ``on_tick``/
    ``note_caught_up`` exclusively from CPU 0's timer interrupt.
    """

    def __init__(self, cpu: "CPU", clock: "Clock", timekeeper: TimeKeeper,
                 tick_ns: int, timer: Optional["TimerDevice"] = None,
                 check_every_ticks: int = 8,
                 degraded_skew: float = 0.02,
                 unstable_skew: float = 0.10,
                 cpu_index: int = 0) -> None:
        if check_every_ticks <= 0:
            raise ValueError("check_every_ticks must be positive")
        if not 0 < degraded_skew <= unstable_skew:
            raise ValueError("need 0 < degraded_skew <= unstable_skew")
        self.cpu = cpu
        self.clock = clock
        self.timekeeper = timekeeper
        self.tick_ns = tick_ns
        self.timer = timer
        self.check_every_ticks = check_every_ticks
        self.degraded_skew = degraded_skew
        self.unstable_skew = unstable_skew

        #: Which CPU's TSC this watchdog instance monitors (the
        #: timekeeping CPU in practice; recorded so stats can say *whose*
        #: clocksource tripped the latch).
        self.cpu_index = cpu_index
        self.clocksource = "tsc"
        self.unstable = False
        #: CPU index whose cross-check tripped the unstable latch; None
        #: while the clocksource is still trusted.
        self.unstable_cpu: Optional[int] = None
        self.flagged_at_jiffy: Optional[int] = None
        self.checks = 0
        self.intervals: List[ClockInterval] = []

        self._last_check_ns = clock.now
        self._last_jiffies = timekeeper.jiffies
        self._last_tsc_ns = cpu.cycles_to_ns(cpu.wall_tsc(clock.now))
        self._last_delayed = timer.ticks_delayed if timer is not None else 0
        self._window_caught_up = 0

    # -- hooks (called by Kernel._timer_irq) -------------------------------

    def note_caught_up(self, jiffies: int) -> None:
        """Lost-tick compensation replayed ``jiffies`` missed jiffies."""
        self._window_caught_up += jiffies

    def on_tick(self, now_ns: int) -> None:
        """Called after each sampled jiffy; runs a check when the window
        is full."""
        if (self.timekeeper.jiffies - self._last_jiffies
                >= self.check_every_ticks):
            self._check(now_ns)

    def finalize(self, now_ns: int) -> None:
        """Close the trailing partial window (end of experiment)."""
        if self.timekeeper.jiffies > self._last_jiffies:
            self._check(now_ns)

    # -- the cross-check ---------------------------------------------------

    def _check(self, now_ns: int) -> None:
        self.checks += 1
        jiffies = self.timekeeper.jiffies - self._last_jiffies
        jiffy_elapsed_ns = jiffies * self.tick_ns
        tsc_ns = self.cpu.cycles_to_ns(self.cpu.wall_tsc(now_ns))
        tsc_elapsed_ns = tsc_ns - self._last_tsc_ns
        skew_ns = tsc_elapsed_ns - jiffy_elapsed_ns
        skew_frac = abs(skew_ns) / jiffy_elapsed_ns if jiffy_elapsed_ns else 0.0

        caught_up = self._window_caught_up
        if self.timer is not None:
            delayed = self.timer.ticks_delayed - self._last_delayed
        else:
            delayed = 0

        if skew_frac >= self.unstable_skew and not self.unstable:
            # First failed cross-check: mark the clocksource unstable and
            # fall back to the coarse-but-honest one, as
            # clocksource_mark_unstable() does.  The interval that caught
            # the lie is the one branded UNTRUSTED.
            self.unstable = True
            self.unstable_cpu = self.cpu_index
            self.clocksource = "jiffies"
            self.flagged_at_jiffy = self.timekeeper.jiffies
            trust = TrustLevel.UNTRUSTED
        elif self.unstable:
            # Running on the fallback clocksource: stable but coarse.
            trust = TrustLevel.DEGRADED
        elif (caught_up or delayed or skew_frac >= self.degraded_skew):
            trust = TrustLevel.DEGRADED
        else:
            trust = TrustLevel.TRUSTED

        uncertainty = (caught_up + delayed) * self.tick_ns
        if trust is not TrustLevel.TRUSTED:
            uncertainty += abs(skew_ns)

        self.intervals.append(ClockInterval(
            start_ns=self._last_check_ns, end_ns=now_ns, jiffies=jiffies,
            caught_up=caught_up, delayed=delayed, skew_ns=skew_ns,
            trust=trust, uncertainty_ns=uncertainty))

        self._last_check_ns = now_ns
        self._last_jiffies = self.timekeeper.jiffies
        self._last_tsc_ns = tsc_ns
        self._last_delayed += delayed
        self._window_caught_up = 0

    # -- reporting ---------------------------------------------------------

    def trust_counts(self) -> Dict[str, int]:
        counts = {level.value: 0 for level in TrustLevel}
        for interval in self.intervals:
            counts[interval.trust.value] += 1
        return counts

    def total_uncertainty_ns(self) -> int:
        return sum(i.uncertainty_ns for i in self.intervals)

    def worst_trust(self) -> TrustLevel:
        worst = TrustLevel.TRUSTED
        for interval in self.intervals:
            if TRUST_SEVERITY[interval.trust] > TRUST_SEVERITY[worst]:
                worst = interval.trust
        return worst

    def summary(self) -> Dict[str, Any]:
        return {
            "clocksource": self.clocksource,
            "unstable": self.unstable,
            "unstable_cpu": self.unstable_cpu,
            "flagged_at_jiffy": self.flagged_at_jiffy,
            "checks": self.checks,
            "intervals": len(self.intervals),
            "trust_counts": self.trust_counts(),
            "uncertainty_ns": self.total_uncertainty_ns(),
            "jiffies_caught_up": self.timekeeper.jiffies_caught_up,
        }
