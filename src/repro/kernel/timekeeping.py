"""Jiffies and tick bookkeeping.

Thin by design: the tick's *accounting* action lives in the accounting
scheme and its *scheduling* action in the scheduler; this module only keeps
the counters that a real kernel's timekeeping code would (jiffies, ticks
observed per task state) so tests and reports can assert on them.
"""

from __future__ import annotations



class TimeKeeper:
    """Tracks jiffies and tick statistics."""

    def __init__(self, tick_ns: int) -> None:
        self.tick_ns = tick_ns
        self.jiffies = 0
        self.ticks_user = 0
        self.ticks_kernel = 0
        self.ticks_idle = 0
        #: Involuntary-wait time reported by the hypervisor (ns the vCPU was
        #: runnable but descheduled) — the /proc/stat "steal" column.  Zero
        #: on bare metal; a hypervisor injects it via :meth:`account_steal`.
        self.steal_ns = 0

    def tick(self, running: bool, user_mode: bool) -> None:
        self.jiffies += 1
        if not running:
            self.ticks_idle += 1
        elif user_mode:
            self.ticks_user += 1
        else:
            self.ticks_kernel += 1

    def account_steal(self, ns: int) -> None:
        """Credit ``ns`` of hypervisor-reported steal time (paravirtual
        steal clock, like KVM's MSR_KVM_STEAL_TIME)."""
        if ns < 0:
            raise ValueError(f"steal delta must be >= 0, got {ns}")
        self.steal_ns += ns

    @property
    def uptime_ns(self) -> int:
        return self.jiffies * self.tick_ns

    def snapshot(self) -> dict:
        return {
            "jiffies": self.jiffies,
            "user": self.ticks_user,
            "kernel": self.ticks_kernel,
            "idle": self.ticks_idle,
            "steal_ns": self.steal_ns,
        }
