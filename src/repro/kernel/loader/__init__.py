"""Executable loading and dynamic linking."""

from .library import SharedLibrary
from .registry import LibraryRegistry, parse_ld_preload
from .linker import LinkMap, build_link_map, process_body

__all__ = [
    "SharedLibrary",
    "LibraryRegistry",
    "parse_ld_preload",
    "LinkMap",
    "build_link_map",
    "process_body",
]
