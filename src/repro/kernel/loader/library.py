"""Shared-library objects.

A :class:`SharedLibrary` is the simulator's ``.so``: named guest functions,
optional constructor/destructor, and a provenance that labels every cycle
its code burns.  The paper's §IV-A2 attacks tamper with exactly these parts:
the constructor/destructor (run by the loader before ``main`` / after
``exit``), and the exported functions (interposed via ``LD_PRELOAD``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from ...errors import SimulationError
from ...programs.base import GuestFunction
from ...programs.ops import Provenance


def code_identity(factory) -> str:
    """Stable identity of a guest function's code, for measurement.

    Hashing a real ``.so`` would capture both instructions and embedded
    constants; the closest analogue for generator factories is the code
    object's location plus the closure's constant contents (so two payloads
    built from one factory with different parameters measure differently).
    """
    code = factory.__code__
    parts = [code.co_filename, code.co_name, str(code.co_firstlineno)]
    closure = getattr(factory, "__closure__", None)
    if closure:
        for cell in closure:
            try:
                parts.append(repr(cell.cell_contents)[:80])
            except ValueError:  # pragma: no cover - empty cell
                parts.append("<empty>")
    return ":".join(parts)


class SharedLibrary:
    """One shared object in the simulated filesystem."""

    def __init__(self, name: str,
                 symbols: Optional[Dict[str, GuestFunction]] = None,
                 constructor: Optional[GuestFunction] = None,
                 destructor: Optional[GuestFunction] = None,
                 provenance: Provenance = Provenance.LIB,
                 version: str = "1.0") -> None:
        self.name = name
        self.symbols: Dict[str, GuestFunction] = dict(symbols or {})
        self.constructor = constructor
        self.destructor = destructor
        self.provenance = provenance
        self.version = version

    def add_symbol(self, symbol: str, fn: GuestFunction) -> None:
        if symbol in self.symbols:
            raise SimulationError(
                f"symbol {symbol!r} already defined in {self.name}")
        self.symbols[symbol] = fn

    def provides(self, symbol: str) -> bool:
        return symbol in self.symbols

    @property
    def relocation_count(self) -> int:
        """Number of symbols the linker must relocate when loading."""
        return len(self.symbols)

    def text_digest(self) -> str:
        """Measurement of the library's code identity, for attestation.

        Hashes the identities of every function's code object, so swapping
        a genuine function for an interposed one — or adding a constructor —
        changes the digest, as hashing a real ``.so`` would.
        """
        hasher = hashlib.sha256()
        hasher.update(f"{self.name}:{self.version}".encode("utf-8"))
        parts = []
        for symbol in sorted(self.symbols):
            parts.append(f"{symbol}={code_identity(self.symbols[symbol].factory)}")
        for label, fn in (("ctor", self.constructor), ("dtor", self.destructor)):
            if fn is not None:
                parts.append(f"{label}={code_identity(fn.factory)}")
        hasher.update("|".join(parts).encode("utf-8"))
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return (f"SharedLibrary({self.name!r}, {len(self.symbols)} symbols, "
                f"{self.provenance.value})")
