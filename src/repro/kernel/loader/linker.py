"""The dynamic linker: link maps, symbol interposition, process bodies.

Symbol resolution walks the link map in order, ``LD_PRELOAD`` entries
first — which is why preloading a library that exports ``malloc`` silently
interposes every ``malloc`` call (paper §V-B2).  All linker work (base
setup, per-library relocation) executes in *user mode inside the process*,
so it is billed to the process: the paper's §III-C observation that the
launch-phase "auxiliary subroutines, like the dynamic linking, are billed
to the process's account".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from ...config import CostModel
from ...errors import FileNotFound, SimulationError
from ...programs.base import GuestContext, GuestFunction, Program
from ...programs.ops import Compute, Invoke, Provenance, Syscall
from .library import SharedLibrary
from .registry import LibraryRegistry, parse_ld_preload


class LinkMap:
    """Ordered list of loaded libraries for one process."""

    def __init__(self, libs: List[SharedLibrary]) -> None:
        self._libs: List[SharedLibrary] = list(libs)

    @property
    def libs(self) -> List[SharedLibrary]:
        return list(self._libs)

    def append(self, lib: SharedLibrary) -> None:
        """dlopen: add a library at the end of the search order."""
        self._libs.append(lib)

    def remove(self, lib: SharedLibrary) -> None:
        """dlclose: drop a library from the map."""
        try:
            self._libs.remove(lib)
        except ValueError:
            raise SimulationError(f"{lib.name} not in link map") from None

    def resolve(self, symbol: str) -> Tuple[SharedLibrary, GuestFunction]:
        """First definition of ``symbol`` in search order."""
        for lib in self._libs:
            fn = lib.symbols.get(symbol)
            if fn is not None:
                return lib, fn
        raise FileNotFound(f"undefined symbol {symbol!r}")

    def resolve_after(self, symbol: str,
                      after: Optional[SharedLibrary]) -> Tuple[SharedLibrary, GuestFunction]:
        """RTLD_NEXT: the next definition after library ``after``."""
        seen_after = after is None
        for lib in self._libs:
            if not seen_after:
                if lib is after:
                    seen_after = True
                continue
            fn = lib.symbols.get(symbol)
            if fn is not None:
                return lib, fn
        raise FileNotFound(f"no next definition of {symbol!r}")

    def __contains__(self, lib: SharedLibrary) -> bool:
        return lib in self._libs

    def __iter__(self) -> Iterator[SharedLibrary]:
        return iter(self._libs)

    def __len__(self) -> int:
        return len(self._libs)


def build_link_map(program: Program, env: dict,
                   registry: LibraryRegistry) -> LinkMap:
    """Resolve ``LD_PRELOAD`` plus the program's NEEDED list, in ld.so order."""
    names: List[str] = []
    preload = env.get("LD_PRELOAD", "")
    if preload:
        names.extend(parse_ld_preload(preload))
    for needed in program.needed_libs:
        if needed not in names:
            names.append(needed)
    return LinkMap([registry.lookup(name) for name in names])


def _relocation_work(lib: SharedLibrary, costs: CostModel) -> GuestFunction:
    """User-mode ld.so work for loading one library.

    Attributed to the library's provenance so the oracle can bill the
    loading of an attacker-installed preload to the attack.
    """
    cycles = (costs.linker_per_library_cycles
              + lib.relocation_count * costs.linker_per_symbol_cycles)

    def body(ctx: GuestContext):
        yield Compute(cycles)
        return None

    return GuestFunction(f"ld.so[{lib.name}]", body, lib.provenance)


def _linker_base_work(costs: CostModel) -> GuestFunction:
    def body(ctx: GuestContext):
        yield Compute(costs.linker_base_cycles)
        return None

    return GuestFunction("ld.so[base]", body, Provenance.LIB)


def load_library_ops(lib: SharedLibrary, costs: CostModel):
    """Ops that perform a runtime (dlopen-style) load of ``lib``."""
    ops = [Invoke(_relocation_work(lib, costs))]
    if lib.constructor is not None:
        ops.append(Invoke(lib.constructor))
    return ops


def unload_library_ops(lib: SharedLibrary):
    """Ops that perform a dlclose-style unload of ``lib``."""
    if lib.destructor is not None:
        return [Invoke(lib.destructor)]
    return []


def process_body(ctx: GuestContext, program: Program, link_map: LinkMap,
                 costs: CostModel):
    """The root generator of a freshly exec'd process.

    Mirrors the paper's Fig. 2 process life span: dynamic linking, library
    constructors, ``main()``, library destructors, ``exit()`` — with every
    phase billed to the process.
    """
    yield Invoke(_linker_base_work(costs))
    for lib in link_map:
        yield Invoke(_relocation_work(lib, costs))
    for lib in link_map:
        if lib.constructor is not None:
            yield Invoke(lib.constructor)
    # argv travels via ctx.argv, matching main(ctx) signatures.
    exit_code = yield Invoke(program.main)
    for lib in reversed(list(link_map)):
        if lib.destructor is not None:
            yield Invoke(lib.destructor)
    code = exit_code if isinstance(exit_code, int) else 0
    yield Syscall("exit", (code,))
