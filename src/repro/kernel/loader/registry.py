"""The library "filesystem": where the dynamic linker finds shared objects.

The server controls this registry — that is the paper's whole point.  A
dishonest provider installs a malicious library and points ``LD_PRELOAD``
at it; the user's program cannot tell.
"""

from __future__ import annotations

from typing import Dict, List

from ...errors import FileNotFound, SimulationError
from .library import SharedLibrary


def parse_ld_preload(value: str) -> List[str]:
    """Split an ``LD_PRELOAD`` value into library names.

    Accepts both colon- and space-separated lists, like glibc's ld.so.
    """
    names: List[str] = []
    for chunk in value.replace(":", " ").split():
        if chunk and chunk not in names:
            names.append(chunk)
    return names


class LibraryRegistry:
    """Name → SharedLibrary mapping (the ld.so search path)."""

    def __init__(self) -> None:
        self._libs: Dict[str, SharedLibrary] = {}

    def install(self, lib: SharedLibrary, replace: bool = False) -> None:
        """Add a library; ``replace=True`` models overwriting the file."""
        if lib.name in self._libs and not replace:
            raise SimulationError(
                f"library {lib.name!r} already installed "
                f"(pass replace=True to overwrite)")
        self._libs[lib.name] = lib

    def remove(self, name: str) -> None:
        if name not in self._libs:
            raise FileNotFound(f"no library {name!r}")
        del self._libs[name]

    def lookup(self, name: str) -> SharedLibrary:
        try:
            return self._libs[name]
        except KeyError:
            raise FileNotFound(f"shared library {name!r} not found") from None

    def has(self, name: str) -> bool:
        return name in self._libs

    def names(self) -> List[str]:
        return sorted(self._libs)

    def __len__(self) -> int:
        return len(self._libs)
