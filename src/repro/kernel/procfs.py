"""procfs-style introspection of a running machine.

Read-only views mirroring the /proc files an operator (or a suspicious
customer with shell access) would consult: per-task stat lines, meminfo,
interrupt counts and a ``top``-like snapshot.  Everything here reads
kernel state directly — it is host-side tooling, not guest-visible (guests
use the ``proc_stat``/``proc_threads`` syscalls).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from .process import TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel

#: /proc/<pid>/stat state letters, mapped from simulator states.
_STATE_LETTERS = {
    TaskState.RUNNING: "R",
    TaskState.READY: "R",
    TaskState.WAITING: "S",
    TaskState.STOPPED: "T",
    TaskState.ZOMBIE: "Z",
    TaskState.DEAD: "X",
}


def stat(kernel: "Kernel", pid: int) -> Dict[str, object]:
    """The /proc/<pid>/stat analogue for one task.

    When the fault layer installed a :class:`~repro.faults.StaleProcfs`
    (``kernel.procfs_fault``), reads within the staleness window return the
    cached snapshot — the "observer sees old numbers" failure mode.
    """
    fault = kernel.procfs_fault
    if fault is not None:
        return fault.cached(("stat", pid), kernel.clock.now,
                            lambda: _stat_fresh(kernel, pid))
    return _stat_fresh(kernel, pid)


def _stat_fresh(kernel: "Kernel", pid: int) -> Dict[str, object]:
    task = kernel.task_by_pid(pid)
    if task is None:
        raise KeyError(f"no such pid {pid}")
    usage = kernel.accounting.usage(task)
    return {
        "pid": task.pid,
        "tgid": task.tgid,
        "comm": task.name,
        "state": _STATE_LETTERS[task.state],
        "ppid": task.parent.pid if task.parent else 0,
        "nice": task.nice,
        "utime_ns": usage.utime_ns,
        "stime_ns": usage.stime_ns,
        "cutime_ns": task.acct_cutime_ns,
        "cstime_ns": task.acct_cstime_ns,
        "minflt": task.minor_faults,
        "majflt": task.major_faults,
        "nvcsw": task.voluntary_switches,
        "nivcsw": task.involuntary_switches,
        "rss_pages": task.mm.rss if task.mm else 0,
        "uid": task.uid,
    }


def stat_all(kernel: "Kernel", include_dead: bool = False) -> List[Dict[str, object]]:
    rows = []
    for pid in sorted(kernel.tasks):
        task = kernel.tasks[pid]
        if not include_dead and task.state is TaskState.DEAD:
            continue
        rows.append(stat(kernel, pid))
    return rows


def meminfo(kernel: "Kernel") -> Dict[str, int]:
    """The /proc/meminfo analogue (values in pages)."""
    phys = kernel.mm.phys
    return {
        "mem_total": phys.total_frames,
        "mem_free": phys.free_frames,
        "mem_used": phys.used_frames,
        "kernel_reserved": phys.kernel_reserved,
        "swap_total": kernel.mm.swap_capacity,
        "swap_used": kernel.mm.swap_used,
        "swap_ins": kernel.mm.swap_ins,
        "swap_outs": kernel.mm.swap_outs,
        "oom_kills": kernel.mm.oom_kills,
    }


def interrupts(kernel: "Kernel") -> Dict[int, int]:
    """The /proc/interrupts analogue: per-line delivery counts."""
    return dict(kernel.pic.counts)


def uptime(kernel: "Kernel") -> Dict[str, float]:
    """Uptime and tick distribution (subject to StaleProcfs, like stat)."""
    fault = kernel.procfs_fault
    if fault is not None:
        return fault.cached(("uptime",), kernel.clock.now,
                            lambda: _uptime_fresh(kernel))
    return _uptime_fresh(kernel)


def _uptime_fresh(kernel: "Kernel") -> Dict[str, float]:
    tk = kernel.timekeeper
    return {
        "uptime_s": kernel.clock.now / 1e9,
        "jiffies": tk.jiffies,
        "user_ticks": tk.ticks_user,
        "kernel_ticks": tk.ticks_kernel,
        "idle_ticks": tk.ticks_idle,
        "steal_s": tk.steal_ns / 1e9,
    }


def cpu_stat(kernel: "Kernel") -> Dict[str, Dict[str, int]]:
    """The /proc/stat cpu-line analogue: the aggregate ``cpu`` row plus
    one ``cpuN`` row per CPU, each holding user/system/idle tick counts.
    Like the real file, a uniprocessor still shows ``cpu0`` (identical to
    the aggregate).  Subject to StaleProcfs, like stat/uptime."""
    fault = kernel.procfs_fault
    if fault is not None:
        return fault.cached(("cpu_stat",), kernel.clock.now,
                            lambda: _cpu_stat_fresh(kernel))
    return _cpu_stat_fresh(kernel)


def _cpu_stat_fresh(kernel: "Kernel") -> Dict[str, Dict[str, int]]:
    tk = kernel.timekeeper
    rows = {"cpu": {"user": tk.ticks_user, "system": tk.ticks_kernel,
                    "idle": tk.ticks_idle}}
    if kernel.nproc > 1:
        for c in range(kernel.nproc):
            rows[f"cpu{c}"] = {"user": tk.cpu_ticks_user[c],
                               "system": tk.cpu_ticks_kernel[c],
                               "idle": tk.cpu_ticks_idle[c]}
    else:
        rows["cpu0"] = dict(rows["cpu"])
    return rows


def top(kernel: "Kernel", limit: Optional[int] = None) -> str:
    """A ``top``-style snapshot, sorted by total CPU time."""
    rows = stat_all(kernel)
    rows.sort(key=lambda r: r["utime_ns"] + r["stime_ns"], reverse=True)
    if limit is not None:
        rows = rows[:limit]
    mem = meminfo(kernel)
    steal = kernel.timekeeper.steal_ns
    steal_note = f"  steal: {steal / 1e9:.3f}s" if steal else ""
    lines = [
        f"up {kernel.clock.now / 1e9:9.3f}s  "
        f"tasks: {len(kernel.alive_tasks())} alive  "
        f"mem: {mem['mem_used']}/{mem['mem_total']}p used  "
        f"swap: {mem['swap_used']}p{steal_note}",
        f"{'PID':>5} {'S':>1} {'NI':>3} {'UTIME':>9} {'STIME':>9} "
        f"{'RSS':>6} {'MAJFL':>6} COMMAND",
    ]
    for row in rows:
        lines.append(
            f"{row['pid']:>5} {row['state']:>1} {row['nice']:>3} "
            f"{row['utime_ns'] / 1e9:>8.3f}s {row['stime_ns'] / 1e9:>8.3f}s "
            f"{row['rss_pages']:>6} {row['majflt']:>6} {row['comm']}")
    return "\n".join(lines)
