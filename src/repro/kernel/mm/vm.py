"""Address spaces, regions and page-table entries.

A task's ``mm`` is an :class:`AddressSpace`; threads of one group share it
(reference-counted).  The layout mirrors a classic 32-bit Linux process:

* static data at ``DATA_BASE`` (the loader binds program symbols here);
* the brk heap at ``HEAP_BASE`` growing upward;
* ``mmap`` regions carved from ``MMAP_BASE`` upward;
* a small stack at ``STACK_BASE``.

Pages are demand-mapped: a region reserves virtual pages, the first touch
minor-faults a frame in, reclaim may later push it to swap.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ...errors import BadAddress, InvalidArgument, OutOfMemory, SimulationError

DATA_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
HEAP_LIMIT = 0x3000_0000
MMAP_BASE = 0x4000_0000
MMAP_LIMIT = 0x7000_0000
STACK_BASE = 0x7FF0_0000
STACK_PAGES = 16


class PteState(enum.Enum):
    """Where a virtual page's contents live."""

    #: Reserved by a region but never touched (zero-fill pending).
    NOT_PRESENT = "not-present"
    #: Mapped to a physical frame.
    PRESENT = "present"
    #: Evicted to a swap slot.
    SWAPPED = "swapped"


class PTE:
    """A page-table entry."""

    __slots__ = ("state", "pfn")

    def __init__(self) -> None:
        self.state = PteState.NOT_PRESENT
        self.pfn: Optional[int] = None

    def __repr__(self) -> str:
        return f"PTE({self.state.value}, pfn={self.pfn})"


class VMRegion:
    """A contiguous range of reserved virtual pages."""

    __slots__ = ("start", "npages", "name")

    def __init__(self, start: int, npages: int, name: str) -> None:
        self.start = start
        self.npages = npages
        self.name = name

    def end(self, page_size: int) -> int:
        return self.start + self.npages * page_size

    def contains(self, vaddr: int, page_size: int) -> bool:
        return self.start <= vaddr < self.end(page_size)

    def __repr__(self) -> str:
        return f"VMRegion({self.name!r}, 0x{self.start:x}, {self.npages}p)"


class AddressSpace:
    """Page table plus region list for one thread group."""

    def __init__(self, asid: int, page_size: int) -> None:
        self.asid = asid
        self.page_size = page_size
        self.regions: List[VMRegion] = []
        self.ptes: Dict[int, PTE] = {}
        #: Thread-group reference count.
        self.users = 1
        #: Resident pages.
        self.rss = 0
        #: Pages currently on swap.
        self.swapped_pages = 0
        self._brk = HEAP_BASE
        self._mmap_cursor = MMAP_BASE
        # Every space gets a stack region.
        self.add_region(STACK_BASE, STACK_PAGES, "stack")

    # -- layout ----------------------------------------------------------------

    def vpn_of(self, vaddr: int) -> int:
        return vaddr // self.page_size

    def add_region(self, start: int, npages: int, name: str) -> VMRegion:
        if start % self.page_size:
            raise InvalidArgument(f"region start 0x{start:x} not page-aligned")
        if npages <= 0:
            raise InvalidArgument("region must span at least one page")
        new_end = start + npages * self.page_size
        for region in self.regions:
            if start < region.end(self.page_size) and region.start < new_end:
                raise SimulationError(
                    f"region {name!r} overlaps {region.name!r}")
        region = VMRegion(start, npages, name)
        self.regions.append(region)
        return region

    def region_at(self, vaddr: int) -> Optional[VMRegion]:
        for region in self.regions:
            if region.contains(vaddr, self.page_size):
                return region
        return None

    def brk(self, increment_bytes: int) -> int:
        """Grow (or query, with 0) the heap; returns the new break."""
        if increment_bytes == 0:
            return self._brk
        if increment_bytes < 0:
            raise InvalidArgument("heap shrinking is not modelled")
        new_brk = self._brk + increment_bytes
        if new_brk > HEAP_LIMIT:
            raise OutOfMemory("brk beyond heap limit")
        start = _page_ceil(self._brk, self.page_size)
        end = _page_ceil(new_brk, self.page_size)
        if end > start:
            self.add_region(start, (end - start) // self.page_size, "heap")
        self._brk = new_brk
        return self._brk

    def mmap(self, npages: int, name: str = "mmap") -> int:
        """Reserve an anonymous mapping; returns its start address."""
        if npages <= 0:
            raise InvalidArgument("mmap of zero pages")
        start = self._mmap_cursor
        if start + npages * self.page_size > MMAP_LIMIT:
            raise OutOfMemory("mmap address space exhausted")
        region = self.add_region(start, npages, name)
        self._mmap_cursor = region.end(self.page_size)
        return start

    def munmap(self, start: int) -> VMRegion:
        """Drop the region starting at ``start``; caller releases frames."""
        for i, region in enumerate(self.regions):
            if region.start == start and region.name != "stack":
                del self.regions[i]
                return region
        raise InvalidArgument(f"no region starts at 0x{start:x}")

    # -- page table --------------------------------------------------------------

    def pte(self, vpn: int) -> PTE:
        entry = self.ptes.get(vpn)
        if entry is None:
            entry = PTE()
            self.ptes[vpn] = entry
        return entry

    def check_vaddr(self, vaddr: int) -> None:
        if self.region_at(vaddr) is None:
            raise BadAddress(f"access to unmapped address 0x{vaddr:x}")

    def resident_vpns(self) -> List[int]:
        return [vpn for vpn, pte in self.ptes.items()
                if pte.state is PteState.PRESENT]


def _page_ceil(addr: int, page_size: int) -> int:
    return (addr + page_size - 1) // page_size * page_size
