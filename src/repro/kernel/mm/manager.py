"""The memory manager: frame allocation, reclaim, swap accounting, OOM.

The exception-flooding attack (paper §IV-B4) works by exhausting physical
memory so the victim's pages are continually evicted and every touch becomes
a major fault (swap-in I/O plus handler time, billed as stime).  The paper
also notes the natural cap on this attack: push too hard and the kernel's
OOM killer terminates a process.  Both mechanisms are here.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ...config import MemoryConfig
from ...errors import OutOfMemory, SimulationError
from ...hw.memory import Frame, PhysicalMemory
from .vm import AddressSpace, PteState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..process import Task


class FaultKind(enum.Enum):
    """Classification of a memory access."""

    #: Page present; no kernel involvement.
    HIT = "hit"
    #: First touch: zero-fill a fresh frame (no I/O).
    MINOR = "minor"
    #: Page on swap: frame allocation plus disk read.
    MAJOR = "major"
    #: Address outside every region: SIGSEGV.
    SEGV = "segv"


class ReclaimResult:
    """Outcome of making one frame available."""

    __slots__ = ("frame", "wrote_back")

    def __init__(self, frame: Frame, wrote_back: bool) -> None:
        self.frame = frame
        self.wrote_back = wrote_back


class MemoryManager:
    """Owns physical memory and the swap device bookkeeping."""

    def __init__(self, cfg: MemoryConfig) -> None:
        self.cfg = cfg
        self.phys = PhysicalMemory(cfg.total_frames)
        self.swap_capacity = cfg.swap_pages
        self.swap_used = 0
        self._next_asid = 1
        self._spaces: Dict[int, AddressSpace] = {}
        #: Cumulative statistics.
        self.swap_ins = 0
        self.swap_outs = 0
        self.oom_kills = 0
        #: Frames examined by the most recent allocation's direct reclaim;
        #: the fault path charges this to the allocating task.
        self.last_reclaim_scanned = 0
        self.total_reclaim_scanned = 0

    # -- address-space lifecycle ---------------------------------------------

    def create_space(self) -> AddressSpace:
        space = AddressSpace(self._next_asid, self.cfg.page_size)
        self._spaces[space.asid] = space
        self._next_asid += 1
        return space

    def space(self, asid: int) -> AddressSpace:
        return self._spaces[asid]

    def grab_space(self, space: AddressSpace) -> AddressSpace:
        """Share ``space`` with another task (thread creation)."""
        space.users += 1
        return space

    def drop_space(self, space: AddressSpace) -> bool:
        """Release one reference; tear down at zero.  True if torn down."""
        if space.users <= 0:
            raise SimulationError("address space refcount underflow")
        space.users -= 1
        if space.users:
            return False
        for vpn, pte in list(space.ptes.items()):
            if pte.state is PteState.PRESENT and pte.pfn is not None:
                self.phys.release(pte.pfn)
                space.rss -= 1
            elif pte.state is PteState.SWAPPED:
                self.swap_used -= 1
                space.swapped_pages -= 1
        space.ptes.clear()
        del self._spaces[space.asid]
        return True

    # -- access classification --------------------------------------------------

    def classify(self, space: AddressSpace, vaddr: int) -> FaultKind:
        if space.region_at(vaddr) is None:
            return FaultKind.SEGV
        pte = space.ptes.get(space.vpn_of(vaddr))
        if pte is None or pte.state is PteState.NOT_PRESENT:
            return FaultKind.MINOR
        if pte.state is PteState.SWAPPED:
            return FaultKind.MAJOR
        return FaultKind.HIT

    def note_access(self, space: AddressSpace, vaddr: int, write: bool) -> None:
        """Set referenced/dirty bits on a present page (TLB-style)."""
        pte = space.ptes.get(space.vpn_of(vaddr))
        if pte is None or pte.state is not PteState.PRESENT:
            raise SimulationError("note_access on non-present page")
        frame = self.phys.frames[pte.pfn]
        frame.referenced = True
        if write:
            frame.dirty = True

    # -- fault service -------------------------------------------------------------

    def allocate_frame(self, space: AddressSpace, vpn: int) -> Tuple[Frame, bool]:
        """Get a frame for (space, vpn), reclaiming if needed.

        Returns ``(frame, wrote_back)``; ``wrote_back`` reports whether a
        dirty victim page had to be written to swap (extra kernel work and a
        disk write for the caller to charge).  Raises :class:`OutOfMemory`
        when both RAM and swap are exhausted — the caller invokes the OOM
        killer.
        """
        self.last_reclaim_scanned = 0
        frame = self.phys.alloc(space.asid, vpn)
        wrote_back = False
        if frame is None:
            wrote_back = self._evict_one()
            frame = self.phys.alloc(space.asid, vpn)
            if frame is None:
                raise OutOfMemory("no frame after reclaim")
        return frame, wrote_back

    def _evict_one(self) -> bool:
        """Push one victim page to swap; returns True if it was dirty."""
        victim, scanned = self.phys.clock_scan()
        self.last_reclaim_scanned += scanned
        self.total_reclaim_scanned += scanned
        if victim is None:
            raise OutOfMemory("no reclaimable frame")
        if self.swap_used >= self.swap_capacity:
            raise OutOfMemory("swap exhausted")
        owner = self._spaces.get(victim.owner_asid)
        if owner is None:
            raise SimulationError("victim frame owned by unknown space")
        pte = owner.ptes.get(victim.vpn)
        if pte is None or pte.pfn != victim.pfn:
            raise SimulationError("rmap/page-table mismatch during eviction")
        dirty = victim.dirty
        pte.state = PteState.SWAPPED
        pte.pfn = None
        owner.rss -= 1
        owner.swapped_pages += 1
        self.swap_used += 1
        self.swap_outs += 1
        self.phys.release(victim.pfn)
        return dirty

    def complete_minor_fault(self, space: AddressSpace, vaddr: int) -> bool:
        """Map a zero page at ``vaddr``.  Returns wrote_back (dirty evict)."""
        vpn = space.vpn_of(vaddr)
        frame, wrote_back = self.allocate_frame(space, vpn)
        pte = space.pte(vpn)
        pte.state = PteState.PRESENT
        pte.pfn = frame.pfn
        space.rss += 1
        return wrote_back

    def begin_major_fault(self, space: AddressSpace, vaddr: int) -> Tuple[Frame, bool]:
        """Allocate the target frame for a swap-in (before the disk read)."""
        vpn = space.vpn_of(vaddr)
        return self.allocate_frame(space, vpn)

    def complete_major_fault(self, space: AddressSpace, vaddr: int,
                             frame: Frame) -> None:
        """Finish a swap-in after the disk read completed."""
        vpn = space.vpn_of(vaddr)
        pte = space.pte(vpn)
        if pte.state is not PteState.SWAPPED:
            # The page may have been OOM-torn-down while we slept; only
            # swapped pages can complete a swap-in.
            raise SimulationError("major fault completion on non-swapped page")
        pte.state = PteState.PRESENT
        pte.pfn = frame.pfn
        space.rss += 1
        space.swapped_pages -= 1
        self.swap_used -= 1
        self.swap_ins += 1

    def release_region_frames(self, space: AddressSpace, start: int,
                              npages: int) -> None:
        """Free frames and swap slots backing a munmapped region."""
        first_vpn = start // self.cfg.page_size
        for vpn in range(first_vpn, first_vpn + npages):
            pte = space.ptes.pop(vpn, None)
            if pte is None:
                continue
            if pte.state is PteState.PRESENT and pte.pfn is not None:
                self.phys.release(pte.pfn)
                space.rss -= 1
            elif pte.state is PteState.SWAPPED:
                self.swap_used -= 1
                space.swapped_pages -= 1

    # -- OOM ------------------------------------------------------------------------

    def pick_oom_victim(self, tasks: List["Task"]) -> Optional["Task"]:
        """Linux-style badness: kill the largest resident consumer."""
        best: Optional["Task"] = None
        best_rss = -1
        for task in tasks:
            if not task.alive or task.mm is None:
                continue
            if task.mm.rss > best_rss:
                best = task
                best_rss = task.mm.rss
        if best is not None:
            self.oom_kills += 1
        return best

    # -- reporting --------------------------------------------------------------------

    def memory_pressure(self) -> float:
        """Fraction of non-reserved RAM currently in use."""
        usable = self.phys.total_frames - self.phys.kernel_reserved
        return self.phys.used_frames / usable if usable else 1.0
