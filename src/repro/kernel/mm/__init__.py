"""Virtual memory: address spaces, demand paging, reclaim, swap, OOM."""

from .vm import AddressSpace, PTE, PteState, VMRegion
from .manager import FaultKind, MemoryManager

__all__ = [
    "AddressSpace",
    "PTE",
    "PteState",
    "VMRegion",
    "FaultKind",
    "MemoryManager",
]
