"""Task control blocks.

A :class:`Task` is a schedulable entity — Linux-style, threads are tasks
that share an address space (``mm``) and a thread-group id (``tgid``).  The
accounting fields live directly on the task because that is where Linux
keeps them (``task_struct.utime/stime``), and because the paper's attacks
are precisely about *which task's fields* a given slice of time lands in.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..hw.cpu import DebugRegisters
from ..programs.ops import Provenance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..programs.base import GuestContext
    from .engine import ExecState
    from .mm.vm import AddressSpace


class TaskState(enum.Enum):
    """Scheduler-visible task states."""

    #: Currently executing on the CPU.
    RUNNING = "running"
    #: Runnable, waiting in the run queue.
    READY = "ready"
    #: Blocked on an event (child exit, disk I/O, sleep...).
    WAITING = "waiting"
    #: Stopped by SIGSTOP or a ptrace traced-stop.
    STOPPED = "stopped"
    #: Exited, waiting for the parent to reap it.
    ZOMBIE = "zombie"
    #: Fully reaped; the PCB is inert.
    DEAD = "dead"


class Task:
    """One schedulable entity (process or thread)."""

    #: Slotted: task attributes are read on every charge, schedule and
    #: signal delivery, and a run touches them hundreds of millions of
    #: times.  ``_pending_wake`` is assigned lazily by Kernel.wake and
    #: deleted on consumption, so it must be declared here.
    __slots__ = (
        "pid", "tgid", "name", "uid", "nice", "state",
        "parent", "children", "exit_code", "exit_signal",
        "mm", "guest_ctx", "exec_state", "env",
        "debug", "tracer", "tracees", "stop_signal", "stop_pending_report",
        "pending_signals", "wait_channel", "syscall_result",
        "acct_utime_ns", "acct_stime_ns", "acct_ticks",
        "acct_cutime_ns", "acct_cstime_ns",
        "minor_faults", "major_faults", "voluntary_switches",
        "involuntary_switches", "debug_exceptions", "signals_received",
        "oracle_ns", "vruntime", "ran_since_pick", "timeslice_ns",
        "last_dispatch_ns", "enqueue_seq", "_pending_wake",
        "cpu", "migrations", "cpus_allowed",
    )

    def __init__(self, pid: int, name: str, uid: int = 1000,
                 nice: int = 0, tgid: Optional[int] = None) -> None:
        self.pid = pid
        self.tgid = tgid if tgid is not None else pid
        self.name = name
        self.uid = uid
        self.nice = nice
        self.state = TaskState.READY

        # Process tree.
        self.parent: Optional["Task"] = None
        self.children: List["Task"] = []
        self.exit_code: Optional[int] = None
        #: Signal that killed the task, if any.
        self.exit_signal: Optional[int] = None

        # Memory and execution.
        self.mm: Optional["AddressSpace"] = None
        self.guest_ctx: Optional["GuestContext"] = None
        self.exec_state: Optional["ExecState"] = None
        #: Per-process environment (LD_PRELOAD lives here).
        self.env: Dict[str, str] = {}

        # Debugging / tracing.
        self.debug = DebugRegisters()
        self.tracer: Optional["Task"] = None
        self.tracees: Set[int] = set()
        #: Set while stopped; holds the signal that caused the stop.
        self.stop_signal: Optional[int] = None
        #: Stop events not yet consumed by a wait() from parent/tracer.
        self.stop_pending_report = False

        # Signals.
        self.pending_signals: List[Tuple[int, Optional[int]]] = []

        # Blocking bookkeeping.
        self.wait_channel: Optional[str] = None
        #: Result to deliver to the task's in-flight syscall when it resumes.
        self.syscall_result: object = None

        # --- accounting (billing view; filled by the active scheme) -------
        self.acct_utime_ns = 0
        self.acct_stime_ns = 0
        self.acct_ticks = 0
        #: Accumulated usage of reaped children (RUSAGE_CHILDREN).
        self.acct_cutime_ns = 0
        self.acct_cstime_ns = 0

        # --- rusage-style counters ----------------------------------------
        self.minor_faults = 0
        self.major_faults = 0
        self.voluntary_switches = 0
        self.involuntary_switches = 0
        self.debug_exceptions = 0
        self.signals_received = 0

        # --- ground-truth oracle -------------------------------------------
        #: Exact ns by (mode-is-user, provenance) — the simulator's omniscient
        #: attribution, unavailable on real hardware.
        self.oracle_ns: Dict[Tuple[bool, Provenance], int] = {}

        # --- scheduler fields ------------------------------------------------
        #: CFS virtual runtime.
        self.vruntime = 0
        #: ns executed since this task was last picked (CFS slice check).
        self.ran_since_pick = 0
        #: O(1)/RR remaining timeslice.
        self.timeslice_ns = 0
        #: Absolute time this task was last dispatched onto the CPU.
        self.last_dispatch_ns = 0
        #: Monotone counter for FIFO tie-breaks inside schedulers.
        self.enqueue_seq = 0

        # --- SMP placement ---------------------------------------------------
        #: Index of the CPU whose run queue owns this task.
        self.cpu = 0
        #: Number of times the task changed CPUs (wake balancing, the load
        #: balancer, or sys_migrate).
        self.migrations = 0
        #: Allowed CPU set (None = any).  sys_migrate pins to the target;
        #: the load balancer never moves a task off its allowed set.
        self.cpus_allowed: Optional[Set[int]] = None

    # ---- convenience -------------------------------------------------------

    @property
    def alive(self) -> bool:
        # Identity comparisons, not tuple membership: this property is hit
        # on every wait/signal/schedule decision.
        state = self.state
        return state is not TaskState.ZOMBIE and state is not TaskState.DEAD

    @property
    def runnable(self) -> bool:
        state = self.state
        return state is TaskState.RUNNING or state is TaskState.READY

    @property
    def is_thread(self) -> bool:
        """True for secondary threads of a thread group."""
        return self.pid != self.tgid

    @property
    def static_prio(self) -> int:
        """Linux static priority: 120 + nice (100..139)."""
        return 120 + self.nice

    def oracle_charge(self, user_mode: bool, provenance: Provenance, ns: int) -> None:
        key = (user_mode, provenance)
        self.oracle_ns[key] = self.oracle_ns.get(key, 0) + ns

    def oracle_total(self, *provenances: Provenance) -> int:
        """Total oracle ns attributed to the given provenances (any mode)."""
        wanted = set(provenances) if provenances else None
        total = 0
        for (_, prov), ns in self.oracle_ns.items():
            if wanted is None or prov in wanted:
                total += ns
        return total

    def post_signal(self, sig: int, sender_pid: Optional[int] = None) -> None:
        """Queue a signal (delivery happens in the kernel's signal path)."""
        self.pending_signals.append((sig, sender_pid))

    def has_pending_signal(self) -> bool:
        return bool(self.pending_signals)

    def __repr__(self) -> str:
        return (f"Task(pid={self.pid}, name={self.name!r}, "
                f"state={self.state.value}, nice={self.nice})")
