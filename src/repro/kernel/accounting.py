"""CPU-time accounting schemes.

The paper's §III-A describes the commodity scheme: at every timer interrupt
the kernel charges one whole jiffy to whatever task is *currently running*,
to ``utime`` or ``stime`` depending on the interrupted CPU mode.  That
sampling design is exactly what the process-scheduling attack exploits, and
charge-to-current interrupt billing is what the interrupt-flooding attack
exploits.

The paper's §VI-B proposes fine-grained metering: TSC-based exact charging
(:class:`TscAccounting`) and process-aware interrupt accounting (Zhang &
West [27]), which bills interrupt-handler time to a system account instead
of the interrupted task.  Both are implemented here so the defense ablation
can run every attack under every scheme.

All schemes expose the same two entry points:

* :meth:`AccountingScheme.charge` — exact attribution of a slice of time,
  called by the execution engine for *every* consumed slice (the tick scheme
  ignores it, except for interrupt-time bookkeeping);
* :meth:`AccountingScheme.on_tick` — the timer-interrupt sampling hook.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..config import MachineConfig
from ..errors import ConfigError
from ..hw.cpu import CPUMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import Task


class ChargeKind(enum.Enum):
    """What a charged slice of time was spent on."""

    #: Identity hash (a C-level slot) — members are singletons, and the
    #: charge path keys per-kind dicts on them millions of times per run.
    __hash__ = object.__hash__

    #: User-mode execution (program, library or injected code).
    USER = "user"
    #: Kernel service on behalf of the task (syscalls, faults, signals).
    SYSCALL = "syscall"
    #: Interrupt-handler execution (may be unrelated to the task).
    IRQ = "irq"
    #: Context-switch/scheduler overhead.
    SWITCH = "switch"


@dataclass
class CpuUsage:
    """What ``getrusage`` reports for one task under a given scheme."""

    utime_ns: int = 0
    stime_ns: int = 0

    @property
    def total_ns(self) -> int:
        return self.utime_ns + self.stime_ns

    @property
    def utime_seconds(self) -> float:
        return self.utime_ns / 1e9

    @property
    def stime_seconds(self) -> float:
        return self.stime_ns / 1e9

    @property
    def total_seconds(self) -> float:
        return self.total_ns / 1e9

    def __add__(self, other: "CpuUsage") -> "CpuUsage":
        return CpuUsage(self.utime_ns + other.utime_ns,
                        self.stime_ns + other.stime_ns)


class AccountingScheme:
    """Interface shared by all accounting schemes."""

    name = "abstract"
    #: True when ``usage`` is derived purely from jiffy sampling, so the
    #: tick identity (billed == per-mode ticks x jiffy, minus diversions)
    #: must hold exactly.  Consumed by the invariant checker.
    tick_sampled = False
    #: True when ``system_ns`` is a tick-resolution approximation (clamped
    #: per jiffy) rather than the exact sum of diverted IRQ nanoseconds.
    tick_sampled_system = False

    def __init__(self, tick_ns: int, process_aware_irq: bool = False) -> None:
        self.tick_ns = tick_ns
        self.process_aware_irq = process_aware_irq
        #: Time the scheme diverted to the "system" account instead of any
        #: task (only non-zero with process-aware interrupt accounting).
        self.system_ns = 0
        #: Ticks that fired while the CPU was idle.
        self.idle_ticks = 0

    def charge(self, task: Optional["Task"], mode: CPUMode, ns: int,
               kind: ChargeKind, cpu: int = 0) -> None:
        raise NotImplementedError

    def on_tick(self, task: Optional["Task"], mode: CPUMode,
                cpu: int = 0) -> None:
        raise NotImplementedError

    def usage(self, task: "Task") -> CpuUsage:
        """The scheme's billing view of ``task`` (what getrusage returns)."""
        raise NotImplementedError

    def audit_view(self, task: "Task") -> Optional[CpuUsage]:
        """The scheme's nanosecond-exact per-task view, when it keeps one.

        The invariant checker compares this against its own shadow ledger.
        Tick sampling keeps no exact view, hence the None default.
        """
        return None

    def billing_gap_ns(self, tasks, busy_ticks: int) -> Optional[int]:
        """Global conservation gap of the billing view, in nanoseconds.

        Zero when the books balance; None when the scheme has no
        closed-form identity (TSC charging is checked per-task via
        :meth:`audit_view` instead).  ``busy_ticks`` is the number of
        jiffies that sampled a running task.
        """
        return None


class TickAccounting(AccountingScheme):
    """The commodity scheme: one whole jiffy to the current task per tick.

    With ``process_aware_irq`` enabled, interrupt-handler time observed
    since the previous tick is deducted from the jiffy and moved to the
    system account — a tick-resolution approximation of Zhang & West's
    process-aware accounting, kept so the defense can be evaluated without
    switching to TSC charging.
    """

    name = "tick"
    tick_sampled = True
    tick_sampled_system = True

    def __init__(self, tick_ns: int, process_aware_irq: bool = False) -> None:
        super().__init__(tick_ns, process_aware_irq)
        #: IRQ-handler ns observed since the previous tick, per CPU: each
        #: CPU's tick only deducts interrupt time that ran on that CPU
        #: (on a uniprocessor this collapses to one key, 0).
        self._irq_ns_since_tick: Dict[int, int] = {}
        #: System-account time diverted on *idle* jiffies.  Idle jiffies
        #: hand out nothing, so this portion of ``system_ns`` sits outside
        #: the busy-tick identity and is subtracted in billing_gap_ns.
        self.idle_diverted_ns = 0

    def charge(self, task: Optional["Task"], mode: CPUMode, ns: int,
               kind: ChargeKind, cpu: int = 0) -> None:
        if kind is ChargeKind.IRQ:
            window = self._irq_ns_since_tick
            window[cpu] = window.get(cpu, 0) + ns

    def on_tick(self, task: Optional["Task"], mode: CPUMode,
                cpu: int = 0) -> None:
        irq_ns = min(self._irq_ns_since_tick.pop(cpu, 0), self.tick_ns)
        if task is None:
            self.idle_ticks += 1
            if self.process_aware_irq and irq_ns:
                # Interrupt time observed during an idle jiffy used to be
                # discarded here (the window was zeroed above before this
                # early return); process-aware accounting must still move
                # it to the system account.
                self.system_ns += irq_ns
                self.idle_diverted_ns += irq_ns
            return
        jiffy = self.tick_ns
        if self.process_aware_irq and irq_ns:
            self.system_ns += irq_ns
            jiffy -= irq_ns
        if mode is CPUMode.USER:
            task.acct_utime_ns += jiffy
        else:
            task.acct_stime_ns += jiffy
        task.acct_ticks += 1

    def usage(self, task: "Task") -> CpuUsage:
        return CpuUsage(task.acct_utime_ns, task.acct_stime_ns)

    def billing_gap_ns(self, tasks, busy_ticks: int) -> int:
        # Every busy jiffy hands out exactly tick_ns, split between the
        # sampled task and (with process-aware IRQ) the system account.
        # Idle-jiffy diversions also land in system_ns but are not backed
        # by a busy tick, hence the idle_diverted_ns correction.
        billed = sum(t.acct_utime_ns + t.acct_stime_ns for t in tasks)
        return (billed + self.system_ns - self.idle_diverted_ns
                - busy_ticks * self.tick_ns)


class TscAccounting(AccountingScheme):
    """Fine-grained metering: exact TSC-derived charging at every boundary.

    Every consumed slice is attributed at nanosecond resolution.  With
    ``process_aware_irq``, interrupt-handler slices go to the system account
    rather than to the task that happened to be running — together these
    neutralise the scheduling and interrupt-flooding attacks (paper §VI-B).
    Ticks still fire but carry no accounting weight.
    """

    name = "tsc"

    def charge(self, task: Optional["Task"], mode: CPUMode, ns: int,
               kind: ChargeKind, cpu: int = 0) -> None:
        # The IRQ diversion must come before the idle check: interrupt
        # time exists whether or not a task was running, and returning on
        # ``task is None`` first would silently drop idle-period IRQ time
        # from the system account.
        if kind is ChargeKind.IRQ and self.process_aware_irq:
            self.system_ns += ns
            return
        if task is None:
            return
        if mode is CPUMode.USER:
            task.acct_utime_ns += ns
        else:
            task.acct_stime_ns += ns

    def on_tick(self, task: Optional["Task"], mode: CPUMode,
                cpu: int = 0) -> None:
        if task is None:
            self.idle_ticks += 1
            return
        task.acct_ticks += 1

    def usage(self, task: "Task") -> CpuUsage:
        return CpuUsage(task.acct_utime_ns, task.acct_stime_ns)

    def audit_view(self, task: "Task") -> CpuUsage:
        # TSC billing *is* the precise view.
        return self.usage(task)


class DualAccounting(AccountingScheme):
    """Bill by ticks, audit by TSC.

    The deployment path §VI-B implies: a provider cannot switch billing
    overnight, but it *can* run fine-grained measurement alongside the
    legacy tick scheme and flag divergence.  ``usage`` reports the legacy
    (billable) view; :meth:`audit_usage` reports the precise view; and
    :meth:`divergence_ns` is the per-task evidence of misattribution —
    large positive divergence on a victim is the fingerprint of the
    scheduling attack.

    Per-task precise values are kept in a side table (``task`` fields hold
    the billing view, as they do on a real kernel).
    """

    name = "dual"
    tick_sampled = True

    def __init__(self, tick_ns: int, process_aware_irq: bool = False) -> None:
        super().__init__(tick_ns, process_aware_irq)
        self._tick = TickAccounting(tick_ns, process_aware_irq)
        self._precise: Dict[int, CpuUsage] = {}

    def charge(self, task, mode: CPUMode, ns: int, kind: ChargeKind,
               cpu: int = 0) -> None:
        self._tick.charge(task, mode, ns, kind, cpu)
        # As in TscAccounting: divert IRQ time before the idle check, so
        # interrupt work during idle periods still reaches the audit-side
        # system account.
        if kind is ChargeKind.IRQ and self.process_aware_irq:
            self.system_ns += ns
            return
        if task is None:
            return
        side = self._precise.setdefault(task.pid, CpuUsage())
        if mode is CPUMode.USER:
            side.utime_ns += ns
        else:
            side.stime_ns += ns

    def on_tick(self, task, mode: CPUMode, cpu: int = 0) -> None:
        self._tick.on_tick(task, mode, cpu)
        if task is None:
            self.idle_ticks += 1

    @property
    def tick_view(self) -> TickAccounting:
        """The inner legacy (billable) scheme — exposed for checkers and
        tests that need its idle-diversion bookkeeping."""
        return self._tick

    def usage(self, task) -> CpuUsage:
        return self._tick.usage(task)

    def audit_usage(self, task) -> CpuUsage:
        side = self._precise.get(task.pid)
        return CpuUsage(side.utime_ns, side.stime_ns) if side else CpuUsage()

    def audit_view(self, task) -> CpuUsage:
        return self.audit_usage(task)

    def billing_gap_ns(self, tasks, busy_ticks: int) -> int:
        # The billable view follows the legacy tick identity (with the
        # inner scheme's own tick-resolution system account).
        return self._tick.billing_gap_ns(tasks, busy_ticks)

    def divergence_ns(self, task) -> int:
        """Billed minus precise: positive = the task is overbilled."""
        return self.usage(task).total_ns - self.audit_usage(task).total_ns


def make_accounting(cfg: MachineConfig) -> AccountingScheme:
    """Instantiate the scheme selected by ``cfg.accounting``."""
    if cfg.accounting == "tick":
        return TickAccounting(cfg.tick_ns, cfg.process_aware_irq_accounting)
    if cfg.accounting == "tsc":
        return TscAccounting(cfg.tick_ns, cfg.process_aware_irq_accounting)
    if cfg.accounting == "dual":
        return DualAccounting(cfg.tick_ns, cfg.process_aware_irq_accounting)
    raise ConfigError(f"unknown accounting scheme {cfg.accounting!r}")
