"""The system-call table.

Each handler is a *kernel coroutine*: a generator yielding ``Compute`` (its
in-kernel cycle cost, charged as stime to the calling task under the
provenance of the code that made the call) and ``Block`` (park the task on a
wait channel).  The engine wraps every call in entry/exit cost segments.

Errors modelled after errno are raised as :class:`KernelError` subclasses;
the wrapper converts them to negative return values, like the real ABI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional, Tuple

from ..errors import (
    InvalidArgument,
    KernelError,
    NoChildProcesses,
    NoSuchProcess,
    PermissionDenied,
)
from ..hw.cpu import Watchpoint
from ..programs.base import GuestFunction
from ..programs.ops import Compute, Provenance
from .engine import Block, ReplaceImage
from .process import Task, TaskState
from .signals import SIGSTOP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel


class SyscallTable:
    """name → handler registry plus the wrapping frame generator."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._handlers: Dict[str, Callable] = {}
        self.invocations: Dict[str, int] = {}
        self._register_defaults()

    def register(self, name: str, handler: Callable) -> None:
        self._handlers[name] = handler

    def names(self):
        return sorted(self._handlers)

    def frame(self, task: Task, name: str, args: Tuple,
              provenance: Provenance) -> Generator:
        """Build the kernel-frame generator for one invocation."""
        return _invocation_body(self, self.kernel, task, name, args,
                                self._handlers.get(name))

    def _register_defaults(self) -> None:
        for name, handler in _DEFAULT_HANDLERS.items():
            self.register(name, handler)


def _invocation_body(table: "SyscallTable", kernel: "Kernel", task: Task,
                     name: str, args: Tuple,
                     handler: Optional[Callable]) -> Generator:
    """The wrapping kernel coroutine for one syscall invocation.

    A module-level generator function (rather than a closure built per
    call) — syscall entry is hot enough that the per-call function object
    shows up in profiles.
    """
    yield kernel.syscall_entry_op
    if handler is None:
        kernel.trace("syscall", f"ENOSYS {name}", task.pid)
        result = -38  # ENOSYS
    else:
        table.invocations[name] = table.invocations.get(name, 0) + 1
        try:
            result = yield from handler(kernel, task, *args)
        except KernelError as err:
            kernel.trace("syscall",
                         f"{name} -> -{err.errname}", task.pid)
            result = -err.errno
    yield kernel.syscall_exit_op
    return result


# ---------------------------------------------------------------------------
# Process lifecycle
# ---------------------------------------------------------------------------

def sys_exit(kernel: "Kernel", task: Task, code: int = 0):
    yield Compute(kernel.costs.exit_cycles)
    kernel.do_exit(task, code)
    return 0


def sys_fork(kernel: "Kernel", task: Task,
             child_fn: Optional[GuestFunction] = None, child_args: Tuple = ()):
    """fork(): the child runs ``child_fn`` (see DESIGN.md on the generator
    model of fork); with no ``child_fn`` the child exits immediately."""
    yield Compute(kernel.costs.fork_cycles)
    child = kernel.do_fork(task, child_fn, child_args)
    return child.pid


def sys_clone_thread(kernel: "Kernel", task: Task, fn: GuestFunction,
                     args: Tuple = ()):
    """clone(CLONE_VM|CLONE_THREAD): spawn a thread sharing the mm."""
    yield Compute(kernel.costs.fork_cycles)
    child = kernel.do_clone_thread(task, fn, args)
    return child.pid


def sys_execve(kernel: "Kernel", task: Task, program):
    yield Compute(kernel.costs.execve_cycles)
    # Point of no return: the engine replaces the whole frame stack.
    yield ReplaceImage(program)
    return 0  # unreachable: the syscall frame is gone


def sys_waitpid(kernel: "Kernel", task: Task, pid: int = -1,
                nohang: bool = False):
    """Wait for a child to exit or a tracee to stop.

    Returns ``(pid, ("exited", code))``, ``(pid, ("stopped", sig))``, or 0
    when ``nohang`` is set and nothing is ready (WNOHANG).
    """
    yield Compute(kernel.costs.wait_cycles)
    while True:
        zombie = kernel.find_zombie_child(task, pid)
        if zombie is not None:
            code = zombie.exit_code
            zpid = zombie.pid
            kernel.reap(task, zombie)
            return (zpid, ("exited", code))
        stopped = kernel.find_stop_report(task, pid)
        if stopped is not None:
            stopped.stop_pending_report = False
            return (stopped.pid, ("stopped", stopped.stop_signal))
        if not kernel.has_waitable(task, pid):
            raise NoChildProcesses("nothing to wait for")
        if nohang:
            return 0
        yield Block(f"wait:{task.pid}")


def sys_getpid(kernel: "Kernel", task: Task):
    yield Compute(100)
    return task.tgid


def sys_gettid(kernel: "Kernel", task: Task):
    yield Compute(100)
    return task.pid


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------

def sys_nanosleep(kernel: "Kernel", task: Task, duration_ns: int):
    if duration_ns < 0:
        raise InvalidArgument("negative sleep")
    yield Compute(500)
    deadline = kernel.clock.now + duration_ns
    channel = f"sleep:{task.pid}:{deadline}"
    kernel.events.schedule(deadline,
                           lambda: kernel.wake_channel(channel, None),
                           name="sleep-wake")
    yield Block(channel)
    return 0


def sys_sched_yield(kernel: "Kernel", task: Task):
    yield Compute(300)
    kernel.request_resched()
    return 0


def sys_getcpu(kernel: "Kernel", task: Task):
    """getcpu(2): which CPU the caller is executing on right now.  The
    cross-CPU tick-dodging attacker pairs this with ``clock_gettime`` to
    predict the *local* tick grid (per-CPU ticks are staggered)."""
    yield Compute(150)
    return kernel.cpu_index


def sys_migrate(kernel: "Kernel", task: Task, cpu: int):
    """sched_setaffinity(2) collapsed to its attack-relevant core: pin
    the calling task to ``cpu`` and move it there at the next slice
    barrier.  A uniprocessor accepts only cpu 0 (a no-op), mirroring a
    full-mask setaffinity call."""
    if not 0 <= cpu < kernel.nproc:
        raise InvalidArgument(f"cpu {cpu} out of range")
    yield Compute(1_000)
    return kernel.migrate_current(cpu)


def sys_setpriority(kernel: "Kernel", task: Task, nice: int,
                    pid: Optional[int] = None):
    """setpriority(PRIO_PROCESS): raising priority requires root."""
    if not -20 <= nice <= 19:
        raise InvalidArgument(f"nice {nice} out of range")
    yield Compute(800)
    target = task if pid is None else kernel.task_by_pid(pid)
    if target is None:
        raise NoSuchProcess(f"pid {pid}")
    if nice < target.nice and task.uid != 0:
        raise PermissionDenied("lowering nice requires root")
    if task.uid != 0 and target.uid != task.uid:
        raise PermissionDenied("cannot renice another user's process")
    target.nice = nice
    kernel.scheduler.on_nice_change(target)
    return 0


def sys_getpriority(kernel: "Kernel", task: Task, pid: Optional[int] = None):
    yield Compute(300)
    target = task if pid is None else kernel.task_by_pid(pid)
    if target is None:
        raise NoSuchProcess(f"pid {pid}")
    return target.nice


# ---------------------------------------------------------------------------
# Signals
# ---------------------------------------------------------------------------

def sys_kill(kernel: "Kernel", task: Task, pid: int, sig: int):
    yield Compute(kernel.costs.signal_deliver_cycles // 2)
    target = kernel.task_by_pid(pid)
    if target is None or not target.alive:
        raise NoSuchProcess(f"pid {pid}")
    if task.uid != 0 and task.uid != target.uid:
        raise PermissionDenied("kill: mismatched uid")
    kernel.post_signal(target, sig, sender_pid=task.pid)
    return 0


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

def sys_brk(kernel: "Kernel", task: Task, increment_bytes: int):
    yield Compute(1_500)
    return task.mm.brk(increment_bytes)


def sys_mmap(kernel: "Kernel", task: Task, npages: int, name: str = "mmap"):
    yield Compute(2_500)
    return task.mm.mmap(npages, name)


def sys_munmap(kernel: "Kernel", task: Task, start: int):
    yield Compute(2_000)
    region = task.mm.munmap(start)
    kernel.mm.release_region_frames(task.mm, region.start, region.npages)
    return 0


def sys_getrusage(kernel: "Kernel", task: Task):
    """RUSAGE_SELF for the whole thread group, like getrusage(2)."""
    yield Compute(1_000)
    return kernel.rusage(task)


def sys_rdtsc(kernel: "Kernel", task: Task):
    """Not a real syscall (rdtsc is unprivileged); kept here for symmetry."""
    yield Compute(30)
    return kernel.cpu.read_tsc()


def sys_clock_gettime(kernel: "Kernel", task: Task):
    """CLOCK_MONOTONIC: this kernel's own nanosecond clock.  On bare metal
    it tracks wall time; under a hypervisor it advances only while the vCPU
    runs (or idles), which is exactly the gap the steal-time estimator in
    :mod:`repro.metering.steal` measures."""
    yield Compute(120)
    return kernel.clock.now


# ---------------------------------------------------------------------------
# ptrace
# ---------------------------------------------------------------------------

def _ptrace_target(kernel: "Kernel", task: Task, pid: int,
                   must_be_traced: bool = True,
                   must_be_stopped: bool = True) -> Task:
    target = kernel.task_by_pid(pid)
    if target is None or not target.alive:
        raise NoSuchProcess(f"pid {pid}")
    if must_be_traced and target.tracer is not task:
        raise PermissionDenied(f"pid {pid} is not traced by caller")
    if must_be_stopped and target.state is not TaskState.STOPPED:
        raise InvalidArgument(f"pid {pid} is not stopped")
    return target


def sys_ptrace(kernel: "Kernel", task: Task, request: str, pid: int,
               *args):
    """ptrace(): ATTACH / CONT / DETACH / POKEUSER_DR / SINGLESTEP-ish.

    Permission model after the paper's §V-C remark: tracing is gated by
    an LSM-style policy — root always may; an ordinary user may trace only
    its own processes when the kernel's policy allows it.
    """
    yield Compute(kernel.costs.ptrace_request_cycles)

    if request == "attach":
        target = kernel.task_by_pid(pid)
        if target is None or not target.alive:
            raise NoSuchProcess(f"pid {pid}")
        if target is task:
            raise InvalidArgument("cannot attach to self")
        if target.tracer is not None:
            raise PermissionDenied(f"pid {pid} already traced")
        if task.uid != 0:
            if not kernel.policy_allow_user_ptrace:
                raise PermissionDenied("ptrace denied by security policy")
            if task.uid != target.uid:
                raise PermissionDenied("ptrace: uid mismatch")
        target.tracer = task
        task.tracees.add(target.pid)
        kernel.post_signal(target, SIGSTOP, sender_pid=task.pid)
        return 0

    if request == "detach":
        target = _ptrace_target(kernel, task, pid, must_be_stopped=False)
        target.tracer = None
        task.tracees.discard(target.pid)
        if target.state is TaskState.STOPPED:
            kernel.resume_stopped(target)
        return 0

    if request == "cont":
        target = _ptrace_target(kernel, task, pid)
        yield Compute(kernel.costs.ptrace_stop_cycles)
        kernel.resume_stopped(target)
        return 0

    if request == "pokeuser_dr":
        target = _ptrace_target(kernel, task, pid)
        slot, watchpoint = args
        if watchpoint is not None and not isinstance(watchpoint, Watchpoint):
            raise InvalidArgument("expected a Watchpoint or None")
        target.debug.set_slot(slot, watchpoint)
        return 0

    if request == "peekuser_dr":
        target = _ptrace_target(kernel, task, pid)
        (slot,) = args
        return target.debug.get_slot(slot)

    raise InvalidArgument(f"unknown ptrace request {request!r}")


# ---------------------------------------------------------------------------
# Dynamic loading support (called by the libc dlopen/dlclose wrappers)
# ---------------------------------------------------------------------------

def sys_dl_load(kernel: "Kernel", task: Task, name: str):
    yield Compute(3_000)
    lib = kernel.libraries.lookup(name)
    link_map = task.guest_ctx.shared["_link_map"]
    link_map.append(lib)
    return lib


def sys_dl_unload(kernel: "Kernel", task: Task, lib):
    yield Compute(1_500)
    link_map = task.guest_ctx.shared["_link_map"]
    link_map.remove(lib)
    return 0


# ---------------------------------------------------------------------------
# Introspection (procfs-flavoured)
# ---------------------------------------------------------------------------

def sys_proc_threads(kernel: "Kernel", task: Task, pid: int):
    """List the alive thread ids of ``pid``'s thread group (like reading
    /proc/<pid>/task)."""
    yield Compute(1_500)
    target = kernel.task_by_pid(pid)
    if target is None or not target.alive:
        raise NoSuchProcess(f"pid {pid}")
    tgid = target.tgid
    return sorted([t.pid for t in kernel.tasks.values()
                   if t.tgid == tgid and t.alive])


def sys_proc_stat(kernel: "Kernel", task: Task, pid: Optional[int] = None):
    """Read another task's accounting view (like /proc/<pid>/stat)."""
    yield Compute(1_200)
    target = task if pid is None else kernel.task_by_pid(pid)
    if target is None:
        raise NoSuchProcess(f"pid {pid}")
    usage = kernel.accounting.usage(target)
    return {
        "pid": target.pid,
        "name": target.name,
        "state": target.state.value,
        "nice": target.nice,
        "utime_ns": usage.utime_ns,
        "stime_ns": usage.stime_ns,
        "minflt": target.minor_faults,
        "majflt": target.major_faults,
    }


_DEFAULT_HANDLERS = {
    "exit": sys_exit,
    "fork": sys_fork,
    "clone_thread": sys_clone_thread,
    "execve": sys_execve,
    "waitpid": sys_waitpid,
    "getpid": sys_getpid,
    "gettid": sys_gettid,
    "nanosleep": sys_nanosleep,
    "sched_yield": sys_sched_yield,
    "getcpu": sys_getcpu,
    "migrate": sys_migrate,
    "setpriority": sys_setpriority,
    "getpriority": sys_getpriority,
    "kill": sys_kill,
    "brk": sys_brk,
    "mmap": sys_mmap,
    "munmap": sys_munmap,
    "getrusage": sys_getrusage,
    "rdtsc": sys_rdtsc,
    "clock_gettime": sys_clock_gettime,
    "ptrace": sys_ptrace,
    "_dl_load": sys_dl_load,
    "_dl_unload": sys_dl_unload,
    "proc_stat": sys_proc_stat,
    "proc_threads": sys_proc_threads,
}
