"""The simulated operating-system kernel.

Subpackages/modules:

* ``accounting``  — CPU-time accounting schemes (tick-sampled vs TSC-precise,
  with optional process-aware interrupt accounting).
* ``process``     — task control blocks, states, credentials.
* ``sched``       — CFS, O(1)-style and round-robin run-queue schedulers.
* ``mm``          — address spaces, demand paging, reclaim, swap, OOM.
* ``signals``     — minimal POSIX signal semantics.
* ``ptrace``      — tracing, traced stops, debug-register pokes.
* ``loader``      — executables, shared libraries, the dynamic linker.
* ``engine``      — the op-stream execution engine (the "CPU core loop").
* ``syscalls``    — the system-call table.
* ``timekeeping`` — jiffies and the timer-tick handler.
* ``shell``       — the command shell (fork + execve, with the attack hook).
* ``kernel``      — the facade tying everything together.
"""

from .accounting import (
    AccountingScheme,
    CpuUsage,
    DualAccounting,
    TickAccounting,
    TscAccounting,
    make_accounting,
)
from .process import Task, TaskState
from .kernel import Kernel

__all__ = [
    "AccountingScheme",
    "CpuUsage",
    "DualAccounting",
    "TickAccounting",
    "TscAccounting",
    "make_accounting",
    "Task",
    "TaskState",
    "Kernel",
]
