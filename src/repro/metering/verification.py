"""User-side bill verification.

The paper's §III-B defines trustworthiness: "a CPU time metering scheme is
trustworthy if and only if the measured time equals the outcome from the
same job execution in the user's own platform with the same
hardware/software specification."  The verifier implements exactly that
test: replay the job on a reference machine the user controls (same config,
honest platform) and compare against the provider's bill, with a tolerance
for tick quantisation and benign load noise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..analysis.experiment import run_experiment
from ..config import MachineConfig, default_config
from ..kernel.accounting import CpuUsage
from ..programs.base import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .billing import TrustReport


class VerificationOutcome(enum.Enum):
    """Verdict of a bill check."""

    #: Billed time within tolerance of the reference execution.
    CONSISTENT = "consistent"
    #: Billed time exceeds the reference beyond tolerance: overcharge.
    OVERCHARGED = "overcharged"
    #: Billed time is *below* the reference beyond tolerance (suspicious
    #: in the other direction: the customer could deny a correct bill).
    UNDERCHARGED = "undercharged"


@dataclass
class VerificationReport:
    """Result of verifying one bill."""

    job_name: str
    billed: CpuUsage
    reference: CpuUsage
    outcome: VerificationOutcome
    tolerance_fraction: float
    tolerance_floor_s: float
    #: Trust level of the billed-side metering ("trusted" when no trust
    #: report accompanied the bill) and the extra margin it contributed.
    trust_level: str = "trusted"
    uncertainty_s: float = 0.0

    @property
    def billed_s(self) -> float:
        return self.billed.total_seconds

    @property
    def reference_s(self) -> float:
        return self.reference.total_seconds

    @property
    def discrepancy_s(self) -> float:
        return self.billed_s - self.reference_s

    @property
    def discrepancy_fraction(self) -> float:
        ref = self.reference_s
        return self.discrepancy_s / ref if ref > 0 else 0.0

    def render(self) -> str:
        out = (
            f"VERIFICATION of job {self.job_name!r}: {self.outcome.value}\n"
            f"  billed     : {self.billed_s:.3f} s\n"
            f"  reference  : {self.reference_s:.3f} s\n"
            f"  discrepancy: {self.discrepancy_s:+.3f} s "
            f"({100 * self.discrepancy_fraction:+.1f}%)\n"
            f"  tolerance  : ±{100 * self.tolerance_fraction:.0f}% "
            f"(floor {self.tolerance_floor_s:.3f} s)"
        )
        if self.trust_level != "trusted" or self.uncertainty_s:
            out += (f"\n  trust      : {self.trust_level} "
                    f"(±{self.uncertainty_s:.3f} s metering uncertainty)")
        return out


class BillVerifier:
    """Replays jobs on a trusted reference platform and checks bills."""

    def __init__(self, reference_cfg: Optional[MachineConfig] = None,
                 tolerance_fraction: float = 0.05,
                 tolerance_floor_s: float = 0.02) -> None:
        if tolerance_fraction < 0 or tolerance_floor_s < 0:
            raise ValueError("tolerances must be non-negative")
        self.reference_cfg = reference_cfg or default_config()
        self.tolerance_fraction = tolerance_fraction
        self.tolerance_floor_s = tolerance_floor_s

    def reference_run(self, program: Program) -> CpuUsage:
        """Execute the job on the user's own (honest) platform."""
        result = run_experiment(program, cfg=self.reference_cfg)
        return result.usage

    def verify(self, program: Program, billed: CpuUsage,
               trust: Optional["TrustReport"] = None) -> VerificationReport:
        """Check ``billed`` against a reference replay.

        ``trust`` is the provider-side metering trust report, if the bill
        came with one: its uncertainty bound widens the acceptance margin,
        so a bill metered under declared hardware faults is judged against
        what the degraded meter could honestly report, not against a
        perfect clock it did not have.
        """
        reference = self.reference_run(program)
        margin = max(self.tolerance_floor_s,
                     self.tolerance_fraction * reference.total_seconds)
        uncertainty_s = 0.0
        if trust is not None:
            uncertainty_s = trust.uncertainty_s
            margin += uncertainty_s
        delta = billed.total_seconds - reference.total_seconds
        if delta > margin:
            outcome = VerificationOutcome.OVERCHARGED
        elif delta < -margin:
            outcome = VerificationOutcome.UNDERCHARGED
        else:
            outcome = VerificationOutcome.CONSISTENT
        return VerificationReport(
            job_name=program.name,
            billed=billed,
            reference=reference,
            outcome=outcome,
            tolerance_fraction=self.tolerance_fraction,
            tolerance_floor_s=self.tolerance_floor_s,
            trust_level=trust.level.value if trust is not None else "trusted",
            uncertainty_s=uncertainty_s,
        )
