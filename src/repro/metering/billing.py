"""Billing: turning metered CPU time into money.

Models the utility-computing pricing plans of the paper's §II: per-CPU-hour
(EC2/App Engine style, rounding partial hours up the way EC2 rounded
instance-hours) and per-CPU-second plans.  The point of the reproduction:
an invoice is only as trustworthy as the metering underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..config import NS_PER_SEC
from ..errors import ConfigError
from ..kernel.accounting import CpuUsage
from ..kernel.timekeeping import TRUST_SEVERITY, TrustLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernel.timekeeping import ClocksourceWatchdog


@dataclass(frozen=True)
class PricePlan:
    """A pricing plan for CPU time."""

    name: str
    #: Price per billing unit, in micro-dollars (integer math, no float
    #: rounding surprises in money).
    microdollars_per_unit: int
    #: Billing unit duration in ns (3600 s for per-hour plans, 1 s for
    #: per-second plans).
    unit_ns: int
    #: Round partial units up (EC2-style instance-hours) or bill pro rata.
    round_up: bool = False

    def __post_init__(self) -> None:
        if self.unit_ns <= 0:
            raise ConfigError("billing unit must be positive")
        if self.microdollars_per_unit < 0:
            raise ConfigError("price must be non-negative")

    def cost_microdollars(self, cpu_ns: int) -> int:
        if cpu_ns <= 0:
            return 0
        if self.round_up:
            units = (cpu_ns + self.unit_ns - 1) // self.unit_ns
            return units * self.microdollars_per_unit
        return cpu_ns * self.microdollars_per_unit // self.unit_ns


#: EC2 small-instance flavour: $0.10 per CPU-hour, partial hours rounded up.
PER_HOUR_PLAN = PricePlan("per-cpu-hour", microdollars_per_unit=100_000,
                          unit_ns=3600 * NS_PER_SEC, round_up=True)

#: Fine-grained plan: $0.10/3600 per CPU-second, pro rata.
PER_SECOND_PLAN = PricePlan("per-cpu-second", microdollars_per_unit=28,
                            unit_ns=NS_PER_SEC, round_up=False)

#: The tariffs a tenant can sign up for, by wire name — shared by the
#: cloud provider's invoicing and the ``repro serve`` tenant registry.
PLANS = {plan.name: plan for plan in (PER_HOUR_PLAN, PER_SECOND_PLAN)}


def plan_by_name(name: str) -> PricePlan:
    """Resolve a plan's wire name; :class:`ConfigError` on unknown names."""
    try:
        return PLANS[name]
    except KeyError:
        raise ConfigError(f"unknown pricing plan {name!r}; "
                          f"have {sorted(PLANS)}") from None


@dataclass(frozen=True)
class TrustReport:
    """Trust annotation for one metered usage record.

    Produced from the clocksource watchdog's interval grades (see
    :class:`~repro.kernel.timekeeping.ClocksourceWatchdog`): the worst
    interval trust level observed over the metering window plus the summed
    uncertainty bound.  Attached to an :class:`Invoice`, it is how billing
    degrades *gracefully* under hardware faults — the bill still issues,
    it just carries an honest error bar.
    """

    level: TrustLevel
    uncertainty_ns: int
    intervals_trusted: int = 0
    intervals_degraded: int = 0
    intervals_untrusted: int = 0

    @classmethod
    def from_watchdog(cls, watchdog: "ClocksourceWatchdog") -> "TrustReport":
        counts = watchdog.trust_counts()
        return cls(level=watchdog.worst_trust(),
                   uncertainty_ns=watchdog.total_uncertainty_ns(),
                   intervals_trusted=counts["trusted"],
                   intervals_degraded=counts["degraded"],
                   intervals_untrusted=counts["untrusted"])

    @classmethod
    def from_stats(cls, stats: "dict") -> "TrustReport":
        """Rebuild a trust report from an experiment result's counters —
        the stats travel through the result cache, the live watchdog and
        sync-estimator objects do not.

        Every grading path folds in here: the clocksource watchdog's
        interval grades (``watchdog_*``), the guest-side sync estimator's
        round grades and declared bound (``timesync_*``), and raw
        ungraded fault damage (``fault_uncertainty_ns``, emitted when
        corruption was injected with no watchdog to grade it).  All new
        terms default to zero when their keys are absent, so a
        watchdog-only stats dict produces the exact pre-timesync report.
        """
        trusted = (int(stats.get("watchdog_intervals_trusted", 0))
                   + int(stats.get("timesync_trusted", 0)))
        degraded = (int(stats.get("watchdog_intervals_degraded", 0))
                    + int(stats.get("timesync_degraded", 0)))
        untrusted = (int(stats.get("watchdog_intervals_untrusted", 0))
                     + int(stats.get("timesync_untrusted", 0)))
        fault_uncertainty = int(stats.get("fault_uncertainty_ns", 0))
        if untrusted:
            level = TrustLevel.UNTRUSTED
        elif degraded or fault_uncertainty:
            # Known corruption with nobody to grade it is still not a
            # TRUSTED invoice.
            level = TrustLevel.DEGRADED
        else:
            level = TrustLevel.TRUSTED
        uncertainty = (int(stats.get("watchdog_uncertainty_ns", 0))
                       + int(stats.get("timesync_uncertainty_ns", 0))
                       + fault_uncertainty)
        return cls(level=level,
                   uncertainty_ns=uncertainty,
                   intervals_trusted=trusted,
                   intervals_degraded=degraded,
                   intervals_untrusted=untrusted)

    @property
    def uncertainty_s(self) -> float:
        return self.uncertainty_ns / 1e9

    @property
    def is_trusted(self) -> bool:
        return self.level is TrustLevel.TRUSTED

    def worse_than(self, other: "TrustReport") -> bool:
        return TRUST_SEVERITY[self.level] > TRUST_SEVERITY[other.level]

    def render(self) -> str:
        return (f"{self.level.value} "
                f"(±{self.uncertainty_s:.3f} s over "
                f"{self.intervals_trusted + self.intervals_degraded + self.intervals_untrusted} "
                f"intervals: {self.intervals_trusted} trusted, "
                f"{self.intervals_degraded} degraded, "
                f"{self.intervals_untrusted} untrusted)")


@dataclass
class Invoice:
    """One job's bill."""

    job_name: str
    plan: PricePlan
    usage: CpuUsage
    #: Trust annotation from the clocksource watchdog, when the run had
    #: one; None means the fault layer was not in play.
    trust: Optional[TrustReport] = field(default=None)

    @property
    def billable_ns(self) -> int:
        return self.usage.total_ns

    @property
    def amount_microdollars(self) -> int:
        return self.plan.cost_microdollars(self.billable_ns)

    @property
    def amount_dollars(self) -> float:
        return self.amount_microdollars / 1e6

    def billable_bounds_ns(self) -> "tuple[int, int]":
        """(low, high) bound on billable ns given the trust uncertainty."""
        if self.trust is None:
            return self.billable_ns, self.billable_ns
        delta = self.trust.uncertainty_ns
        return max(0, self.billable_ns - delta), self.billable_ns + delta

    def render(self) -> str:
        lines = [
            f"INVOICE for job {self.job_name!r}",
            f"  plan        : {self.plan.name}",
            f"  user time   : {self.usage.utime_seconds:.3f} s",
            f"  system time : {self.usage.stime_seconds:.3f} s",
            f"  billable    : {self.billable_ns / 1e9:.3f} CPU-seconds",
            f"  amount      : ${self.amount_dollars:.6f}",
        ]
        if self.trust is not None:
            low, high = self.billable_bounds_ns()
            lines.append(f"  trust       : {self.trust.render()}")
            lines.append(f"  bounds      : [{low / 1e9:.3f}, {high / 1e9:.3f}]"
                         f" CPU-seconds")
        return "\n".join(lines)


def invoice_for(job_name: str, usage: CpuUsage,
                plan: Optional[PricePlan] = None,
                trust: Optional[TrustReport] = None) -> Invoice:
    """Build an invoice from a metered usage record (optionally annotated
    with the run's clocksource trust report)."""
    return Invoice(job_name=job_name, plan=plan or PER_SECOND_PLAN,
                   usage=usage, trust=trust)
