"""Billing: turning metered CPU time into money.

Models the utility-computing pricing plans of the paper's §II: per-CPU-hour
(EC2/App Engine style, rounding partial hours up the way EC2 rounded
instance-hours) and per-CPU-second plans.  The point of the reproduction:
an invoice is only as trustworthy as the metering underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import NS_PER_SEC
from ..errors import ConfigError
from ..kernel.accounting import CpuUsage


@dataclass(frozen=True)
class PricePlan:
    """A pricing plan for CPU time."""

    name: str
    #: Price per billing unit, in micro-dollars (integer math, no float
    #: rounding surprises in money).
    microdollars_per_unit: int
    #: Billing unit duration in ns (3600 s for per-hour plans, 1 s for
    #: per-second plans).
    unit_ns: int
    #: Round partial units up (EC2-style instance-hours) or bill pro rata.
    round_up: bool = False

    def __post_init__(self) -> None:
        if self.unit_ns <= 0:
            raise ConfigError("billing unit must be positive")
        if self.microdollars_per_unit < 0:
            raise ConfigError("price must be non-negative")

    def cost_microdollars(self, cpu_ns: int) -> int:
        if cpu_ns <= 0:
            return 0
        if self.round_up:
            units = (cpu_ns + self.unit_ns - 1) // self.unit_ns
            return units * self.microdollars_per_unit
        return cpu_ns * self.microdollars_per_unit // self.unit_ns


#: EC2 small-instance flavour: $0.10 per CPU-hour, partial hours rounded up.
PER_HOUR_PLAN = PricePlan("per-cpu-hour", microdollars_per_unit=100_000,
                          unit_ns=3600 * NS_PER_SEC, round_up=True)

#: Fine-grained plan: $0.10/3600 per CPU-second, pro rata.
PER_SECOND_PLAN = PricePlan("per-cpu-second", microdollars_per_unit=28,
                            unit_ns=NS_PER_SEC, round_up=False)


@dataclass
class Invoice:
    """One job's bill."""

    job_name: str
    plan: PricePlan
    usage: CpuUsage

    @property
    def billable_ns(self) -> int:
        return self.usage.total_ns

    @property
    def amount_microdollars(self) -> int:
        return self.plan.cost_microdollars(self.billable_ns)

    @property
    def amount_dollars(self) -> float:
        return self.amount_microdollars / 1e6

    def render(self) -> str:
        return (
            f"INVOICE for job {self.job_name!r}\n"
            f"  plan        : {self.plan.name}\n"
            f"  user time   : {self.usage.utime_seconds:.3f} s\n"
            f"  system time : {self.usage.stime_seconds:.3f} s\n"
            f"  billable    : {self.billable_ns / 1e9:.3f} CPU-seconds\n"
            f"  amount      : ${self.amount_dollars:.6f}"
        )


def invoice_for(job_name: str, usage: CpuUsage,
                plan: Optional[PricePlan] = None) -> Invoice:
    """Build an invoice from a metered usage record."""
    return Invoice(job_name=job_name, plan=plan or PER_SECOND_PLAN,
                   usage=usage)
