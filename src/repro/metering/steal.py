"""Tenant-side steal-time auditing for virtualized metering.

The VM-level counterpart of :mod:`repro.metering.verification`: a cloud
tenant cannot see the hypervisor's books, but it *can* measure how much
CPU it actually lost — the guest's own clock freezes while the vCPU is
runnable-but-descheduled, so the drift between a host-backed time source
and the guest clock is exactly the steal time (Verdú et al.,
arXiv:1810.01139).  :func:`audit_steal` turns the measurement from the
:func:`~repro.virt.guests.make_steal_estimator` guest into a verdict:

* does the hypervisor's *reported* steal counter agree with the guest's
  own estimate (an under-reporting host is hiding contention)?
* is the tenant's billed CPU consistent with the time it really ran, or
  is it being billed for a co-resident's cycles (the §IV-B1-style VM
  scheduling attack)?
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

from ..analysis.experiment import ExperimentResult


class StealVerdict(enum.Enum):
    """Outcome of a tenant-side steal audit."""

    #: Reported steal matches the estimate and billing tracks actual run
    #: time: nothing to complain about.
    CONSISTENT = "consistent"
    #: The hypervisor's steal counter disagrees with the guest's own
    #: measurement beyond tolerance (a lying or broken steal clock).
    MISREPORTED = "misreported"
    #: Steal accounting is honest, but the billed CPU exceeds the time the
    #: vCPU actually held the core: the tenant is paying for someone
    #: else's cycles.
    OVERBILLED = "overbilled"


@dataclass
class StealReport:
    """One steal audit: the guest's measurement vs the host's story."""

    est_steal_ns: int
    reported_steal_ns: int
    billed_ns: int
    ran_ns: int
    samples: int
    verdict: StealVerdict
    tolerance_fraction: float
    tolerance_floor_ns: int

    @property
    def report_gap_ns(self) -> int:
        """Host-reported steal minus the guest's own estimate."""
        return self.reported_steal_ns - self.est_steal_ns

    @property
    def overbilling_ns(self) -> int:
        """Billed CPU beyond what the vCPU actually ran."""
        return self.billed_ns - self.ran_ns

    @property
    def steal_fraction(self) -> float:
        """Estimated steal as a fraction of estimated wall time."""
        wall = self.est_steal_ns + self.ran_ns
        return self.est_steal_ns / wall if wall > 0 else 0.0

    def render(self) -> str:
        return (
            f"STEAL AUDIT: {self.verdict.value}\n"
            f"  estimated steal : {self.est_steal_ns / 1e9:.3f} s "
            f"({self.samples} samples)\n"
            f"  reported steal  : {self.reported_steal_ns / 1e9:.3f} s "
            f"(gap {self.report_gap_ns / 1e9:+.3f} s)\n"
            f"  billed          : {self.billed_ns / 1e9:.3f} s\n"
            f"  actually ran    : {self.ran_ns / 1e9:.3f} s "
            f"(overbilling {self.overbilling_ns / 1e9:+.3f} s)\n"
            f"  tolerance       : ±{100 * self.tolerance_fraction:.0f}% "
            f"(floor {self.tolerance_floor_ns / 1e9:.3f} s)"
        )


def audit_steal(est_steal_ns: int, reported_steal_ns: int,
                billed_ns: int, ran_ns: int, samples: int = 0,
                tolerance_fraction: float = 0.05,
                tolerance_floor_ns: int = 2_000_000) -> StealReport:
    """Judge the host's steal reporting and billing against the guest's
    own measurement.

    ``tolerance_floor_ns`` absorbs the estimator's sampling quantisation
    (one estimator interval of lag); ``tolerance_fraction`` scales with
    the measured quantities like the bill verifier's does.
    """
    if tolerance_fraction < 0 or tolerance_floor_ns < 0:
        raise ValueError("tolerances must be non-negative")
    report_margin = max(tolerance_floor_ns,
                        int(tolerance_fraction
                            * max(est_steal_ns, reported_steal_ns)))
    if abs(reported_steal_ns - est_steal_ns) > report_margin:
        verdict = StealVerdict.MISREPORTED
    else:
        bill_margin = max(tolerance_floor_ns,
                          int(tolerance_fraction * ran_ns))
        if billed_ns - ran_ns > bill_margin:
            verdict = StealVerdict.OVERBILLED
        else:
            verdict = StealVerdict.CONSISTENT
    return StealReport(
        est_steal_ns=int(est_steal_ns),
        reported_steal_ns=int(reported_steal_ns),
        billed_ns=int(billed_ns),
        ran_ns=int(ran_ns),
        samples=int(samples),
        verdict=verdict,
        tolerance_fraction=tolerance_fraction,
        tolerance_floor_ns=int(tolerance_floor_ns),
    )


def audit_result(result: ExperimentResult,
                 tolerance_fraction: float = 0.1,
                 tolerance_floor_ns: int = 5_000_000,
                 trust_uncertainty_ns: int = 0) -> StealReport:
    """Tenant audit for *any* experiment result — the live-API entry point
    used by ``repro serve``'s ``/audit`` endpoint.

    VM results carry the guest steal estimator's measurement and go
    through :func:`audit_vm_result` unchanged.  Process-level results have
    no steal clock, so the audit falls back to the §III-B ground truth the
    oracle keeps: the bill is checked against the nanoseconds of
    legitimate work the task (and its thread group) really performed —
    billed time beyond that margin means the meter charged the tenant for
    someone else's cycles (the §IV-B1 tick-dodging theft).

    ``trust_uncertainty_ns`` widens the acceptance floor by the metering
    uncertainty the invoice's trust report declared, mirroring
    :meth:`~repro.metering.verification.BillVerifier.verify`: a bill
    metered under declared hardware faults is judged against what the
    degraded meter could honestly report.
    """
    if "victim_ran_ns" in result.stats:
        return audit_vm_result(result)
    ran_ns = int(round(result.oracle_own_s() * 1e9))
    return audit_steal(
        est_steal_ns=0,
        reported_steal_ns=0,
        billed_ns=result.usage.total_ns,
        ran_ns=ran_ns,
        samples=0,
        tolerance_fraction=tolerance_fraction,
        tolerance_floor_ns=tolerance_floor_ns + max(0, trust_uncertainty_ns),
    )


def audit_vm_result(result: ExperimentResult,
                    tolerance_fraction: float = 0.05,
                    tolerance_floor_ns: Optional[int] = None) -> StealReport:
    """Audit a :func:`~repro.virt.experiment.run_vm_experiment` result from
    the victim tenant's point of view."""
    stats: Mapping[str, int] = result.stats
    if "victim_ran_ns" not in stats:
        raise ValueError("not a VM experiment result (no victim_ran_ns)")
    if tolerance_floor_ns is None:
        # One hypervisor tick of quantisation plus one estimator interval.
        tolerance_floor_ns = 12_000_000
    return audit_steal(
        est_steal_ns=stats.get("est_steal_ns", 0),
        reported_steal_ns=stats.get("reported_steal_ns", 0),
        billed_ns=result.usage.total_ns,
        ran_ns=stats["victim_ran_ns"],
        samples=stats.get("steal_samples", 0),
        tolerance_fraction=tolerance_fraction,
        tolerance_floor_ns=tolerance_floor_ns,
    )
