"""Periodic usage sampling: billing timelines.

Providers bill from end-of-job totals, but an auditor (or a wary customer
with `/proc` access) can sample usage periodically and study the *rate* at
which a task's billed time grows.  The scheduling attack has a crisp
timeline signature: the victim's billed CPU time grows at ~1 jiffy per
jiffy of wall time even though a competitor is demonstrably consuming the
machine — billed share and achievable share cannot both be right.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task


@dataclass(frozen=True)
class UsageSample:
    """One point on a task's billing timeline."""

    wall_ns: int
    utime_ns: int
    stime_ns: int
    runnable_tasks: int

    @property
    def total_ns(self) -> int:
        return self.utime_ns + self.stime_ns


@dataclass
class UsageTimeline:
    """Samples for one task, with derived rates."""

    pid: int
    samples: List[UsageSample] = field(default_factory=list)

    def billed_share(self, start_index: int = 0) -> float:
        """Billed CPU ns per wall ns across the sampled window."""
        window = self.samples[start_index:]
        if len(window) < 2:
            return 0.0
        wall = window[-1].wall_ns - window[0].wall_ns
        cpu = window[-1].total_ns - window[0].total_ns
        return cpu / wall if wall > 0 else 0.0

    def max_interval_share(self) -> float:
        """The largest per-interval billed share (a value above 1.0 is
        impossible on one CPU and proves misattribution outright)."""
        best = 0.0
        for before, after in zip(self.samples, self.samples[1:]):
            wall = after.wall_ns - before.wall_ns
            if wall <= 0:
                continue
            best = max(best, (after.total_ns - before.total_ns) / wall)
        return best


class UsageSampler:
    """Samples one task's billed usage every ``interval_ns`` of sim time."""

    def __init__(self, machine: "Machine", task: "Task",
                 interval_ns: int = 20_000_000) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.machine = machine
        self.task = task
        self.interval_ns = interval_ns
        self.timeline = UsageTimeline(pid=task.pid)
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        self.machine.events.schedule(
            self.machine.clock.now + self.interval_ns, self._fire,
            name="usage-sample")

    def _fire(self) -> None:
        if not self._running:
            return
        kernel = self.machine.kernel
        usage = kernel.accounting.usage(self.task)
        self.timeline.samples.append(UsageSample(
            wall_ns=self.machine.clock.now,
            utime_ns=usage.utime_ns,
            stime_ns=usage.stime_ns,
            runnable_tasks=kernel.scheduler.nr_runnable
            + (1 if kernel.current is not None else 0),
        ))
        if self.task.alive:
            self._schedule_next()
        else:
            self._running = False


def audit_share(timeline: UsageTimeline, contended_share: float,
                tolerance: float = 0.10) -> Optional[str]:
    """Flag a timeline whose billed share exceeds what contention allows.

    ``contended_share`` is the fair share the auditor knows the task could
    have had (e.g. 0.5 with one equal-weight competitor demonstrably
    running).  Returns a human-readable finding, or None if clean.
    """
    share = timeline.billed_share()
    if share > contended_share + tolerance:
        return (f"pid {timeline.pid}: billed share {share:.2f} exceeds the "
                f"achievable {contended_share:.2f} under observed load — "
                f"misattributed time")
    return None
