"""Metering of non-CPU resources (paper §VI-C).

The paper observes that transaction-oriented resources — database
transactions, bytes transferred, storage occupied — are *easier to verify*
than CPU time, "because they are transaction oriented … the user can
verify the claimed resource utilization by comparing it with her local
transaction log."

This module implements that idea: a provider-side :class:`ResourceMeter`
counts billable events, a user-side :class:`TransactionLog` records the
transactions the user knows she issued, and :func:`reconcile` compares the
two.  Unlike CPU seconds, any padding the provider adds is *itemised* and
therefore disputable line by line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class ResourceEvent:
    """One billable transaction."""

    kind: str          # e.g. "db_txn", "bytes_out", "storage_day"
    quantity: int      # units of the resource
    reference: str     # request id / object key the user can check


class ResourceMeter:
    """Provider-side itemised metering."""

    def __init__(self) -> None:
        self._events: List[ResourceEvent] = []

    def record(self, kind: str, quantity: int, reference: str) -> None:
        if quantity < 0:
            raise ConfigError("cannot meter a negative quantity")
        self._events.append(ResourceEvent(kind, quantity, reference))

    def events(self) -> List[ResourceEvent]:
        return list(self._events)

    def totals(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + event.quantity
        return out


class TransactionLog:
    """User-side log of the transactions she actually issued."""

    def __init__(self) -> None:
        self._issued: Dict[Tuple[str, str], int] = {}

    def note(self, kind: str, quantity: int, reference: str) -> None:
        key = (kind, reference)
        self._issued[key] = self._issued.get(key, 0) + quantity

    def quantity_of(self, kind: str, reference: str) -> int:
        return self._issued.get((kind, reference), 0)

    def totals(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (kind, _ref), quantity in self._issued.items():
            out[kind] = out.get(kind, 0) + quantity
        return out


@dataclass
class Discrepancy:
    """One line item the user can dispute."""

    kind: str
    reference: str
    billed: int
    issued: int

    @property
    def padding(self) -> int:
        return self.billed - self.issued

    def __str__(self) -> str:
        return (f"{self.kind}[{self.reference}]: billed {self.billed}, "
                f"issued {self.issued} ({self.padding:+d})")


def reconcile(meter: ResourceMeter, log: TransactionLog) -> List[Discrepancy]:
    """Line-by-line comparison of the bill against the user's log.

    Returns every item where the billed quantity differs from what the
    user's log shows — the §VI-C point: transaction-oriented metering is
    disputable at item granularity, unlike sampled CPU seconds.
    """
    billed: Dict[Tuple[str, str], int] = {}
    for event in meter.events():
        key = (event.kind, event.reference)
        billed[key] = billed.get(key, 0) + event.quantity

    problems: List[Discrepancy] = []
    for (kind, reference), quantity in sorted(billed.items()):
        issued = log.quantity_of(kind, reference)
        if issued != quantity:
            problems.append(Discrepancy(kind, reference, quantity, issued))
    # Items the user issued but the provider never billed (undercharge /
    # lost transactions) are also discrepancies.
    for (kind, reference), issued in sorted(log._issued.items()):
        if (kind, reference) not in billed:
            problems.append(Discrepancy(kind, reference, 0, issued))
    return problems
