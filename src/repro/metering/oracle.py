"""The ground-truth oracle: provenance-exact attribution reports.

The simulator records, for every task, exactly how many nanoseconds each
provenance class consumed (the engine calls ``Task.oracle_charge`` on every
slice).  This module turns those raw counters into a report: the honest
bill, the injected theft, and the divergence of the billing scheme from
the truth — the quantity the paper can only infer from figure deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List

from ..kernel.accounting import CpuUsage
from ..programs.ops import Provenance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task

#: Provenances that an honest bill should charge the user for.
HONEST_PROVENANCES = (Provenance.USER, Provenance.LIB, Provenance.SYSTEM)

#: Provenances that represent attack-caused work.
ATTACK_PROVENANCES = (Provenance.INJECTED, Provenance.TRACER, Provenance.IRQ)


@dataclass
class OracleReport:
    """Exact attribution for one thread group, in seconds."""

    by_provenance: Dict[str, float] = field(default_factory=dict)
    user_mode_s: float = 0.0
    kernel_mode_s: float = 0.0
    billed: CpuUsage = field(default_factory=CpuUsage)

    @property
    def honest_s(self) -> float:
        """What the user legitimately owes."""
        return sum(self.by_provenance.get(p.value, 0.0)
                   for p in HONEST_PROVENANCES)

    @property
    def attack_s(self) -> float:
        """Attack-attributable time that landed in the victim's account."""
        return sum(self.by_provenance.get(p.value, 0.0)
                   for p in ATTACK_PROVENANCES)

    @property
    def total_s(self) -> float:
        return sum(self.by_provenance.values())

    @property
    def billed_s(self) -> float:
        return self.billed.total_seconds

    @property
    def overcharge_s(self) -> float:
        """Billed minus honest: what the scheme charges beyond the truth.

        Includes both injected work and sampling error; can be slightly
        negative when tick quantisation undercounts.
        """
        return self.billed_s - self.honest_s

    @property
    def overcharge_fraction(self) -> float:
        honest = self.honest_s
        return self.overcharge_s / honest if honest > 0 else 0.0


def oracle_report(machine: "Machine", task: "Task") -> OracleReport:
    """Build the oracle report for ``task``'s whole thread group."""
    report = OracleReport()
    billed = CpuUsage()
    for member in machine.kernel.thread_group(task):
        for (user_mode, prov), ns in member.oracle_ns.items():
            seconds = ns / 1e9
            key = prov.value
            report.by_provenance[key] = (
                report.by_provenance.get(key, 0.0) + seconds)
            if user_mode:
                report.user_mode_s += seconds
            else:
                report.kernel_mode_s += seconds
        billed = billed + machine.kernel.accounting.usage(member)
    report.billed = billed
    return report


def summarize_tasks(machine: "Machine",
                    tasks: Iterable["Task"]) -> List[OracleReport]:
    return [oracle_report(machine, task) for task in tasks]
