"""Which defensive property addresses which attack (paper §VI-B).

The paper argues three properties are necessary: source integrity,
execution integrity, and fine-grained metering.  This table records the
expected coverage — and the defense-ablation benchmark
(`benchmarks/bench_ablation_defenses.py`) validates it empirically:

* attestation (source integrity) flags the shell and both library attacks;
* the execution-integrity monitor flags thrashing and the floods;
* TSC accounting with process-aware interrupt billing (fine-grained
  metering) removes the inflation of the scheduling and interrupt-flood
  attacks and the sampling component of the others.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: attack name → (source integrity, execution integrity, fine-grained
#: metering) — True where the property detects or neutralises the attack.
DEFENSE_COVERAGE: Dict[str, Tuple[bool, bool, bool]] = {
    "shell": (True, False, False),
    "library-ctor": (True, False, False),
    "library-subst": (True, False, False),
    "scheduling": (False, False, True),
    "thrashing": (False, True, False),
    "irq-flood": (False, True, True),
    "fault-flood": (False, True, True),
}

PROPERTY_NAMES = ("source integrity", "execution integrity",
                  "fine-grained metering")


def covering_properties(attack_name: str) -> List[str]:
    flags = DEFENSE_COVERAGE[attack_name]
    return [name for name, flag in zip(PROPERTY_NAMES, flags) if flag]


def uncovered_attacks() -> List[str]:
    """Attacks no single property handles (should be empty: the three
    properties jointly cover everything)."""
    return [name for name, flags in DEFENSE_COVERAGE.items()
            if not any(flags)]


def defense_coverage_table() -> str:
    header = ("attack", *PROPERTY_NAMES)
    rows = [(name,) + tuple("yes" if f else "-" for f in flags)
            for name, flags in DEFENSE_COVERAGE.items()]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]

    def fmt(row) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(header), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
