"""Execution-integrity monitoring.

The paper's second desirable property (§VI-B): detect tampering with a
program's *execution* — control flow derailed, the process stopped and
thrashed, its run perturbed by unsolicited system events.  The paper notes
this is an open problem in general; what a provider-side auditor *can* do
is watch the run's behavioural envelope.  The monitor checks a run's
observable statistics against a profile taken from a reference execution:
signal counts, traced stops, fault rates, involuntary-switch rates.  The
thrashing and flooding attacks leave unmistakable fingerprints here even
though they never touch the program text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.experiment import ExperimentResult


@dataclass(frozen=True)
class IntegrityViolation:
    """One behavioural-envelope violation."""

    metric: str
    observed: float
    allowed: float

    def __str__(self) -> str:
        return (f"{self.metric}: observed {self.observed:.1f} "
                f"> allowed {self.allowed:.1f}")


@dataclass
class ExecutionProfile:
    """The behavioural envelope from a reference run (per CPU-second)."""

    signals_per_s: float
    debug_exceptions_per_s: float
    major_faults_per_s: float
    involuntary_switches_per_s: float

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "ExecutionProfile":
        denom = max(result.total_s, 1e-9)
        return cls(
            signals_per_s=result.stats["signals_received"] / denom,
            debug_exceptions_per_s=result.stats["debug_exceptions"] / denom,
            major_faults_per_s=result.stats["major_faults"] / denom,
            involuntary_switches_per_s=(
                result.stats["involuntary_switches"] / denom),
        )


class ExecutionIntegrityMonitor:
    """Compares a production run against a reference profile."""

    #: metric → (profile attribute, multiplicative headroom, absolute slack)
    _RULES = {
        "signals_received": ("signals_per_s", 3.0, 10.0),
        "debug_exceptions": ("debug_exceptions_per_s", 3.0, 5.0),
        "major_faults": ("major_faults_per_s", 3.0, 10.0),
        "involuntary_switches": ("involuntary_switches_per_s", 4.0, 50.0),
    }

    def __init__(self, reference: ExperimentResult) -> None:
        self.profile = ExecutionProfile.from_result(reference)

    def audit(self, result: ExperimentResult) -> List[IntegrityViolation]:
        violations: List[IntegrityViolation] = []
        denom = max(result.total_s, 1e-9)
        for metric, (attr, headroom, slack) in self._RULES.items():
            observed_rate = result.stats[metric] / denom
            allowed = getattr(self.profile, attr) * headroom + slack / denom
            if observed_rate > allowed:
                violations.append(IntegrityViolation(
                    metric=f"{metric}_per_s",
                    observed=observed_rate,
                    allowed=allowed))
        return violations

    def clean(self, result: ExperimentResult) -> bool:
        return not self.audit(result)
