"""Source integrity via measured launch and TPM-style attestation.

The paper's §VI-B proposes TPM-based remote attestation [15, 16, 24] as the
path to *source integrity*: "only the expected code should be executed in
the context of a user process".  We model the standard measured-launch
pipeline:

* every platform component that will run in (or inject into) the user's
  process is *measured* (hashed) into a log: the shell, each shared library
  in the effective link order (LD_PRELOAD included!), the program image;
* the TPM signs a digest of the log (a quote) with a key the user trusts
  (modelled as HMAC with a per-machine secret — the kernel/TPM are trusted
  per the threat model);
* the user verifies the quote and compares the log against golden values
  from a pristine platform.

A patched shell, a planted constructor library or an interposed malloc all
change a measured digest, so the launch-time attacks are *detectable* —
while the runtime attacks (scheduling, thrashing, floods) measure clean,
which is exactly the paper's point that source integrity alone is not
sufficient.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from ..errors import ReproError
from ..kernel.loader.linker import build_link_map
from ..programs.base import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.shell import Shell


class AttestationError(ReproError):
    """A quote failed signature verification."""


@dataclass(frozen=True)
class Measurement:
    """One measured component."""

    component: str
    digest: str


@dataclass
class MeasurementLog:
    """Ordered measurement list (an SML, à la IMA)."""

    entries: List[Measurement] = field(default_factory=list)

    def extend(self, component: str, digest: str) -> None:
        self.entries.append(Measurement(component, digest))

    def aggregate(self) -> str:
        """PCR-style running hash over the entries."""
        pcr = b"\x00" * 32
        for entry in self.entries:
            pcr = hashlib.sha256(
                pcr + f"{entry.component}={entry.digest}".encode()).digest()
        return pcr.hex()

    def as_dict(self) -> Dict[str, str]:
        return {e.component: e.digest for e in self.entries}


@dataclass(frozen=True)
class TpmQuote:
    """A signed attestation of the measurement aggregate."""

    aggregate: str
    nonce: str
    signature: str


class TrustedPlatformModule:
    """The machine's TPM: holds a key, signs quotes.

    The kernel and hardware are trusted (paper §III-B), so an HMAC keyed
    by a per-machine secret stands in for the TPM's attestation identity
    key; what matters for the reproduction is the trust *semantics*, not
    the cryptography.
    """

    def __init__(self, machine_secret: bytes) -> None:
        self._secret = machine_secret

    def quote(self, log: MeasurementLog, nonce: str) -> TpmQuote:
        aggregate = log.aggregate()
        signature = hmac.new(
            self._secret, f"{aggregate}:{nonce}".encode(),
            hashlib.sha256).hexdigest()
        return TpmQuote(aggregate=aggregate, nonce=nonce, signature=signature)

    def verify_key(self) -> bytes:
        """The verification key the user holds (symmetric model)."""
        return self._secret


def _shell_digest(shell: "Shell") -> str:
    """Measure the shell 'binary': a pristine shell has no injected hook."""
    from ..kernel.loader.library import code_identity

    hasher = hashlib.sha256(b"bash-3.2")
    payload = shell.post_fork_payload
    if payload is not None:
        hasher.update(f"hook:{code_identity(payload.factory)}".encode())
    return hasher.hexdigest()


def measure_platform(machine: "Machine", shell: "Shell",
                     program: Program) -> MeasurementLog:
    """Measure everything that will execute in the user's process context.

    Mirrors the closure-attestation idea of [24]: shell, the *effective*
    link map (so LD_PRELOAD entries are measured too), and the program.
    """
    log = MeasurementLog()
    log.extend("shell", _shell_digest(shell))
    link_map = build_link_map(program, dict(shell.env),
                              machine.kernel.libraries)
    for lib in link_map:
        log.extend(f"lib:{lib.name}", lib.text_digest())
    log.extend(f"program:{program.name}", program.text_digest())
    return log


def verify_quote(quote: TpmQuote, log: MeasurementLog, nonce: str,
                 key: bytes) -> None:
    """Check the quote's freshness and signature against the log."""
    if quote.nonce != nonce:
        raise AttestationError("stale quote: nonce mismatch")
    expected = hmac.new(key, f"{log.aggregate()}:{nonce}".encode(),
                        hashlib.sha256).hexdigest()
    if not hmac.compare_digest(expected, quote.signature):
        raise AttestationError("quote signature invalid")
    if quote.aggregate != log.aggregate():
        raise AttestationError("aggregate does not match the log")


def compare_to_golden(log: MeasurementLog,
                      golden: MeasurementLog) -> List[str]:
    """Diff a measured platform against pristine golden values.

    Returns the names of components that are new, missing or modified —
    empty means source integrity holds.
    """
    measured = log.as_dict()
    expected = golden.as_dict()
    problems: List[str] = []
    for component, digest in measured.items():
        if component not in expected:
            problems.append(f"unexpected component {component}")
        elif expected[component] != digest:
            problems.append(f"modified component {component}")
    for component in expected:
        if component not in measured:
            problems.append(f"missing component {component}")
    return problems
