"""Trustworthy metering: oracle, billing, verification, attestation.

Implements the paper's §VI: the billing pipeline a utility-computing
provider would run on top of the kernel's accounting, the user-side bill
verification that defines trustworthiness (§III-B), and the three
defensive properties — source integrity (TPM-style measurement and
attestation), execution integrity (a monitor over the run), and
fine-grained metering (evaluated via the TSC accounting scheme).
"""

from .oracle import OracleReport, oracle_report
from .billing import Invoice, PricePlan, TrustReport, invoice_for
from .verification import BillVerifier, VerificationOutcome, VerificationReport
from .attestation import (
    AttestationError,
    MeasurementLog,
    TpmQuote,
    TrustedPlatformModule,
    measure_platform,
    verify_quote,
)
from .integrity import ExecutionIntegrityMonitor, IntegrityViolation
from .properties import DEFENSE_COVERAGE, defense_coverage_table
from .resources import (
    Discrepancy,
    ResourceEvent,
    ResourceMeter,
    TransactionLog,
    reconcile,
)
from .sampling import UsageSampler, UsageTimeline, audit_share
from .steal import StealReport, StealVerdict, audit_steal, audit_vm_result

__all__ = [
    "OracleReport",
    "oracle_report",
    "Invoice",
    "PricePlan",
    "TrustReport",
    "invoice_for",
    "BillVerifier",
    "VerificationOutcome",
    "VerificationReport",
    "AttestationError",
    "MeasurementLog",
    "TpmQuote",
    "TrustedPlatformModule",
    "measure_platform",
    "verify_quote",
    "ExecutionIntegrityMonitor",
    "IntegrityViolation",
    "DEFENSE_COVERAGE",
    "defense_coverage_table",
    "Discrepancy",
    "ResourceEvent",
    "ResourceMeter",
    "TransactionLog",
    "reconcile",
    "UsageSampler",
    "UsageTimeline",
    "audit_share",
    "StealReport",
    "StealVerdict",
    "audit_steal",
    "audit_vm_result",
]
