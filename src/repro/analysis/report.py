"""Plain-text rendering of regenerated figures.

The paper's figures are bar charts of utime/stime per program; we render
the same data as fixed-width ASCII so the examples and benches can print a
faithful, diffable analogue without plotting dependencies.
"""

from __future__ import annotations

from typing import List

from .figures import FigureResult

#: Characters used for the chart bars.
_UTIME_CHAR = "█"
_STIME_CHAR = "▒"


def _scaled(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, round(value / maximum * width))


def bar_chart(fig: FigureResult, width: int = 46) -> str:
    """Render a per-program normal/attacked figure as ASCII bars."""
    lines: List[str] = [f"{fig.fig_id}: {fig.title}",
                        f"({_UTIME_CHAR} utime, {_STIME_CHAR} stime; "
                        f"seconds, simulated)"]
    maximum = max((bar.total_s
                   for pair in fig.pairs.values() for bar in pair),
                  default=0.0)
    for name, (normal, attacked) in fig.pairs.items():
        for bar in (normal, attacked):
            u = _scaled(bar.utime_s, maximum, width)
            s = _scaled(bar.stime_s, maximum, width)
            lines.append(
                f"  {name:>2} {bar.label:<8} "
                f"{_UTIME_CHAR * u}{_STIME_CHAR * s} "
                f"{bar.utime_s:.3f}u+{bar.stime_s:.3f}s")
    return "\n".join(lines)


def series_chart(fig: FigureResult, width: int = 46) -> str:
    """Render a nice-sweep figure (Figs. 7/8) as grouped ASCII bars."""
    lines: List[str] = [f"{fig.fig_id}: {fig.title}",
                        "(victim vs attacker total CPU seconds, simulated)"]
    maximum = max((bar.total_s for _label, v, f in fig.series
                   for bar in (v, f)), default=0.0)
    for label, victim, attacker in fig.series:
        vbar = _UTIME_CHAR * _scaled(victim.total_s, maximum, width)
        fbar = _STIME_CHAR * _scaled(attacker.total_s, maximum, width)
        lines.append(f"  {label:>10} {victim.label:>4} {vbar} "
                     f"{victim.total_s:.3f}")
        lines.append(f"  {'':>10} {attacker.label:>4} {fbar} "
                     f"{attacker.total_s:.3f}")
    return "\n".join(lines)


def checks_report(fig: FigureResult) -> str:
    lines = [f"checks for {fig.fig_id}:"]
    for check in fig.checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"  [{status}] {check.name} — {check.detail}")
    return "\n".join(lines)


def figure_report(fig: FigureResult, width: int = 46) -> str:
    """Chart plus checks, ready to print."""
    chart = series_chart(fig, width) if fig.series else bar_chart(fig, width)
    return f"{chart}\n{checks_report(fig)}"
