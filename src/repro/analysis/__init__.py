"""Experiment harness and figure regeneration."""

from .experiment import ExperimentResult, run_experiment
from .figures import (
    FIGURES,
    FigureResult,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    run_figure,
)
from .report import bar_chart, figure_report, series_chart

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "FIGURES",
    "FigureResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "run_figure",
    "bar_chart",
    "series_chart",
    "figure_report",
]
