"""Cost-model calibration: measure the simulator's primitive costs.

Runs micro-experiments that isolate one kernel primitive each (null
syscall, fork+wait+exit cycle, context-switch pair, minor fault, lib call,
watchpoint round-trip) and reports the simulated cost per operation under
TSC accounting — so the values in :class:`~repro.config.CostModel` can be
checked against the literature for the modelled era, and so changes to the
engine that accidentally shift costs are caught by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import MachineConfig, default_config
from ..hw.machine import Machine
from ..programs.base import GuestFunction
from ..programs.ops import CallLib, Compute, Mem, Provenance, Syscall
from ..programs.stdlib import install_standard_libraries


@dataclass
class Calibration:
    """Measured per-operation costs, in microseconds of simulated time."""

    null_syscall_us: float
    fork_wait_exit_us: float
    minor_fault_us: float
    lib_call_us: float
    thrash_roundtrip_us: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "null_syscall_us": self.null_syscall_us,
            "fork_wait_exit_us": self.fork_wait_exit_us,
            "minor_fault_us": self.minor_fault_us,
            "lib_call_us": self.lib_call_us,
            "thrash_roundtrip_us": self.thrash_roundtrip_us,
        }

    def render(self) -> str:
        lines = ["simulated primitive costs (TSC-measured):"]
        for name, value in self.as_dict().items():
            lines.append(f"  {name:>20}: {value:8.3f} us")
        return "\n".join(lines)


def _tsc_machine(cfg: Optional[MachineConfig]) -> Machine:
    base = cfg or default_config()
    machine = Machine(base.with_(accounting="tsc"))
    install_standard_libraries(machine.kernel.libraries)
    return machine


def _measure(cfg: Optional[MachineConfig], body_factory, count: int,
             needed_libs=()) -> float:
    """Total billed us of a task running ``body_factory`` / ``count``."""
    from ..kernel.loader.linker import LinkMap

    machine = _tsc_machine(cfg)
    fn = GuestFunction("calib", body_factory, Provenance.USER)
    task = machine.kernel.spawn(fn, name="calib")
    if needed_libs:
        task.guest_ctx.shared["_link_map"] = LinkMap(
            [machine.kernel.libraries.lookup(name) for name in needed_libs])
    machine.run_until_exit([task], max_ns=120 * 10**9)
    if task.exit_code != 0:
        raise RuntimeError(
            f"calibration body failed with exit code {task.exit_code}")
    usage = machine.kernel.accounting.usage(task)
    return usage.total_ns / count / 1e3


def calibrate(cfg: Optional[MachineConfig] = None,
              iterations: int = 200) -> Calibration:
    """Measure the primitive costs on (a TSC-accounting copy of) ``cfg``."""

    def null_syscalls(ctx):
        for _ in range(iterations):
            yield Syscall("getpid")

    def fork_cycles(ctx):
        for _ in range(iterations):
            pid = yield Syscall("fork", (None,))
            yield Syscall("waitpid", (pid,))

    def minor_faults(ctx):
        addr = yield Syscall("mmap", (iterations,))
        for page in range(iterations):
            yield Mem(addr + page * 4096, write=True)

    def lib_calls(ctx):
        for _ in range(iterations):
            yield CallLib("sqrt", (2.0,))

    # Thrashing round-trip: victim-side cost per watchpoint hit, derived
    # from a real traced run.
    from ..analysis.experiment import run_experiment
    from ..attacks.thrashing import ThrashingAttack
    from ..programs.workloads import make_ourprogram

    tsc_cfg = (cfg or default_config()).with_(accounting="tsc")
    baseline = run_experiment(make_ourprogram(iterations=iterations),
                              cfg=tsc_cfg)
    thrashed = run_experiment(make_ourprogram(iterations=iterations),
                              ThrashingAttack("i"), cfg=tsc_cfg)
    hits = max(1, thrashed.stats["debug_exceptions"])
    thrash_us = (thrashed.usage.total_ns - baseline.usage.total_ns) / hits / 1e3

    # The fork measurement includes the child's cost as seen by the parent
    # account only; add the reaped children via cutime (measured machine).
    machine = _tsc_machine(cfg)
    fn = GuestFunction("calib-fork", fork_cycles, Provenance.USER)
    task = machine.kernel.spawn(fn, name="calib-fork")
    machine.run_until_exit([task], max_ns=120 * 10**9)
    usage = machine.kernel.accounting.usage(task)
    fork_us = (usage.total_ns + task.acct_cutime_ns
               + task.acct_cstime_ns) / iterations / 1e3

    # Subtract the fixed task-lifecycle overhead (spawn/exit) so the
    # per-operation figures isolate the primitive itself.
    def empty(ctx):
        yield Compute(0)

    overhead_us = _measure(cfg, empty, iterations)

    def net(raw_us: float) -> float:
        return max(raw_us - overhead_us, 0.0)

    return Calibration(
        null_syscall_us=net(_measure(cfg, null_syscalls, iterations)),
        fork_wait_exit_us=fork_us,
        minor_fault_us=net(_measure(cfg, minor_faults, iterations)),
        lib_call_us=net(_measure(cfg, lib_calls, iterations,
                                 needed_libs=("libm",))),
        thrash_roundtrip_us=max(thrash_us, 0.0),
    )
