"""Run one victim program on one machine, with or without an attack.

``run_experiment`` is the workhorse behind every figure: boot a fresh
machine, tamper per the attack, launch the victim through the shell the way
the paper does, run to completion, and collect *both* views of the truth —
the kernel's billing view (what the user is charged) and the oracle's
provenance-exact view (what actually happened).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..attacks.base import Attack, NoAttack
from ..config import MachineConfig, default_config
from ..hw.machine import Machine
from ..kernel.accounting import CpuUsage
from ..kernel.process import Task
from ..programs.base import Program
from ..programs.stdlib import install_standard_libraries

#: Generous per-run ceiling; a run that hits it is a harness bug.
DEFAULT_MAX_NS = 3_000 * 1_000_000_000


@dataclass
class ExperimentResult:
    """Everything measured from one victim run."""

    program: str
    attack: str
    #: Billing view: thread-group utime/stime as getrusage reports them.
    usage: CpuUsage
    #: Attacker's own billed usage (self + reaped children), if any.
    attacker_usage: Optional[CpuUsage]
    #: Wall-clock (simulated) time at victim exit.
    wall_ns: int
    #: Final getrusage dict the victim logged at exit (None if it was
    #: killed before reaching it).
    rusage: Optional[Dict[str, object]]
    #: Ground truth: seconds by provenance, summed over the thread group.
    oracle_seconds: Dict[str, float]
    #: Assorted counters.
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def utime_s(self) -> float:
        return self.usage.utime_seconds

    @property
    def stime_s(self) -> float:
        return self.usage.stime_seconds

    @property
    def total_s(self) -> float:
        return self.usage.total_seconds

    @property
    def wall_s(self) -> float:
        return self.wall_ns / 1e9

    def oracle_own_s(self) -> float:
        """Ground-truth seconds of legitimate work (user + lib + kernel
        service for them) — what an honest bill would charge."""
        legit = (self.oracle_seconds.get("user", 0.0)
                 + self.oracle_seconds.get("lib", 0.0)
                 + self.oracle_seconds.get("system", 0.0))
        return legit

    def oracle_injected_s(self) -> float:
        return self.oracle_seconds.get("injected", 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, exact (all times stay integral ns) — what the
        runner's result cache persists as JSON."""
        return {
            "program": self.program,
            "attack": self.attack,
            "usage": {"utime_ns": self.usage.utime_ns,
                      "stime_ns": self.usage.stime_ns},
            "attacker_usage": (
                None if self.attacker_usage is None else
                {"utime_ns": self.attacker_usage.utime_ns,
                 "stime_ns": self.attacker_usage.stime_ns}),
            "wall_ns": self.wall_ns,
            "rusage": self.rusage,
            "oracle_seconds": dict(self.oracle_seconds),
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; raises ``KeyError``/``TypeError`` on
        malformed documents (the cache treats that as a miss)."""
        attacker = doc["attacker_usage"]
        return cls(
            program=doc["program"],
            attack=doc["attack"],
            usage=CpuUsage(**doc["usage"]),
            attacker_usage=None if attacker is None else CpuUsage(**attacker),
            wall_ns=doc["wall_ns"],
            rusage=doc["rusage"],
            oracle_seconds=dict(doc["oracle_seconds"]),
            stats=dict(doc["stats"]),
        )


def _group_usage(machine: Machine, task: Task) -> CpuUsage:
    usage = CpuUsage()
    for member in machine.kernel.thread_group(task):
        usage = usage + machine.kernel.accounting.usage(member)
    return usage


def _group_oracle_seconds(machine: Machine, task: Task) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for member in machine.kernel.thread_group(task):
        for (_user, prov), ns in member.oracle_ns.items():
            totals[prov.value] = totals.get(prov.value, 0.0) + ns / 1e9
    return totals


def run_experiment(program: Program,
                   attack: Optional[Attack] = None,
                   cfg: Optional[MachineConfig] = None,
                   run_attacker_to_completion: Optional[bool] = None,
                   max_ns: int = DEFAULT_MAX_NS,
                   extra_libraries=(),
                   trace=(),
                   check_invariants: Optional[bool] = None,
                   machine_hook=None,
                   faults=None,
                   timesync=None) -> ExperimentResult:
    """Execute ``program`` under ``attack`` on a fresh machine.

    ``extra_libraries`` installs additional shared objects (e.g. a plugin
    the program dlopens) before the attack's ``install`` hook runs, so
    attacks may tamper with them.

    ``check_invariants`` enables the runtime invariant checker for this
    run; None defers to the process-wide default (see
    :func:`repro.verify.set_default_invariants`).  ``machine_hook``, when
    given, is called with the booted :class:`Machine` before any library
    or attack installation — the fuzzer uses it to inject deliberate
    accounting corruption.  ``faults`` (a :class:`~repro.faults.FaultPlan`
    or mapping) injects deterministic hardware misbehaviour; fault and
    watchdog counters land in ``stats`` when a plan is active.
    ``timesync`` (a :class:`~repro.timesync.TimeSyncSpec` or mapping)
    attaches the simulated network time plane; ``timesync_*`` counters —
    including the cross-host billing skew — land in ``stats`` when the
    spec is active.
    """
    attack = attack or NoAttack()
    if check_invariants is None:
        from ..verify.invariants import default_invariants
        check_invariants = default_invariants()
    machine = Machine(cfg or default_config(), trace=trace,
                      invariants=bool(check_invariants), faults=faults,
                      timesync=timesync)
    if machine_hook is not None:
        machine_hook(machine)
    install_standard_libraries(machine.kernel.libraries)
    for library in extra_libraries:
        machine.kernel.libraries.install(library, replace=True)
    shell = machine.new_shell()

    attack.install(machine, shell)
    attack.pre_launch(machine, shell)
    victim = shell.run_command(program)
    attack.engage(machine, victim)

    machine.run_until_exit([victim], max_ns=max_ns)
    victim_wall_ns = machine.clock.now

    # The scheduling experiments report the attacker's own CPU time at its
    # exit (Fig. 7/8 plot both bars), so optionally let it finish.
    if run_attacker_to_completion is None:
        run_attacker_to_completion = attack.wait_for_attacker
    if run_attacker_to_completion and attack.attacker_tasks:
        live = [t for t in attack.attacker_tasks if t.alive]
        if live:
            machine.run_until_exit(live, max_ns=max_ns)
    attack.cleanup(machine)

    attacker_usage: Optional[CpuUsage] = None
    if attack.attacker_tasks:
        attacker_usage = CpuUsage()
        for atask in attack.attacker_tasks:
            own = machine.kernel.accounting.usage(atask)
            attacker_usage = attacker_usage + own + CpuUsage(
                atask.acct_cutime_ns, atask.acct_cstime_ns)

    rusage = None
    if victim.guest_ctx is not None:
        logged = victim.guest_ctx.shared.get("rusage")
        if isinstance(logged, dict):
            rusage = logged

    if machine.watchdog is not None:
        # Close the trailing trust interval before the final sweep so the
        # uncertainty totals in stats cover the whole run.
        machine.watchdog.finalize(machine.clock.now)
    if machine.timesync is not None:
        # Settle the disciplined clock and run the timesync-conservation
        # cross-check before the full sweep.
        machine.timesync.finalize(machine.clock.now)
    machine.check_invariants()

    group = machine.kernel.thread_group(victim)
    stats = {
        "minor_faults": sum(t.minor_faults for t in group),
        "major_faults": sum(t.major_faults for t in group),
        "voluntary_switches": sum(t.voluntary_switches for t in group),
        "involuntary_switches": sum(t.involuntary_switches for t in group),
        "debug_exceptions": sum(t.debug_exceptions for t in group),
        "signals_received": sum(t.signals_received for t in group),
        "context_switches_total": machine.kernel.context_switches,
        "ticks": machine.kernel.timekeeper.jiffies,
        "swap_ins": machine.kernel.mm.swap_ins,
        "swap_outs": machine.kernel.mm.swap_outs,
        "oom_kills": machine.kernel.mm.oom_kills,
        "nic_packets": machine.nic.packets_received,
        "exit_code": victim.exit_code,
    }
    if machine.fault_plan is not None:
        stats.update(machine.fault_stats())
        if machine.invariant_checker is not None:
            stats["tolerated_violations"] = \
                len(machine.invariant_checker.tolerated_violations)
    if machine.timesync is not None:
        # Timesync counters exist only on timesync-active runs, same
        # discipline as fault stats.
        stats.update(machine.timesync.stats())
    if machine.cfg.nproc > 1:
        # SMP counters only exist on SMP runs so uniprocessor results
        # (and their cached digests) stay byte-identical to pre-SMP ones.
        stats["nproc"] = machine.cfg.nproc
        stats["migrations_total"] = sum(
            t.migrations for t in machine.kernel.tasks.values())
        stats["balance_moves"] = machine.kernel.balance_moves
        if attack.attacker_tasks:
            stats["attacker_oracle_ns"] = sum(
                sum(t.oracle_ns.values()) for t in attack.attacker_tasks)

    return ExperimentResult(
        program=program.name,
        attack=attack.name,
        usage=_group_usage(machine, victim),
        attacker_usage=attacker_usage,
        wall_ns=victim_wall_ns,
        rusage=rusage,
        oracle_seconds=_group_oracle_seconds(machine, victim),
        stats=stats,
    )
