"""Regeneration of the paper's evaluation figures (Figs. 4-11).

Workloads are scaled to ~1/200 of the paper's run lengths (DESIGN.md §2);
every check is on *shape* — who gets inflated, utime vs stime, ordering
across programs, monotonicity in nice, sum conservation — never absolute
seconds.  ``PAPER_REFERENCE`` records values eyeballed from the published
figures for side-by-side context in EXPERIMENTS.md; they are approximate by
nature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..config import MachineConfig, default_config
from ..programs.base import Program
from ..programs.workloads import make_paper_program, watched_variable
from ..runner import BatchRunner, ExperimentSpec, run_spec
from .experiment import ExperimentResult

#: The injected payload for the launch-time attacks: the scaled analogue of
#: the paper's ~34-second loop (~0.34 s at 2.53 GHz).
LAUNCH_PAYLOAD_CYCLES = 860_000_000

#: Per-call theft for the function-substitution attack (~0.24 ms).
SUBST_CYCLES_PER_CALL = 600_000

#: Packet rate for the interrupt flood.
FLOOD_RATE_PPS = 20_000.0

#: Nice sweep of Figs. 7-8 ("no attack" first, then rising priority).
NICE_SWEEP: Tuple[Optional[int], ...] = (0, -5, -10, -15, -20)

#: Fork-chain length for the scheduling figures.
SCHED_FORKS = 16_000


def paper_workload_params(scale: float = 1.0) -> Dict[str, Dict[str, int]]:
    """Factory kwargs for the four evaluation programs at the standard
    scaled sizes — the declarative form :class:`ExperimentSpec` points
    carry across process boundaries.

    ``scale`` stretches run lengths (1.0 ≈ paper/200); iteration counts
    also set the thrashing-attack hit counts, mirroring the paper's
    per-variable access counts.
    """

    def n(x: int) -> int:
        return max(1, int(x * scale))

    return {
        "O": {"iterations": n(5_000), "cycles_per_iter": 430_000,
              "mallocs": n(400)},
        "P": {"chunks": n(50), "y_touches_per_chunk": 400,
              "cycles_per_chunk": 9_000_000},
        "W": {"loops": n(8_000)},
        "B": {"threads": 8, "candidates_per_thread": n(1_300),
              "per_thread_tries": 1},
    }


def paper_workloads(scale: float = 1.0) -> Dict[str, Program]:
    """The four evaluation programs, built from the standard params."""
    return {name: make_paper_program(name, **kwargs)
            for name, kwargs in paper_workload_params(scale).items()}


def _execute(specs: List[ExperimentSpec],
             runner: Optional[BatchRunner]) -> List[ExperimentResult]:
    """Run sweep points through ``runner`` (parallel/cached) or, absent
    one, serially in-process — the two paths are equivalent by
    construction and by the equivalence test suite."""
    if runner is None:
        return [run_spec(spec) for spec in specs]
    return runner.run_results(specs)


@dataclass
class Bar:
    """One (utime, stime) bar of a figure."""

    label: str
    utime_s: float
    stime_s: float

    @property
    def total_s(self) -> float:
        return self.utime_s + self.stime_s


@dataclass
class Check:
    """One shape assertion, with its observed evidence."""

    name: str
    passed: bool
    detail: str


@dataclass
class FigureResult:
    """A regenerated figure: bars/series plus shape checks."""

    fig_id: str
    title: str
    #: For the per-program figures: program → (normal bar, attacked bar).
    pairs: Dict[str, Tuple[Bar, Bar]] = field(default_factory=dict)
    #: For the sweep figures: label → (victim bar, attacker bar).
    series: List[Tuple[str, Bar, Bar]] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)
    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> List[Check]:
        return [c for c in self.checks if not c.passed]


def _bar(label: str, res: ExperimentResult) -> Bar:
    return Bar(label, res.utime_s, res.stime_s)


#: (attack registry name, constructor kwargs) for one figure point.
AttackSpec = Tuple[str, Dict[str, Any]]


def _run_pairs(fig_id: str, title: str,
               attack_for: Callable[[str], AttackSpec],
               scale: float, cfg: Optional[MachineConfig],
               programs: Optional[List[str]] = None,
               runner: Optional[BatchRunner] = None) -> FigureResult:
    """Run normal + attacked for each paper program; no checks yet."""
    params = paper_workload_params(scale)
    names = programs or list(params)
    specs: List[ExperimentSpec] = []
    for name in names:
        attack_name, attack_kwargs = attack_for(name)
        specs.append(ExperimentSpec(
            program=name, program_kwargs=params[name], cfg=cfg,
            label=f"{fig_id}:{name}:normal"))
        specs.append(ExperimentSpec(
            program=name, program_kwargs=params[name],
            attack=attack_name, attack_kwargs=attack_kwargs, cfg=cfg,
            label=f"{fig_id}:{name}:attacked"))
    results = _execute(specs, runner)
    fig = FigureResult(fig_id=fig_id, title=title)
    for name, (normal, attacked) in zip(names, zip(results[::2],
                                                   results[1::2])):
        fig.pairs[name] = (_bar("normal", normal), _bar("attacked", attacked))
        fig.results[f"{name}:normal"] = normal
        fig.results[f"{name}:attacked"] = attacked
    return fig


# ---------------------------------------------------------------------------
# shape checks
# ---------------------------------------------------------------------------

def _check_launch_attack_shape(fig: FigureResult,
                               payload_s: float) -> None:
    """Figs. 4/5: utime grows by ~the payload for every program; stime
    unaffected."""
    deltas = []
    for name, (normal, attacked) in fig.pairs.items():
        du = attacked.utime_s - normal.utime_s
        ds = attacked.stime_s - normal.stime_s
        deltas.append(du)
        fig.checks.append(Check(
            f"{name}: utime inflated by ~payload",
            0.7 * payload_s <= du <= 1.5 * payload_s,
            f"delta_utime={du:.3f}s payload={payload_s:.3f}s"))
        fig.checks.append(Check(
            f"{name}: stime unaffected",
            abs(ds) <= max(0.1 * normal.total_s, 0.02),
            f"delta_stime={ds:.3f}s"))
    if deltas:
        spread = max(deltas) - min(deltas)
        fig.checks.append(Check(
            "equal growth across programs",
            spread <= 0.35 * max(deltas),
            f"deltas={['%.3f' % d for d in deltas]}"))


def _check_all_inflated(fig: FigureResult, min_rel: float,
                        component: str) -> None:
    for name, (normal, attacked) in fig.pairs.items():
        if component == "total":
            before, after = normal.total_s, attacked.total_s
        elif component == "utime":
            before, after = normal.utime_s, attacked.utime_s
        else:
            before, after = normal.stime_s, attacked.stime_s
        grew = after - before
        fig.checks.append(Check(
            f"{name}: {component} inflated",
            grew >= min_rel * max(normal.total_s, 1e-9),
            f"{component}: {before:.3f} -> {after:.3f} (+{grew:.3f})"))


# ---------------------------------------------------------------------------
# the figures
# ---------------------------------------------------------------------------

def figure4(scale: float = 1.0,
            cfg: Optional[MachineConfig] = None,
            runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 4: the shell attack on O, P, W, B."""
    fig = _run_pairs(
        "fig4", "Shell attack",
        lambda name: ("shell", {"payload_cycles": LAUNCH_PAYLOAD_CYCLES}),
        scale, cfg, runner=runner)
    payload_s = LAUNCH_PAYLOAD_CYCLES / (cfg or default_config()).cpu_freq_hz
    _check_launch_attack_shape(fig, payload_s)
    fig.meta["payload_seconds"] = payload_s
    return fig


def figure5(scale: float = 1.0,
            cfg: Optional[MachineConfig] = None,
            runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 5: the shared-library constructor attack."""
    fig = _run_pairs(
        "fig5", "Shared-library constructor attack",
        lambda name: ("library-ctor",
                      {"payload_cycles": LAUNCH_PAYLOAD_CYCLES}),
        scale, cfg, runner=runner)
    payload_s = LAUNCH_PAYLOAD_CYCLES / (cfg or default_config()).cpu_freq_hz
    _check_launch_attack_shape(fig, payload_s)
    fig.meta["payload_seconds"] = payload_s
    return fig


def figure6(scale: float = 1.0,
            cfg: Optional[MachineConfig] = None,
            runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 6: the function-substitution attack (fake malloc/sqrt).

    Inflation is proportional to each program's call count into the
    interposed functions — the amplification the paper highlights.
    """
    fig = _run_pairs(
        "fig6", "Library function-substitution attack",
        lambda name: ("library-subst",
                      {"symbols": ("malloc", "sqrt"),
                       "cycles_per_call": SUBST_CYCLES_PER_CALL}),
        scale, cfg, runner=runner)
    _check_all_inflated(fig, min_rel=0.03, component="utime")
    for name, (normal, attacked) in fig.pairs.items():
        ds = attacked.stime_s - normal.stime_s
        fig.checks.append(Check(
            f"{name}: stime unaffected",
            abs(ds) <= max(0.1 * normal.total_s, 0.02),
            f"delta_stime={ds:.3f}s"))
    # Amplification: W (sqrt every cycle) must gain more than the launch
    # payload would give it, and more than any lighter caller.
    gains = {name: attacked.utime_s - normal.utime_s
             for name, (normal, attacked) in fig.pairs.items()}
    fig.checks.append(Check(
        "amplified for the heaviest caller (W)",
        gains.get("W", 0.0) >= max(g for n, g in gains.items() if n != "W"),
        f"gains={ {n: round(g, 3) for n, g in gains.items()} }"))
    fig.meta["cycles_per_call"] = SUBST_CYCLES_PER_CALL
    return fig


def _sched_figure(fig_id: str, title: str, victim_name: str,
                  scale: float, cfg: Optional[MachineConfig],
                  runner: Optional[BatchRunner] = None) -> FigureResult:
    fig = FigureResult(fig_id=fig_id, title=title)
    forks = max(1, int(SCHED_FORKS * scale))
    victim_kwargs = paper_workload_params(scale)[victim_name]
    # "No attack": victim and Fork each run alone (the leftmost bar pair),
    # then the nice sweep.
    specs = [
        ExperimentSpec(program=victim_name, program_kwargs=victim_kwargs,
                       cfg=cfg, label=f"{fig_id}:baseline"),
        ExperimentSpec(program="fork", program_kwargs={"forks": forks},
                       cfg=cfg, label=f"{fig_id}:fork-alone"),
    ]
    for nice in NICE_SWEEP:
        specs.append(ExperimentSpec(
            program=victim_name, program_kwargs=victim_kwargs,
            attack="scheduling", attack_kwargs={"nice": nice, "forks": forks},
            cfg=cfg, label=f"{fig_id}:nice {nice}"))
    results = _execute(specs, runner)

    baseline, alone = results[0], results[1]
    # Fork's bar includes its reaped children, as time(1) would report.
    cutime = (alone.rusage or {}).get("cutime_ns", 0) / 1e9
    cstime = (alone.rusage or {}).get("cstime_ns", 0) / 1e9
    fig.series.append(("no attack",
                       _bar(victim_name, baseline),
                       Bar("Fork", alone.utime_s + cutime,
                           alone.stime_s + cstime)))
    fig.results["baseline"] = baseline
    fig.results["fork-alone"] = alone

    for nice, res in zip(NICE_SWEEP, results[2:]):
        label = f"nice {nice}"
        atk = res.attacker_usage
        fig.series.append((label,
                           _bar(victim_name, res),
                           Bar("Fork", atk.utime_seconds, atk.stime_seconds)))
        fig.results[label] = res
    return fig


def figure7(scale: float = 1.0,
            cfg: Optional[MachineConfig] = None,
            runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 7: the process-scheduling attack on Whetstone.

    Expected shape: W's billed time rises monotonically as the attacker's
    priority rises, the Fork program's falls, and W+Fork stays roughly
    constant (the miscounted time moves between accounts).
    """
    fig = _sched_figure("fig7", "Process scheduling attack on Whetstone",
                        "W", scale, cfg, runner=runner)
    baseline = fig.series[0][1].total_s
    victim_totals = [v.total_s for _label, v, _f in fig.series[1:]]
    fork_totals = [f.total_s for _label, _v, f in fig.series[1:]]
    fig.checks.append(Check(
        "victim time rises with attacker priority",
        victim_totals[-1] > victim_totals[0] >= baseline - 0.05,
        f"victim totals={['%.3f' % v for v in victim_totals]}"))
    fig.checks.append(Check(
        "attacker time falls with its priority",
        fork_totals[-1] < fork_totals[0],
        f"fork totals={['%.3f' % v for v in fork_totals]}"))
    fig.checks.append(Check(
        "strong inflation at nice -20",
        victim_totals[-1] >= 1.15 * baseline,
        f"baseline={baseline:.3f} at-20={victim_totals[-1]:.3f}"))
    sums = [v.total_s + f.total_s for _l, v, f in fig.series[1:]]
    fig.checks.append(Check(
        "victim+attacker sum roughly conserved",
        max(sums) <= 1.25 * min(sums),
        f"sums={['%.3f' % s for s in sums]}"))
    return fig


def figure8(scale: float = 1.0,
            cfg: Optional[MachineConfig] = None,
            runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 8: the scheduling attack on Brute — ineffective on the
    multi-threaded victim."""
    fig = _sched_figure("fig8", "Process scheduling attack on Brute",
                        "B", scale, cfg, runner=runner)
    baseline = fig.series[0][1].total_s
    victim_totals = [v.total_s for _label, v, _f in fig.series[1:]]
    worst_rel = max(victim_totals) / baseline if baseline else 1.0
    fig.checks.append(Check(
        "attack ineffective on the multi-threaded victim",
        worst_rel <= 1.30,
        f"baseline={baseline:.3f} worst={max(victim_totals):.3f} "
        f"(x{worst_rel:.2f})"))
    fig.meta["worst_relative_inflation"] = worst_rel
    return fig


def figure9(scale: float = 1.0,
            cfg: Optional[MachineConfig] = None,
            runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 9: the execution-thrashing attack — mostly stime growth."""
    fig = _run_pairs(
        "fig9", "Execution thrashing attack",
        lambda name: ("thrashing", {"watch_symbol": watched_variable(name)}),
        scale, cfg, runner=runner)
    for name, (normal, attacked) in fig.pairs.items():
        du = attacked.utime_s - normal.utime_s
        ds = attacked.stime_s - normal.stime_s
        fig.checks.append(Check(
            f"{name}: stime inflated",
            ds > max(0.02, abs(du)),
            f"delta_stime={ds:.3f}s delta_utime={du:.3f}s"))
        hits = fig.results[f"{name}:attacked"].stats["debug_exceptions"]
        fig.checks.append(Check(
            f"{name}: watchpoint fired per hot-variable access",
            hits > 0,
            f"debug_exceptions={hits}"))
    return fig


def figure10(scale: float = 1.0,
             cfg: Optional[MachineConfig] = None,
             runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 10: the interrupt-flooding attack — slight stime increase."""
    fig = _run_pairs(
        "fig10", "Interrupt flooding attack",
        lambda name: ("irq-flood", {"rate_pps": FLOOD_RATE_PPS}),
        scale, cfg, runner=runner)
    for name, (normal, attacked) in fig.pairs.items():
        ds = attacked.stime_s - normal.stime_s
        du = attacked.utime_s - normal.utime_s
        fig.checks.append(Check(
            f"{name}: stime slightly inflated",
            ds > 0.0,
            f"delta_stime={ds:.3f}s"))
        fig.checks.append(Check(
            f"{name}: weak attack (bounded effect)",
            ds + max(du, 0.0) <= 0.35 * normal.total_s,
            f"relative={100 * (ds + max(du, 0)) / max(normal.total_s, 1e-9):.1f}%"))
    return fig


def fig11_config() -> MachineConfig:
    """Machine for the exception flood: scaled-down RAM so the hog's
    eviction sweep period relates to the victims' run lengths the way the
    paper's 2 GiB does to its ~minutes-long runs."""
    from ..config import MemoryConfig

    return default_config(memory=MemoryConfig(
        ram_bytes=16 * 1024 * 1024, swap_bytes=128 * 1024 * 1024))


def figure11(scale: float = 1.0,
             cfg: Optional[MachineConfig] = None,
             runner: Optional[BatchRunner] = None) -> FigureResult:
    """Fig. 11: the exception-flooding attack — stime up from direct
    reclaim, fault handling and swap-I/O completions."""
    fig = _run_pairs(
        "fig11", "Exception flooding attack",
        lambda name: ("fault-flood", {}),
        scale, cfg or fig11_config(), runner=runner)
    for name, (normal, attacked) in fig.pairs.items():
        ds = attacked.stime_s - normal.stime_s
        res = fig.results[f"{name}:attacked"]
        fig.checks.append(Check(
            f"{name}: stime inflated",
            ds > 0.0,
            f"delta_stime={ds:.3f}s"))
        fig.checks.append(Check(
            f"{name}: system thrashing during the run",
            res.stats["swap_outs"] > 200,
            f"swap_outs={res.stats['swap_outs']} "
            f"swap_ins={res.stats['swap_ins']}"))
    fig.checks.append(Check(
        "no OOM kill of the victim",
        all(r.stats["exit_code"] == 0
            for key, r in fig.results.items() if key.endswith(":attacked")),
        "exit codes: " + str({k: r.stats["exit_code"]
                              for k, r in fig.results.items()})))
    return fig


#: Burn fractions swept by the VM scheduling figure.
VM_BURN_FRACTIONS: Tuple[float, ...] = (0.25, 0.5, 0.75, 0.9)


def figure_vm_sched(scale: float = 1.0,
                    cfg: Optional[MachineConfig] = None,
                    runner: Optional[BatchRunner] = None) -> FigureResult:
    """VM-level analogue of Fig. 7: the hypervisor scheduling attack.

    A victim VM runs Whetstone while a co-resident attacker VM burns a
    rising fraction of each hypervisor accounting tick and sleeps across
    the sampling edge (Zhou et al., arXiv:1103.0759).  Expected shape: the
    victim's *billed* CPU inflates monotonically with the attacker's burn
    fraction while its actually-ran time stays flat, the attacker's bill
    stays pinned near zero however much it burns, and the victim's
    guest-side steal estimator measures the loss the host reports.
    """
    wkw = paper_workload_params(scale)["W"]
    specs = [ExperimentSpec(program="W", program_kwargs=wkw, attack=None,
                            vm={}, cfg=cfg, label="vm:W:none")]
    for fraction in VM_BURN_FRACTIONS:
        specs.append(ExperimentSpec(
            program="W", program_kwargs=wkw, attack="vm-sched",
            attack_kwargs={"burn_fraction": fraction}, vm={}, cfg=cfg,
            label=f"vm:W:burn={fraction}"))
    results = _execute(specs, runner)

    fig = FigureResult(
        "vmsched", "VM scheduling attack: co-resident billing inflation")
    tick_ns = 10_000_000  # HypervisorConfig default; vm={} keeps it
    baseline = results[0]
    fig.results["baseline"] = baseline
    fig.series.append(("no attack", _bar("victim", baseline),
                       Bar("attacker", 0.0, 0.0)))
    for fraction, res in zip(VM_BURN_FRACTIONS, results[1:]):
        label = f"burn={fraction}"
        fig.results[label] = res
        attacker = res.attacker_usage
        fig.series.append((
            label, _bar("victim billed", res),
            Bar("attacker billed", attacker.utime_ns / 1e9,
                attacker.stime_ns / 1e9)))
    fig.meta = {
        "burn_fractions": list(VM_BURN_FRACTIONS),
        "hv_tick_ns": tick_ns,
        "victim_ran_s": [r.stats["victim_ran_ns"] / 1e9 for r in results],
        "victim_steal_s": [r.stats["victim_steal_ns"] / 1e9
                           for r in results],
        "est_steal_s": [r.stats["est_steal_ns"] / 1e9 for r in results],
    }

    base_billed = baseline.usage.total_ns
    base_ran = baseline.stats["victim_ran_ns"]
    fig.checks.append(Check(
        "baseline bill tracks actual run time",
        abs(base_billed - base_ran) <= max(2 * tick_ns, 0.1 * base_ran),
        f"billed={base_billed / 1e9:.3f}s ran={base_ran / 1e9:.3f}s"))
    victim_billed = [r.usage.total_ns for r in results[1:]]
    fig.checks.append(Check(
        "victim bill inflates monotonically with burn fraction",
        all(b >= a for a, b in zip(victim_billed, victim_billed[1:]))
        and victim_billed[-1] > base_billed,
        f"billed={[round(b / 1e9, 3) for b in victim_billed]}s "
        f"baseline={base_billed / 1e9:.3f}s"))
    fig.checks.append(Check(
        f"strong inflation at burn={VM_BURN_FRACTIONS[-1]}",
        victim_billed[-1] >= 2 * base_billed,
        f"x{victim_billed[-1] / base_billed:.2f} over baseline"))
    attacker_billed = [r.attacker_usage.total_ns for r in results[1:]]
    attacker_ran = [r.stats["attacker_ran_ns"] for r in results[1:]]
    fig.checks.append(Check(
        "attacker billed ~nothing for real burn",
        all(b <= max(2 * tick_ns, 0.05 * v)
            for b, v in zip(attacker_billed, victim_billed))
        and attacker_ran[-1] > 2 * tick_ns,
        f"attacker billed={[round(b / 1e9, 3) for b in attacker_billed]}s "
        f"ran={[round(r / 1e9, 3) for r in attacker_ran]}s"))
    ran = [r.stats["victim_ran_ns"] for r in results]
    fig.checks.append(Check(
        "victim's actual run time stays flat",
        max(ran) <= 1.05 * min(ran),
        f"ran={[round(r / 1e9, 3) for r in ran]}s"))
    est_ok = []
    for res in results[1:]:
        est = res.stats["est_steal_ns"]
        rep = res.stats["reported_steal_ns"]
        est_ok.append(abs(est - rep) <= max(4_000_000, 0.05 * rep))
    fig.checks.append(Check(
        "guest steal estimate within 5% of reported steal",
        all(est_ok),
        f"est={[round(r.stats['est_steal_ns'] / 1e9, 3) for r in results[1:]]}s "
        f"reported={[round(r.stats['reported_steal_ns'] / 1e9, 3) for r in results[1:]]}s"))
    from ..metering.steal import StealVerdict, audit_vm_result

    audits = [audit_vm_result(r) for r in results[1:]]
    fig.checks.append(Check(
        "tenant audit flags overbilling at the top fraction, never a "
        "misreported steal clock",
        audits[-1].verdict is StealVerdict.OVERBILLED
        and all(a.verdict is not StealVerdict.MISREPORTED for a in audits),
        f"verdicts={[a.verdict.value for a in audits]}"))
    return fig


#: CPU counts swept by the SMP figure.
SMP_NPROCS: Tuple[int, ...] = (1, 2, 4)

#: Work the dodger performs at every sweep point (~0.2 s at 2.53 GHz).
SMP_DODGE_CYCLES = 506_000_000


def figure_smp(scale: float = 1.0,
               cfg: Optional[MachineConfig] = None,
               runner: Optional[BatchRunner] = None) -> FigureResult:
    """Billing error vs CPU count for the cross-CPU tick dodger.

    The same dodger program runs next to an O victim on 1-, 2- and 4-CPU
    machines.  On one CPU it cannot dodge — ``migrate`` is a no-op and
    every tick is local — so tick accounting bills ~all of its work.  On
    two or more CPUs it hops off each CPU just before that CPU's
    staggered tick lands and its bill collapses toward zero, while the
    oracle keeps charging every cycle it actually burned: billing error
    ``1 - billed/nominal`` jumps from ~0 to ~1 the moment a second CPU
    exists.
    """
    base_cfg = cfg or default_config()
    nominal_ns = SMP_DODGE_CYCLES * 1_000_000_000 // base_cfg.cpu_freq_hz
    wkw = paper_workload_params(scale)["O"]
    specs = [ExperimentSpec(
        program="O", program_kwargs=wkw, attack="smp-dodge",
        attack_kwargs={"total_cycles": SMP_DODGE_CYCLES},
        cfg=cfg, nproc=nproc, label=f"smp:O:nproc={nproc}")
        for nproc in SMP_NPROCS]
    results = _execute(specs, runner)

    fig = FigureResult(
        "smp", "Cross-CPU tick dodging: billing error vs CPU count")
    errors: List[float] = []
    for nproc, res in zip(SMP_NPROCS, results):
        label = f"nproc={nproc}"
        fig.results[label] = res
        billed_ns = res.attacker_usage.total_ns
        errors.append(1.0 - billed_ns / nominal_ns)
        fig.series.append((
            label, _bar("victim billed", res),
            Bar("attacker billed", res.attacker_usage.utime_ns / 1e9,
                res.attacker_usage.stime_ns / 1e9)))
    fig.meta = {
        "nprocs": list(SMP_NPROCS),
        "nominal_s": nominal_ns / 1e9,
        "billing_error": [round(e, 4) for e in errors],
        "migrations": [r.stats.get("migrations_total", 0) for r in results],
    }

    fig.checks.append(Check(
        "uniprocessor cannot dodge: billed ~= nominal work",
        abs(errors[0]) <= 0.1,
        f"error={errors[0]:+.3f} (billed "
        f"{results[0].attacker_usage.total_ns / 1e9:.3f}s of "
        f"{nominal_ns / 1e9:.3f}s)"))
    fig.checks.append(Check(
        "bill collapses on every multiprocessor",
        all(e >= 0.9 for e in errors[1:]),
        f"errors={[round(e, 3) for e in errors[1:]]}"))
    fig.checks.append(Check(
        "billing error grows with CPU count, uni to SMP",
        all(b >= a for a, b in zip(errors, errors[1:])),
        f"errors={[round(e, 3) for e in errors]}"))
    oracle_ok = []
    for res in results[1:]:
        oracle_ns = res.stats.get("attacker_oracle_ns", 0)
        oracle_ok.append(nominal_ns <= oracle_ns <= 1.1 * nominal_ns)
    oracle_s = [round(r.stats.get("attacker_oracle_ns", 0) / 1e9, 3)
                for r in results[1:]]
    fig.checks.append(Check(
        "oracle still charges every burned cycle on SMP",
        all(oracle_ok),
        f"oracle={oracle_s}s nominal={nominal_ns / 1e9:.3f}s"))
    fig.checks.append(Check(
        "the dodge is mounted by migration",
        all(r.stats.get("migrations_total", 0) >= 10 for r in results[1:]),
        f"migrations={[r.stats.get('migrations_total', 0) for r in results[1:]]}"))
    victim_own = [round(r.oracle_own_s(), 6) for r in results]
    fig.checks.append(Check(
        "victim's ground-truth work independent of CPU count",
        max(victim_own) - min(victim_own) <= 0.01 * max(victim_own) + 1e-4,
        f"victim oracle={victim_own}s"))
    return fig


#: Fault intensities swept by the faultsweep figure.
FAULT_INTENSITIES: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)


def figure_faultsweep(scale: float = 1.0,
                      cfg: Optional[MachineConfig] = None,
                      runner: Optional[BatchRunner] = None) -> FigureResult:
    """Metering error vs hardware-fault intensity, watchdog on vs off.

    Robustness analogue of the attack figures: here the *hardware*
    misbehaves rather than a malicious program.  ``sweep_plan`` scales
    lost timer ticks and TSC drift together with one intensity knob; the
    kernel's clocksource watchdog (docs/faults.md) replays lost jiffies
    and grades each check window, so the watched meter stays near the
    oracle while the unwatched one under-bills roughly linearly in the
    tick-loss rate.  At heavy drift the watchdog declares the TSC
    unstable and the run's trust degrades to UNTRUSTED with an explicit
    uncertainty bound — graceful degradation instead of a silent lie.
    """
    from ..faults import sweep_plan

    wkw = paper_workload_params(scale)["W"]
    specs: List[ExperimentSpec] = []
    for intensity in FAULT_INTENSITIES:
        for watchdog in (True, False):
            plan = sweep_plan(intensity, watchdog=watchdog)
            specs.append(ExperimentSpec(
                program="W", program_kwargs=wkw, cfg=cfg,
                faults=plan.to_dict(),
                label=f"faultsweep:i={intensity}:"
                      f"wd={'on' if watchdog else 'off'}"))
    results = _execute(specs, runner)

    fig = FigureResult(
        "faultsweep",
        "Hardware fault injection: metering error vs intensity")
    errors_on: List[float] = []
    errors_off: List[float] = []
    pairs = list(zip(results[::2], results[1::2]))
    for intensity, (on, off) in zip(FAULT_INTENSITIES, pairs):
        label = f"intensity={intensity}"
        fig.results[f"{label}:wd-on"] = on
        fig.results[f"{label}:wd-off"] = off
        errors_on.append(abs(on.total_s - on.oracle_own_s()))
        errors_off.append(abs(off.total_s - off.oracle_own_s()))
        fig.series.append((label, _bar("watchdog on", on),
                           _bar("watchdog off", off)))

    top = pairs[-1][0]
    uncertainty_top_s = top.stats.get("watchdog_uncertainty_ns", 0) / 1e9
    fig.meta = {
        "intensities": list(FAULT_INTENSITIES),
        "error_watchdog_on_s": [round(e, 6) for e in errors_on],
        "error_watchdog_off_s": [round(e, 6) for e in errors_off],
        "oracle_s": [round(r.oracle_own_s(), 6) for r in results[::2]],
        "uncertainty_top_s": uncertainty_top_s,
    }

    zero_on, zero_off = pairs[0]
    fig.checks.append(Check(
        "zero intensity: watchdog toggle changes nothing",
        zero_on.to_dict() == zero_off.to_dict(),
        f"on={zero_on.total_s:.3f}s off={zero_off.total_s:.3f}s"))
    fig.checks.append(Check(
        "watchdog strictly reduces metering error at every nonzero "
        "intensity",
        all(on < off for on, off in zip(errors_on[1:], errors_off[1:])),
        f"on={['%.4f' % e for e in errors_on[1:]]} "
        f"off={['%.4f' % e for e in errors_off[1:]]}"))
    fig.checks.append(Check(
        "unwatched meter's error grows with fault intensity",
        errors_off[-1] > max(errors_off[0], 0.02)
        and errors_off[-1] >= errors_off[1],
        f"off={['%.4f' % e for e in errors_off]}"))
    degraded = top.stats.get("watchdog_intervals_degraded", 0)
    untrusted = top.stats.get("watchdog_intervals_untrusted", 0)
    fig.checks.append(Check(
        "watchdog grades intervals DEGRADED/UNTRUSTED at the top "
        "intensity",
        degraded + untrusted > 0 and uncertainty_top_s > 0,
        f"degraded={degraded} untrusted={untrusted} "
        f"uncertainty={uncertainty_top_s:.3f}s"))
    fig.checks.append(Check(
        "heavy TSC drift marks the clocksource unstable within two "
        "check windows",
        top.stats.get("watchdog_unstable", 0) == 1
        and top.stats.get("watchdog_flagged_at_jiffy", 10**9) <= 16,
        f"unstable={top.stats.get('watchdog_unstable')} "
        f"flagged_at_jiffy={top.stats.get('watchdog_flagged_at_jiffy')}"))
    fig.checks.append(Check(
        "watched meter's error within its declared uncertainty bound",
        errors_on[-1] <= uncertainty_top_s + max(2 * errors_on[0], 0.02),
        f"err={errors_on[-1]:.4f}s bound={uncertainty_top_s:.3f}s"))
    return fig


#: Injected clock offsets (ns) swept by the timesync figure.
SYNC_OFFSETS: Tuple[int, ...] = (0, 2_000_000, 5_000_000, 10_000_000)


def _sync_error_s(res) -> float:
    """Cross-host billing error: the bill is stamped end-on-local-clock,
    so it absorbs the run's terminal sync skew (already corrected by the
    estimator when the defense was on)."""
    skew_ns = res.stats.get("timesync_billed_skew_ns", 0)
    return abs(res.total_s + skew_ns / 1e9 - res.oracle_own_s())


def figure_timesync(scale: float = 1.0,
                    cfg: Optional[MachineConfig] = None,
                    runner: Optional[BatchRunner] = None) -> FigureResult:
    """Cross-host billing error vs injected clock offset, defense on/off.

    The network-time analogue of ``faultsweep``: a delay-asymmetry attack
    (``sweep_timesync``; docs/timesync.md) biases every PTP offset
    estimate, the victim's servo faithfully steers its clock off true
    time, and a meter that stamps job boundaries across hosts mis-bills
    by exactly the terminal skew.  With the guest-side offset estimator
    armed, servo activity beyond the honest-oscillator envelope is
    clipped out of the bill and the residual stays inside the declared
    uncertainty; without it the error grows linearly with the injected
    offset — silently, with a TRUSTED invoice.
    """
    from ..timesync import sweep_timesync
    from ..timesync.spec import DEFAULT_INTERVAL_NS

    wkw = paper_workload_params(scale)["W"]
    # The workload shrinks with ``scale`` but a fixed 100ms sync cadence
    # would starve the servo of rounds on short runs; shrink the exchange
    # interval in step (floor 2ms) so the round count stays comparable.
    # At scale >= 1 this is exactly the default interval.
    interval_ns = max(2_000_000, int(DEFAULT_INTERVAL_NS * min(scale, 1.0)))
    specs: List[ExperimentSpec] = []
    for offset_ns in SYNC_OFFSETS:
        for defense in (True, False):
            sync = sweep_timesync(offset_ns, defense=defense,
                                  interval_ns=interval_ns)
            specs.append(ExperimentSpec(
                program="W", program_kwargs=wkw, cfg=cfg,
                timesync=sync.to_dict(),
                label=f"timesync:off={offset_ns}:"
                      f"def={'on' if defense else 'off'}"))
    results = _execute(specs, runner)

    fig = FigureResult(
        "timesync",
        "Time-plane attack: cross-host billing error vs injected offset")
    errors_on: List[float] = []
    errors_off: List[float] = []
    pairs = list(zip(results[::2], results[1::2]))
    for offset_ns, (on, off) in zip(SYNC_OFFSETS, pairs):
        label = f"offset={offset_ns / 1e6:g}ms"
        fig.results[f"{label}:defense-on"] = on
        fig.results[f"{label}:defense-off"] = off
        errors_on.append(_sync_error_s(on))
        errors_off.append(_sync_error_s(off))
        fig.series.append((label, _bar("defense on", on),
                           _bar("defense off", off)))

    top_on = pairs[-1][0]
    uncertainty_top_s = top_on.stats.get("timesync_uncertainty_ns", 0) / 1e9
    fig.meta = {
        "offsets_ns": list(SYNC_OFFSETS),
        "error_defense_on_s": [round(e, 6) for e in errors_on],
        "error_defense_off_s": [round(e, 6) for e in errors_off],
        "oracle_s": [round(r.oracle_own_s(), 6) for r in results[::2]],
        "terminal_offset_ns": [r.stats.get("timesync_offset_ns", 0)
                               for r in results[1::2]],
        "uncertainty_top_s": uncertainty_top_s,
    }

    zero_on, zero_off = pairs[0]
    fig.checks.append(Check(
        "zero offset: defense toggle leaves the bill unchanged",
        zero_on.stats.get("timesync_billed_skew_ns")
        == zero_off.stats.get("timesync_billed_skew_ns")
        and abs(_sync_error_s(zero_on) - _sync_error_s(zero_off)) < 1e-9,
        f"on={_sync_error_s(zero_on):.6f}s "
        f"off={_sync_error_s(zero_off):.6f}s"))
    fig.checks.append(Check(
        "defense strictly reduces billing error at every nonzero offset",
        all(on < off for on, off in zip(errors_on[1:], errors_off[1:])),
        f"on={['%.4f' % e for e in errors_on[1:]]} "
        f"off={['%.4f' % e for e in errors_off[1:]]}"))
    fig.checks.append(Check(
        "undefended error grows with the injected offset",
        all(a < b for a, b in zip(errors_off[1:], errors_off[2:]))
        and errors_off[-1] > errors_off[0] + 0.005,
        f"off={['%.4f' % e for e in errors_off]}"))
    terminal = pairs[-1][1].stats.get("timesync_offset_ns", 0)
    target = -SYNC_OFFSETS[-1]  # asymmetry steers the clock *behind*
    fig.checks.append(Check(
        "servo converges onto the attacker's target offset",
        abs(terminal - target) <= abs(target) * 0.05 + 200_000,
        f"terminal={terminal}ns target={target}ns"))
    degraded = top_on.stats.get("timesync_degraded", 0)
    untrusted = top_on.stats.get("timesync_untrusted", 0)
    fig.checks.append(Check(
        "estimator grades rounds DEGRADED/UNTRUSTED at the top offset",
        degraded + untrusted > 0 and uncertainty_top_s > 0,
        f"degraded={degraded} untrusted={untrusted} "
        f"uncertainty={uncertainty_top_s:.6f}s"))
    fig.checks.append(Check(
        "defended error within the declared uncertainty bound",
        errors_on[-1] <= uncertainty_top_s + max(2 * errors_on[0], 0.02),
        f"err={errors_on[-1]:.4f}s bound={uncertainty_top_s:.6f}s"))
    silent = pairs[-1][1].stats
    fig.checks.append(Check(
        "undefended run carries no trust downgrade (the silent lie)",
        "timesync_untrusted" not in silent
        and "timesync_uncertainty_ns" not in silent,
        "defense-off stats expose no estimator grades"))
    return fig


#: Attacker co-residency rates swept by the fleet figure.
FLEET_PREVALENCES: Tuple[float, ...] = (0.0, 0.2, 0.5)

#: Hosts per fleet point — small enough for a smoke run, large enough
#: that every mix stratum is populated.
FLEET_HOSTS = 12


def figure_fleet(scale: float = 1.0,
                 cfg: Optional[MachineConfig] = None,
                 runner: Optional[BatchRunner] = None) -> FigureResult:
    """Billing-error distribution vs attacker co-residency, fleet-wide.

    Datacenter view of the paper's per-host attacks: the same seeded
    population of hosts is swept across attacker-prevalence rates, and the
    streaming fleet aggregator reports the per-guest billing-error
    percentiles with the tenant steal-audit's detection/false-positive
    rates overlaid.  The honest population under-bills slightly (tick
    quantisation); the attacked population's error tail grows with
    prevalence; the audit flags overbilled co-residents of tick-dodging
    VM attackers and never flags an honest guest.  One point is re-run
    serially and must reproduce the sharded aggregate bit for bit
    (``cfg`` is ignored — fleet hosts always boot the default machine).
    """
    import json as _json

    from ..fleet import FleetSpec, run_fleet

    del cfg
    fleet_scale = max(0.02, 0.25 * scale)

    def fleet_at(prevalence: float) -> FleetSpec:
        return FleetSpec(hosts=FLEET_HOSTS, guests=2,
                         prevalence=prevalence, seed=2010,
                         scale=fleet_scale)

    reports = []
    for prevalence in FLEET_PREVALENCES:
        aggregator = run_fleet(fleet_at(prevalence), runner=runner)
        reports.append(aggregator.report())

    fig = FigureResult(
        "fleet",
        "Fleet sweep: billing error vs attacker co-residency")
    p99s: List[float] = []
    detections: List[Optional[float]] = []
    fps: List[Optional[float]] = []
    for prevalence, report in zip(FLEET_PREVALENCES, reports):
        label = f"prevalence={prevalence}"
        errors = report["billing_error"]["all"]
        audit = report["audit"]
        p99s.append(errors["p99"])
        detections.append(audit["detection_rate"])
        fps.append(audit["false_positive_rate"])
        fig.series.append((
            label,
            Bar("billed", report["billed_total_ns"] / 1e9, 0.0),
            Bar("honestly ran", report["ran_total_ns"] / 1e9, 0.0)))
    fig.meta = {
        "prevalences": list(FLEET_PREVALENCES),
        "hosts": FLEET_HOSTS,
        "population": reports[0]["population"],
        "distinct_runs": [r["distinct_runs"] for r in reports],
        "error_p50": [r["billing_error"]["all"]["p50"] for r in reports],
        "error_p99": p99s,
        "detection_rate": detections,
        "false_positive_rate": fps,
        "trust_mix": [r["trust_mix"] for r in reports],
    }

    honest = reports[0]
    fig.checks.append(Check(
        "attacker-free fleet: no guest flagged, bill tracks the oracle",
        honest["verdicts"]["overbilled"] == 0
        and honest["verdicts"]["misreported"] == 0
        and honest["billed_total_ns"] <= honest["ran_total_ns"],
        f"verdicts={honest['verdicts']} "
        f"billed={honest['billed_total_ns'] / 1e9:.3f}s "
        f"ran={honest['ran_total_ns'] / 1e9:.3f}s"))
    fig.checks.append(Check(
        "p99 billing error grows with attacker prevalence",
        all(a <= b for a, b in zip(p99s, p99s[1:]))
        and p99s[-1] > p99s[0] + 0.5,
        f"p99={['%.3f' % p for p in p99s]}"))
    nonzero = [d for d in detections[1:] if d is not None]
    fig.checks.append(Check(
        "steal audit detects overbilled co-residents at every nonzero "
        "prevalence",
        bool(nonzero) and all(d > 0.25 for d in nonzero),
        f"detection={detections}"))
    fig.checks.append(Check(
        "steal audit never flags an honest guest",
        all(fp == 0.0 for fp in fps if fp is not None),
        f"false_positive={fps}"))
    fig.checks.append(Check(
        "attacked tenants overbilled fleet-wide at the top prevalence",
        reports[-1]["overbilled_total_ns"] > 0
        and reports[-1]["billing_error"]["attacked"]["p90"]
        > reports[-1]["billing_error"]["honest"]["p90"],
        f"overbilled={reports[-1]['overbilled_total_ns'] / 1e9:+.3f}s"))
    serial = run_fleet(fleet_at(FLEET_PREVALENCES[1])).report()
    fig.checks.append(Check(
        "sharded aggregate reproduces the serial reference bit for bit",
        _json.dumps(reports[1], sort_keys=True)
        == _json.dumps(serial, sort_keys=True),
        f"fleet_key={serial['fleet_key'][:16]}…"))
    return fig


#: fig id → generator.
FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "vmsched": figure_vm_sched,
    "faultsweep": figure_faultsweep,
    "smp": figure_smp,
    "fleet": figure_fleet,
    "timesync": figure_timesync,
}


def run_figure(fig_id: str, scale: float = 1.0,
               cfg: Optional[MachineConfig] = None,
               runner: Optional[BatchRunner] = None) -> FigureResult:
    try:
        generator = FIGURES[fig_id]
    except KeyError:
        raise KeyError(f"unknown figure {fig_id!r}; have {sorted(FIGURES)}")
    return generator(scale=scale, cfg=cfg, runner=runner)


#: Values eyeballed from the published figures, for context only (seconds).
#: Never used in checks — the reproduction matches shape, not absolutes.
PAPER_REFERENCE: Dict[str, Dict[str, object]] = {
    "fig4": {"growth_all_programs_s": 34,
             "note": "utime +~34 s for O/P/W/B; stime unchanged"},
    "fig5": {"growth_all_programs_s": 34,
             "note": "near-identical to Fig. 4"},
    "fig6": {"note": "amplified growth, proportional to call counts"},
    "fig7": {"W_normal_s": 150, "W_at_nice_minus20_s": 400,
             "note": "sum W+Fork ~constant; monotone in priority"},
    "fig8": {"note": "ineffective on multi-threaded Brute"},
    "fig9": {"note": "mostly system-time growth, ordered by hit count"},
    "fig10": {"note": "slight stime increase only"},
    "fig11": {"note": "moderate stime increase; capped by OOM"},
    "vmsched": {"note": "VM analogue, not a paper figure: Zhou et al. "
                        "(arXiv:1103.0759) report an attacker consuming "
                        "up to ~98% of a core while Xen bills it ~nothing; "
                        "co-residents absorb the sampled ticks"},
    "smp": {"note": "SMP figure, not from the paper: per-CPU staggered "
                    "ticks sample only the local CPU's current task, so "
                    "a migrating attacker dodges every sample; the paper's "
                    "single-CPU tick-dodging flaw (§IV-B1) scales out "
                    "with the core count (docs/smp.md)"},
    "faultsweep": {"note": "robustness figure, not from the paper: "
                           "tick-sampled accounting (§III-A) depends on a "
                           "sound timer/TSC; this sweeps injected hardware "
                           "faults and shows the clocksource watchdog "
                           "holding metering error down vs an unwatched "
                           "kernel (docs/faults.md)"},
    "timesync": {"note": "network-time figure, not from the paper: "
                         "metering trusts the host clock, and the host "
                         "clock trusts the sync daemon — a delay-asymmetry "
                         "attack (cf. Breaking Precision Time, PAPERS.md) "
                         "steers it arbitrarily far while every packet "
                         "looks honest; the platform-agnostic guest "
                         "estimator bounds the damage (docs/timesync.md)"},
    "fleet": {"note": "population figure, not from the paper: the §IV "
                      "attacks at datacenter scale — a seeded fleet of "
                      "hosts swept over attacker co-residency rates, "
                      "aggregated streamingly into billing-error "
                      "percentile sketches with the tenant steal-audit "
                      "detection rate overlaid (docs/fleet.md)"},
}
