"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure <fig4..fig11> [--scale S] [--jobs N] [--cache-dir D]`` —
  regenerate one evaluation figure and print the chart plus its shape
  checks (exit 1 if any check fails);
* ``figures [--scale S] [--jobs N] [--cache-dir D]`` — regenerate all
  eight, optionally fanning experiment points across worker processes
  with result caching (see docs/runner.md);
* ``sweep [--programs ...] [--attacks ...] [--jobs N] ...`` — run a
  program × attack grid through the batch runner and print one row per
  point plus cache/failure telemetry;
* ``fuzz [--iterations N] [--seed S] [--out D] [--replay FILE]`` —
  randomized differential conformance testing: seeded scenarios run under
  every scheduler with runtime invariants on, cross-checked serial vs
  batch and across schedulers; failures shrink to replayable JSON specs
  (see docs/invariants.md);
* ``vm [--attack sched|none] [--burn-fraction F] [--scale S] [--json P]``
  — run the VM-level scheduling attack (a victim VM vs a tick-dodging
  co-resident under the credit hypervisor) with the guest steal-time
  estimator, print both hypervisor ledgers and the tenant audit, and
  check the expected shape (see docs/virt.md);
* ``faults [--intensity F] [--program W] [--scale S] [--json P]`` — run
  one workload clean, then under an injected hardware-fault plan with the
  clocksource watchdog on and off; print fault/watchdog counters, the
  trust-annotated invoice and the user-side verification, and check that
  the watchdog holds metering error down (see docs/faults.md);
* ``timesync [--offset-ns N] [--protocol ptp|ntp] [--program W]
  [--json P]`` — run one workload clean, then under a network sync
  attack (delay-asymmetry steering the host clock) with the guest-side
  offset estimator on and off; print the sync telemetry, the
  trust-annotated invoice, and check that the defense bounds the
  cross-host billing error (see docs/timesync.md);
* ``serve [--host H] [--port P] [--db PATH] [--jobs N] [--selftest]`` —
  the multi-tenant metering daemon: tenants register, submit workload
  specs over a JSON HTTP API, and get invoices, trust reports and
  steal-audit verdicts back, all billed through a crash-safe SQLite
  usage ledger with Prometheus counters on ``/metrics``
  (see docs/serve.md); ``--selftest`` drives the honest/attacker/quota
  scenario end to end and exits non-zero on any check failure;
* ``fleet [--hosts N] [--guests M] [--prevalence F] [--seed S]
  [--jobs N] [--json P]`` — datacenter-scale population sweep: expand a
  seeded fleet spec into per-host experiments, run the distinct spec
  identities through the batch runner and stream the population-weighted
  results into mergeable sketches (billing-error percentiles, trust-grade
  mix, steal-audit detection/false-positive rates); peak memory is
  independent of the host count (see docs/fleet.md); ``--shards N``
  splits the hosts into contiguous ranges run concurrently, and
  ``--endpoints`` runs them on remote serve daemons with retry/failover
  and a coverage-graded merged report (see docs/chaos.md);
* ``chaos [--intensity F] [--shards N] [--quick] [--json P]`` — the
  fault-injection gauntlet: boot chaotic serve daemons (injected store
  errors, worker crashes, HTTP faults) with one endpoint dead, run a
  sharded fleet sweep against them, and check live that every fault is
  absorbed or declared, nothing double-bills, surviving shards stay
  bit-identical to chaos-free runs, and the merged report grades its
  own coverage (see docs/chaos.md);
* ``gallery`` — run every attack against one victim (summary table);
* ``calibrate`` — measure the simulated primitive costs;
* ``comparison`` — print the §V-C attack matrix and the §VI-B defense
  coverage table;
* ``top [--seconds T]`` — boot a machine with the paper's four workloads
  and print a procfs top snapshot after T simulated seconds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _make_runner(args: argparse.Namespace, quiet: bool = False):
    """A BatchRunner per the shared --jobs/--cache-dir/... flags, or None
    when every knob is at its serial default."""
    from .runner import BatchRunner, ConsoleProgress, ResultCache

    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    timeout_s = getattr(args, "timeout_s", None)
    retries = getattr(args, "retries", 0)
    if jobs == 1 and cache_dir is None and timeout_s is None and not retries:
        return None
    return BatchRunner(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir else None,
        timeout_s=timeout_s,
        retries=retries,
        progress=None if quiet else ConsoleProgress())


def _apply_invariants_flag(args: argparse.Namespace) -> None:
    """``--check-invariants`` flips the process-wide default, so every
    serially-run experiment (figures, gallery) gets the checker."""
    if getattr(args, "check_invariants", False):
        from .verify import set_default_invariants

        set_default_invariants(True)


def _cmd_figure(args: argparse.Namespace) -> int:
    from .analysis.figures import FIGURES, run_figure
    from .analysis.report import figure_report
    from .runner import SweepTelemetry

    _apply_invariants_flag(args)
    runner = _make_runner(args, quiet=True)
    telemetry = SweepTelemetry()
    fig_ids = sorted(FIGURES) if args.fig_id == "all" else [args.fig_id]
    ok = True
    for fig_id in fig_ids:
        fig = run_figure(fig_id, scale=args.scale, runner=runner)
        if runner is not None:
            telemetry.merge(runner.telemetry)
        print(figure_report(fig))
        print()
        ok = ok and fig.passed
    if runner is not None:
        print(telemetry.summary())
    return 0 if ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.figures import paper_workload_params
    from .programs.workloads import watched_variable
    from .runner import ExperimentSpec, SpecError

    _apply_invariants_flag(args)
    programs = [p.strip() for p in args.programs.split(",") if p.strip()]
    attacks = [a.strip() for a in args.attacks.split(",") if a.strip()]
    try:
        nprocs = [int(n) for n in args.nproc.split(",") if n.strip()]
    except ValueError:
        print(f"--nproc wants comma-separated integers, got {args.nproc!r}",
              file=sys.stderr)
        return 2
    params = paper_workload_params(args.scale)
    forks = max(1, int(8_000 * args.scale))
    # The spec field (not just the process default) so worker processes
    # check too when --jobs > 1.
    check_invariants = True if args.check_invariants else None

    def attack_kwargs(attack: str, program: str):
        defaults = {
            "none": {},
            "shell": {"payload_cycles": 506_000_000},
            "library-ctor": {"payload_cycles": 506_000_000},
            "library-subst": {"cycles_per_call": 300_000},
            "library-runtime": {},
            "scheduling": {"nice": -20, "forks": forks},
            "thrashing": {"watch_symbol": watched_variable(program)},
            "irq-flood": {"rate_pps": 20_000.0},
            "fault-flood": {},
            "smp-dodge": {},
            "irq-steer": {},
        }
        try:
            return defaults[attack]
        except KeyError:
            raise SpecError(f"unknown attack {attack!r}; "
                            f"have {sorted(k for k in defaults)}") from None

    try:
        specs = [
            ExperimentSpec(
                program=program, program_kwargs=params[program],
                attack=None if attack == "none" else attack,
                attack_kwargs=attack_kwargs(attack, program),
                check_invariants=check_invariants,
                nproc=nproc,
                label=(f"{program}:{attack}" if nproc == 1
                       else f"{program}:{attack}:n{nproc}"))
            for program in programs for attack in attacks
            for nproc in nprocs
        ]
    except KeyError as exc:
        print(f"unknown program {exc}; have {sorted(params)}",
              file=sys.stderr)
        return 2
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2

    runner = _make_runner(args, quiet=args.quiet) or _make_serial_runner(args)
    outcomes = runner.run(specs)
    print(f"{'point':<18} {'status':<8} {'utime_s':>8} {'stime_s':>8} "
          f"{'wall_s':>7}")
    for outcome in outcomes:
        if outcome.ok:
            status = "cached" if outcome.cached else "run"
            result = outcome.result
            print(f"{outcome.spec.name:<18} {status:<8} "
                  f"{result.utime_s:>8.3f} {result.stime_s:>8.3f} "
                  f"{outcome.wall_s:>7.2f}")
        else:
            print(f"{outcome.spec.name:<18} {'FAILED':<8} "
                  f"{outcome.failure.error_type}: {outcome.failure.message}")
    print()
    print(runner.telemetry.summary())
    return 0 if all(o.ok for o in outcomes) else 1


def _make_serial_runner(args: argparse.Namespace):
    from .runner import BatchRunner, ConsoleProgress

    return BatchRunner(progress=None if args.quiet else ConsoleProgress())


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .verify.fuzz import replay_failure, run_fuzz

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]

    if args.replay:
        report, identical = replay_failure(args.replay)
        print(f"replayed {args.replay}")
        print(f"  scenario: {report.scenario}")
        for failure in report.failures:
            print(f"  failure: {failure}")
        if not report.failures:
            print("  no failures reproduced")
        print(f"  digest {'matches' if identical else 'DIVERGES from'} "
              f"the recorded run")
        # Replay succeeds when the run is bit-identical to the recording —
        # whether the recording was a failure or a detection record.
        return 0 if identical else 1

    summary = run_fuzz(
        iterations=args.iterations,
        seed=args.seed,
        schedulers=schedulers,
        out_dir=args.out,
        inject_probability=args.inject_probability,
        progress=None if args.quiet else print)
    print(f"\n{summary.iterations} scenarios, "
          f"{len(summary.failures)} failing")
    for saved in summary.saved:
        print(f"  replay spec: {saved}")
    return 0 if summary.ok else 1


def _cmd_gallery(args: argparse.Namespace) -> int:
    from .analysis.experiment import run_experiment
    from .attacks import (
        InterruptFloodAttack,
        LibraryConstructorAttack,
        LibrarySubstitutionAttack,
        SchedulingAttack,
        ShellAttack,
        ThrashingAttack,
    )
    from .programs.workloads import make_ourprogram

    def victim():
        return make_ourprogram(iterations=int(2_500 * args.scale))

    baseline = run_experiment(victim())
    print(f"baseline: {baseline.total_s:.3f} s")
    rows = [
        ("shell", ShellAttack(506_000_000)),
        ("library-ctor", LibraryConstructorAttack(506_000_000)),
        ("library-subst", LibrarySubstitutionAttack(cycles_per_call=300_000)),
        ("scheduling", SchedulingAttack(nice=-20, forks=6_000)),
        ("thrashing", ThrashingAttack("i")),
        ("irq-flood", InterruptFloodAttack(rate_pps=25_000)),
    ]
    for name, attack in rows:
        result = run_experiment(victim(), attack)
        print(f"  {name:<14} {result.utime_s:.3f}u + {result.stime_s:.3f}s "
              f"(x{result.total_s / baseline.total_s:.2f})")
    return 0


def _cmd_vm(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis.figures import paper_workload_params
    from .metering.steal import audit_vm_result
    from .runner import ExperimentSpec
    from .runner.specs import run_spec

    _apply_invariants_flag(args)
    check_invariants = True if args.check_invariants else None
    program_kwargs = paper_workload_params(args.scale)[args.program]
    specs = [ExperimentSpec(program=args.program,
                            program_kwargs=program_kwargs,
                            attack=None, vm={},
                            check_invariants=check_invariants,
                            label=f"vm:{args.program}:none")]
    attacked = args.attack != "none"
    if attacked:
        specs.append(ExperimentSpec(
            program=args.program, program_kwargs=program_kwargs,
            attack="vm-sched",
            attack_kwargs={"burn_fraction": args.burn_fraction}, vm={},
            check_invariants=check_invariants,
            label=f"vm:{args.program}:sched"))
    runner = _make_runner(args, quiet=True)
    if runner is None:
        results = [run_spec(spec) for spec in specs]
    else:
        results = runner.run_results(specs)

    tick_ns = 10_000_000  # HypervisorConfig default
    checks = []

    def check(name: str, passed: bool, detail: str) -> None:
        checks.append({"name": name, "passed": bool(passed),
                       "detail": detail})

    def describe(tag: str, res) -> None:
        s = res.stats
        print(f"{tag}: victim billed {res.total_s:.3f}s "
              f"(ran {s['victim_ran_ns'] / 1e9:.3f}s, "
              f"steal {s['victim_steal_ns'] / 1e9:.3f}s, "
              f"idle {s['victim_idle_ns'] / 1e9:.3f}s) "
              f"wall {res.wall_s:.3f}s "
              f"hv_ticks={s['hv_ticks']} switches={s['vcpu_switches']}")
        if res.attacker_usage is not None:
            print(f"  attacker billed {res.attacker_usage.total_seconds:.3f}s"
                  f" for {s['attacker_ran_ns'] / 1e9:.3f}s actually burned "
                  f"({s['attacker_iterations']} tick-dodging iterations)")
        print(f"  guest estimator: est steal "
              f"{s['est_steal_ns'] / 1e9:.3f}s vs reported "
              f"{s['reported_steal_ns'] / 1e9:.3f}s "
              f"({s['steal_samples']} samples)")

    baseline = results[0]
    describe("baseline", baseline)
    for res in results:
        check("per-vCPU conservation ran+idle+steal == host wall",
              res.stats["conservation_gap_ns"] == 0,
              f"gap={res.stats['conservation_gap_ns']}ns")
    audit_doc = None
    if attacked:
        res = results[1]
        describe("attacked", res)
        audit = audit_vm_result(res)
        print()
        print(audit.render())
        audit_doc = {"verdict": audit.verdict.value,
                     "est_steal_ns": audit.est_steal_ns,
                     "reported_steal_ns": audit.reported_steal_ns,
                     "overbilling_ns": audit.overbilling_ns}
        check("co-resident victim's bill inflates",
              res.usage.total_ns > baseline.usage.total_ns,
              f"attacked={res.total_s:.3f}s baseline={baseline.total_s:.3f}s")
        check("attacker billed ~nothing",
              res.attacker_usage.total_ns
              <= max(2 * tick_ns, 0.05 * res.usage.total_ns),
              f"attacker billed={res.attacker_usage.total_seconds:.3f}s")
        est = res.stats["est_steal_ns"]
        rep = res.stats["reported_steal_ns"]
        check("guest steal estimate within 5% of reported",
              abs(est - rep) <= max(4_000_000, 0.05 * rep),
              f"est={est / 1e9:.3f}s reported={rep / 1e9:.3f}s")
    print()
    ok = True
    for entry in checks:
        status = "PASS" if entry["passed"] else "FAIL"
        ok = ok and entry["passed"]
        print(f"  [{status}] {entry['name']} ({entry['detail']})")

    if args.json:
        doc = {
            "command": "vm",
            "program": args.program,
            "attack": "vm-sched" if attacked else "none",
            "burn_fraction": args.burn_fraction if attacked else None,
            "scale": args.scale,
            "check_invariants": bool(args.check_invariants),
            "passed": ok,
            "checks": checks,
            "audit": audit_doc,
            "results": {spec.name: res.to_dict()
                        for spec, res in zip(specs, results)},
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0 if ok else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis.figures import paper_workload_params
    from .faults import sweep_plan
    from .metering.billing import TrustReport, invoice_for
    from .runner import ExperimentSpec
    from .runner.specs import run_spec, spec_key

    _apply_invariants_flag(args)
    check_invariants = True if args.check_invariants else None
    program_kwargs = paper_workload_params(args.scale)[args.program]
    plan_on = sweep_plan(args.intensity, watchdog=True)
    plan_off = sweep_plan(args.intensity, watchdog=False)

    def spec(faults, tag):
        return ExperimentSpec(
            program=args.program, program_kwargs=program_kwargs,
            faults=faults, check_invariants=check_invariants,
            label=f"faults:{args.program}:{tag}")

    specs = [spec(None, "clean"),
             spec(plan_on.to_dict(), "wd-on"),
             spec(plan_off.to_dict(), "wd-off")]
    runner = _make_runner(args, quiet=True)
    if runner is None:
        results = [run_spec(s) for s in specs]
    else:
        results = runner.run_results(specs)
    clean, wd_on, wd_off = results

    print(f"fault plan (intensity {args.intensity}): {plan_on.describe()}")
    errors = {}
    for tag, res in zip(("clean", "wd-on", "wd-off"), results):
        err = abs(res.total_s - res.oracle_own_s())
        errors[tag] = err
        print(f"{tag:<7} billed {res.total_s:.3f}s "
              f"(oracle {res.oracle_own_s():.3f}s, error {err:.3f}s)")
        lost = res.stats.get("fault_ticks_lost")
        if lost is not None:
            print(f"        ticks lost={lost} "
                  f"delayed={res.stats.get('fault_ticks_delayed', 0)} "
                  f"caught up={res.stats.get('fault_jiffies_caught_up', 0)}")
        if "watchdog_checks" in res.stats:
            print(f"        watchdog: checks={res.stats['watchdog_checks']} "
                  f"unstable={res.stats['watchdog_unstable']} "
                  f"intervals T/D/U="
                  f"{res.stats['watchdog_intervals_trusted']}/"
                  f"{res.stats['watchdog_intervals_degraded']}/"
                  f"{res.stats['watchdog_intervals_untrusted']} "
                  f"uncertainty="
                  f"{res.stats['watchdog_uncertainty_ns'] / 1e9:.3f}s")

    trust = TrustReport.from_stats(wd_on.stats)
    invoice = invoice_for(args.program, wd_on.usage, trust=trust)
    print()
    print(invoice.render())

    checks = []

    def check(name: str, passed: bool, detail: str) -> None:
        checks.append({"name": name, "passed": bool(passed),
                       "detail": detail})

    check("empty fault plan hashes identically to no plan",
          spec_key(spec(None, "a")) == spec_key(spec({}, "b")),
          "cache identity preserved for zero-fault runs")
    if args.intensity > 0:
        check("watchdog reduces metering error",
              errors["wd-on"] < errors["wd-off"],
              f"wd-on={errors['wd-on']:.3f}s wd-off={errors['wd-off']:.3f}s")
        check("lost jiffies caught up by the watchdog",
              wd_on.stats.get("fault_jiffies_caught_up", 0) > 0
              or wd_on.stats.get("fault_ticks_lost", 0) == 0,
              f"lost={wd_on.stats.get('fault_ticks_lost', 0)} "
              f"caught_up={wd_on.stats.get('fault_jiffies_caught_up', 0)}")
        check("billed time within the declared uncertainty of the oracle",
              errors["wd-on"] <= trust.uncertainty_s
              + max(2 * errors["clean"], 0.02),
              f"error={errors['wd-on']:.3f}s "
              f"bound={trust.uncertainty_s:.3f}s")
    if args.intensity >= 0.05:
        check("watchdog degrades trust under faults",
              not trust.is_trusted and trust.uncertainty_ns > 0,
              f"trust={trust.level.value} "
              f"uncertainty={trust.uncertainty_s:.3f}s")
    if args.intensity >= 0.1:
        check("heavy TSC drift marks the clocksource unstable",
              wd_on.stats.get("watchdog_unstable", 0) == 1,
              f"unstable={wd_on.stats.get('watchdog_unstable', 0)} "
              f"flagged_at_jiffy="
              f"{wd_on.stats.get('watchdog_flagged_at_jiffy')}")

    print()
    ok = True
    for entry in checks:
        status = "PASS" if entry["passed"] else "FAIL"
        ok = ok and entry["passed"]
        print(f"  [{status}] {entry['name']} ({entry['detail']})")

    if args.json:
        doc = {
            "command": "faults",
            "program": args.program,
            "intensity": args.intensity,
            "scale": args.scale,
            "plan": plan_on.to_dict(),
            "check_invariants": bool(args.check_invariants),
            "passed": ok,
            "checks": checks,
            "errors_s": errors,
            "trust": {
                "level": trust.level.value,
                "uncertainty_ns": trust.uncertainty_ns,
                "intervals_trusted": trust.intervals_trusted,
                "intervals_degraded": trust.intervals_degraded,
                "intervals_untrusted": trust.intervals_untrusted,
            },
            "results": {spec_.name: res.to_dict()
                        for spec_, res in zip(specs, results)},
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0 if ok else 1


def _cmd_timesync(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis.figures import paper_workload_params
    from .metering.billing import TrustReport, invoice_for
    from .runner import ExperimentSpec
    from .runner.specs import run_spec, spec_key
    from .timesync import sweep_timesync

    _apply_invariants_flag(args)
    check_invariants = True if args.check_invariants else None
    program_kwargs = paper_workload_params(args.scale)[args.program]
    offset_ns = args.offset_ns

    def spec(timesync, tag):
        return ExperimentSpec(
            program=args.program, program_kwargs=program_kwargs,
            timesync=timesync, check_invariants=check_invariants,
            label=f"timesync:{args.program}:{tag}")

    sync_on = sweep_timesync(offset_ns, defense=True,
                             protocol=args.protocol)
    sync_off = sweep_timesync(offset_ns, defense=False,
                              protocol=args.protocol)
    specs = [spec(None, "clean"),
             spec(sync_on.to_dict(), "defense-on"),
             spec(sync_off.to_dict(), "defense-off")]
    runner = _make_runner(args, quiet=True)
    if runner is None:
        results = [run_spec(s) for s in specs]
    else:
        results = runner.run_results(specs)
    clean, def_on, def_off = results

    print(f"sync attack (target offset {offset_ns}ns, "
          f"{args.protocol}): {sync_on.describe()}")
    errors = {}
    for tag, res in zip(("clean", "defense-on", "defense-off"), results):
        skew_ns = res.stats.get("timesync_billed_skew_ns", 0)
        err = abs(res.total_s + skew_ns / 1e9 - res.oracle_own_s())
        errors[tag] = err
        print(f"{tag:<12} billed {res.total_s + skew_ns / 1e9:.6f}s "
              f"(oracle {res.oracle_own_s():.6f}s, error {err * 1e3:.3f}ms)")
        if "timesync_rounds" in res.stats:
            print(f"             rounds={res.stats['timesync_rounds']} "
                  f"lost={res.stats['timesync_lost_rounds']} "
                  f"terminal offset="
                  f"{res.stats['timesync_offset_ns'] / 1e3:.1f}us")
        if "timesync_est_offset_ns" in res.stats:
            print(f"             estimator: est="
                  f"{res.stats['timesync_est_offset_ns'] / 1e3:.1f}us "
                  f"correction="
                  f"{res.stats['timesync_correction_ns'] / 1e3:.1f}us "
                  f"uncertainty="
                  f"{res.stats['timesync_uncertainty_ns'] / 1e3:.1f}us "
                  f"rounds T/D/U={res.stats['timesync_trusted']}/"
                  f"{res.stats['timesync_degraded']}/"
                  f"{res.stats['timesync_untrusted']}")

    trust = TrustReport.from_stats(def_on.stats)
    invoice = invoice_for(args.program, def_on.usage, trust=trust)
    print()
    print(invoice.render())

    checks = []

    def check(name: str, passed: bool, detail: str) -> None:
        checks.append({"name": name, "passed": bool(passed),
                       "detail": detail})

    check("inert timesync spec hashes identically to no spec",
          spec_key(spec(None, "a"))
          == spec_key(spec({"drift_ppb": 0}, "b")),
          "cache identity preserved for sync-free runs")
    if offset_ns > 0:
        check("defense reduces cross-host billing error",
              errors["defense-on"] < errors["defense-off"],
              f"on={errors['defense-on'] * 1e3:.3f}ms "
              f"off={errors['defense-off'] * 1e3:.3f}ms")
        check("defended residual within the declared uncertainty",
              errors["defense-on"]
              <= trust.uncertainty_s + max(2 * errors["clean"], 0.02),
              f"err={errors['defense-on'] * 1e3:.3f}ms "
              f"bound={trust.uncertainty_s * 1e3:.3f}ms")
        check("estimator degrades trust under the sync attack",
              not trust.is_trusted and trust.uncertainty_ns > 0,
              f"trust={trust.level.value} "
              f"uncertainty={trust.uncertainty_s * 1e3:.3f}ms")
        off_trust = TrustReport.from_stats(def_off.stats)
        check("undefended run silently stays TRUSTED (the lie)",
              off_trust.is_trusted,
              f"defense-off trust={off_trust.level.value}")

    print()
    ok = True
    for entry in checks:
        status = "PASS" if entry["passed"] else "FAIL"
        ok = ok and entry["passed"]
        print(f"  [{status}] {entry['name']} ({entry['detail']})")

    if args.json:
        doc = {
            "command": "timesync",
            "program": args.program,
            "offset_ns": offset_ns,
            "protocol": args.protocol,
            "scale": args.scale,
            "spec": sync_on.to_dict(),
            "check_invariants": bool(args.check_invariants),
            "passed": ok,
            "checks": checks,
            "errors_s": errors,
            "trust": {
                "level": trust.level.value,
                "uncertainty_ns": trust.uncertainty_ns,
                "intervals_trusted": trust.intervals_trusted,
                "intervals_degraded": trust.intervals_degraded,
                "intervals_untrusted": trust.intervals_untrusted,
            },
            "results": {spec_.name: res.to_dict()
                        for spec_, res in zip(specs, results)},
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.selftest:
        import json as _json

        from .serve import run_selftest

        print(f"repro serve selftest (store: {args.db}, "
              f"scale {args.scale}, {args.jobs} workers)")
        report = run_selftest(args.db, scale=args.scale, jobs=args.jobs)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"\nwrote {args.json}")
        n_ok = sum(1 for c in report["checks"] if c["passed"])
        print(f"\n{n_ok}/{len(report['checks'])} checks passed")
        return 0 if report["passed"] else 1

    from .config import ServeConfig
    from .serve import serve_forever

    serve_forever(ServeConfig(host=args.host, port=args.port, db=args.db,
                              jobs=args.jobs,
                              busy_timeout_ms=args.busy_timeout_ms,
                              drain_timeout_s=args.drain_timeout_s))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from .fleet import FleetSpec, run_fleet
    from .runner import ConsoleProgress, ResultCache

    _apply_invariants_flag(args)
    kwargs = {}
    if args.sync_prevalence > 0:
        kwargs["sync_mix"] = ((0, 1.0 - args.sync_prevalence),
                              (args.sync_offset_ns, args.sync_prevalence))
    fleet = FleetSpec(hosts=args.hosts, guests=args.guests,
                      prevalence=args.prevalence, seed=args.seed,
                      scale=args.scale, vm_fraction=args.vm_fraction,
                      **kwargs)
    print(f"fleet: {fleet.hosts} hosts x {fleet.guests} guests "
          f"(prevalence {fleet.prevalence}, seed {fleet.seed}, "
          f"scale {fleet.scale}, {args.jobs} job(s))")
    if args.sync_prevalence > 0:
        print(f"sync-attack mix: {args.sync_prevalence:.0%} of bare-metal "
              f"hosts steered to {args.sync_offset_ns}ns offset")
    start = _time.perf_counter()
    if args.endpoints:
        from .fleet import shard_fleet

        endpoints = [e.strip() for e in args.endpoints.split(",")
                     if e.strip()]
        print(f"sharding across {len(endpoints)} serve endpoint(s)"
              + (f" as {args.shards} shards" if args.shards else ""))
        report = shard_fleet(fleet, endpoints, shards=args.shards)
    elif args.shards and args.shards > 1:
        from .fleet import shard_fleet_local

        print(f"sharding locally into {args.shards} host ranges")
        report = shard_fleet_local(
            fleet, args.shards, jobs=args.jobs,
            cache=ResultCache(args.cache_dir) if args.cache_dir else None,
            timeout_s=args.timeout_s, retries=args.retries)
    else:
        aggregator = run_fleet(
            fleet, jobs=args.jobs,
            cache=ResultCache(args.cache_dir) if args.cache_dir else None,
            timeout_s=args.timeout_s, retries=args.retries,
            progress=None if args.quiet else ConsoleProgress())
        report = aggregator.report()
    wall_s = _time.perf_counter() - start

    audit = report["audit"]
    print(f"\npopulation {report['population']} guests collapsed to "
          f"{report['distinct_runs']} distinct runs "
          f"({report['failed_runs']} failed) in {wall_s:.1f}s")
    print(f"billed {report['billed_total_ns'] / 1e9:.3f}s for "
          f"{report['ran_total_ns'] / 1e9:.3f}s actually run "
          f"(overbilled {report['overbilled_total_ns'] / 1e9:+.3f}s)")
    print(f"trust mix: {report['trust_mix']}")
    print(f"audit verdicts: {report['verdicts']}")
    det = audit["detection_rate"]
    fpr = audit["false_positive_rate"]
    print(f"steal-audit detection rate: "
          f"{'n/a (no attacked guests)' if det is None else f'{det:.1%}'} "
          f"over {audit['attacked_weight']} attacked guest(s)")
    print(f"false-positive rate: "
          f"{'n/a (no honest guests)' if fpr is None else f'{fpr:.1%}'} "
          f"over {audit['honest_weight']} honest guest(s)")
    print(f"\n{'population':<10} {'count':>6} {'mean':>8} {'p50':>8} "
          f"{'p90':>8} {'p99':>8}")
    for name in ("all", "attacked", "honest"):
        summary = report["billing_error"][name]
        if not summary["count"]:
            print(f"{name:<10} {0:>6}")
            continue
        print(f"{name:<10} {summary['count']:>6} {summary['mean']:>8.3f} "
              f"{summary['p50']:>8.3f} {summary['p90']:>8.3f} "
              f"{summary['p99']:>8.3f}")

    coverage = report.get("coverage")
    if coverage is not None:
        print(f"\ncoverage: {coverage['hosts_covered']}/"
              f"{coverage['hosts_total']} hosts "
              f"({coverage['shards_ok']}/{coverage['shards_total']} shards "
              f"ok, {coverage['faults_absorbed']} faults absorbed) — "
              f"grade {coverage['grade']}")
        for entry in coverage["shards"]:
            if entry["status"] != "ok":
                print(f"  shard {entry['shard']} "
                      f"hosts {entry['hosts'][0]}-{entry['hosts'][1]} "
                      f"FAILED: {entry['error']}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    ok = report["failed_runs"] == 0 and (
        coverage is None or coverage["grade"] != "PARTIAL")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json
    import tempfile

    from .chaos.gauntlet import run_gauntlet

    db_dir = args.db_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    print(f"repro chaos gauntlet (intensity {args.intensity}, "
          f"{args.shards} shards, stores in {db_dir})")
    report = run_gauntlet(db_dir, intensity=args.intensity,
                          shards=args.shards, seed=args.seed,
                          quick=args.quick)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    n_ok = sum(1 for c in report["checks"] if c["passed"])
    print(f"\n{n_ok}/{len(report['checks'])} checks passed")
    return 0 if report["passed"] else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .analysis.calibration import calibrate

    print(calibrate(iterations=args.iterations).render())
    return 0


def _cmd_comparison(args: argparse.Namespace) -> int:
    from .attacks import comparison_matrix
    from .metering.properties import defense_coverage_table

    print(comparison_matrix())
    print()
    print(defense_coverage_table())
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .hw.machine import Machine
    from .config import default_config
    from .kernel import procfs
    from .programs.stdlib import install_standard_libraries
    from .analysis.figures import paper_workloads

    machine = Machine(default_config())
    install_standard_libraries(machine.kernel.libraries)
    shell = machine.new_shell()
    for program in paper_workloads(scale=1.0).values():
        shell.run_command(program)
    machine.run_for(int(args.seconds * 1e9))
    print(procfs.top(machine.kernel))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time as _time

    from .bench import (compare_reports, format_table, load_report,
                        run_suite, write_report)

    results = run_suite(quick=args.quick, only=args.only,
                        progress=lambda name: print(f"bench: {name} ...",
                                                    flush=True))
    print()
    print(format_table(results))

    path = args.json
    if path is None:
        stamp = _time.strftime("%Y%m%d_%H%M%S", _time.gmtime())
        path = f"BENCH_{stamp}.json"
    doc = write_report(path, results, quick=args.quick)
    print(f"\nwrote {path}")

    if args.baseline:
        baseline = load_report(args.baseline)
        regressions = compare_reports(doc, baseline,
                                      tolerance=args.tolerance)
        if regressions:
            print(f"\n{len(regressions)} benchmark(s) regressed vs "
                  f"{args.baseline} (tolerance {args.tolerance:.0%}):")
            for reg in regressions:
                print(f"  {reg}")
            if not args.warn_only:
                return 1
            print("(--warn-only: not failing)")
        else:
            print(f"\nno regressions vs {args.baseline} "
                  f"(tolerance {args.tolerance:.0%})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'On Trustworthiness of CPU Usage "
                    "Metering and Accounting' (Liu & Ding, ICDCSW 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runner_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial, the default)")
        cmd.add_argument("--cache-dir", default=None,
                         help="result-cache directory (off by default)")
        cmd.add_argument("--timeout-s", type=float, default=None,
                         help="per-point wall-clock timeout in seconds")
        cmd.add_argument("--retries", type=int, default=0,
                         help="extra attempts for a failed point")
        cmd.add_argument("--check-invariants", action="store_true",
                         help="run every experiment under the runtime "
                              "invariant checker (docs/invariants.md)")

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("fig_id",
                     choices=[f"fig{n}" for n in range(4, 12)]
                             + ["vmsched", "faultsweep", "smp", "fleet",
                                "timesync"])
    fig.add_argument("--scale", type=float, default=0.4)
    add_runner_flags(fig)
    fig.set_defaults(func=_cmd_figure)

    figs = sub.add_parser("figures", help="regenerate all figures")
    figs.add_argument("--scale", type=float, default=0.4)
    add_runner_flags(figs)
    figs.set_defaults(func=_cmd_figure, fig_id="all")

    sweep = sub.add_parser(
        "sweep", help="run a program x attack grid through the batch runner")
    sweep.add_argument("--programs", default="O,P,W,B",
                       help="comma-separated paper programs (O,P,W,B)")
    sweep.add_argument("--attacks", default="none,shell,scheduling",
                       help="comma-separated attack names (or 'none')")
    sweep.add_argument("--scale", type=float, default=0.4)
    sweep.add_argument("--nproc", default="1",
                       help="comma-separated CPU counts; each (program, "
                            "attack) point runs once per value (e.g. 1,2,4)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    add_runner_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    fuzz = sub.add_parser(
        "fuzz", help="randomized differential conformance testing")
    fuzz.add_argument("--iterations", type=int, default=50,
                      help="number of random scenarios to run")
    fuzz.add_argument("--seed", type=int, default=2010,
                      help="master seed for scenario generation")
    fuzz.add_argument("--out", default=None,
                      help="directory for failing-scenario replay specs")
    fuzz.add_argument("--schedulers", default="cfs,o1,rr",
                      help="comma-separated schedulers to cross-check")
    fuzz.add_argument("--inject-probability", type=float, default=0.15,
                      help="share of scenarios carrying deliberate "
                           "accounting corruption (detection soundness)")
    fuzz.add_argument("--replay", default=None, metavar="FILE",
                      help="re-run a saved failure spec and verify the "
                           "outcome digest bit-identically")
    fuzz.add_argument("--check-invariants", action="store_true",
                      help="accepted for symmetry; fuzz scenarios always "
                           "run with the invariant checker on")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress per-scenario progress lines")
    fuzz.set_defaults(func=_cmd_fuzz)

    vm = sub.add_parser(
        "vm", help="VM-level scheduling attack under the credit hypervisor")
    vm.add_argument("--attack", choices=["sched", "none"], default="sched",
                    help="co-resident attack to run (default: sched)")
    vm.add_argument("--burn-fraction", type=float, default=0.75,
                    help="fraction of each hypervisor tick the attacker "
                         "burns before dodging the sample (default 0.75)")
    vm.add_argument("--program", choices=["O", "P", "W", "B"], default="W",
                    help="victim VM workload (default W)")
    vm.add_argument("--scale", type=float, default=0.4)
    vm.add_argument("--json", metavar="PATH", default=None,
                    help="write a machine-readable report to PATH")
    add_runner_flags(vm)
    vm.set_defaults(func=_cmd_vm)

    faults = sub.add_parser(
        "faults", help="hardware fault injection + clocksource watchdog")
    faults.add_argument("--intensity", type=float, default=0.2,
                        help="fault intensity in [0, 1]: scales tick-loss "
                             "probability and TSC drift together "
                             "(default 0.2)")
    faults.add_argument("--program", choices=["O", "P", "W", "B"],
                        default="W", help="workload to meter (default W)")
    faults.add_argument("--scale", type=float, default=0.4)
    faults.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable fault report to PATH")
    add_runner_flags(faults)
    faults.set_defaults(func=_cmd_faults)

    timesync = sub.add_parser(
        "timesync", help="network time plane: sync attack vs guest defense")
    timesync.add_argument("--offset-ns", type=int, default=5_000_000,
                          help="clock offset the attacker steers the host "
                               "to, in ns (default 5ms)")
    timesync.add_argument("--protocol", choices=["ptp", "ntp"],
                          default="ptp",
                          help="sync protocol the host runs (default ptp)")
    timesync.add_argument("--program", choices=["O", "P", "W", "B"],
                          default="W", help="workload to meter (default W)")
    timesync.add_argument("--scale", type=float, default=0.4)
    timesync.add_argument("--json", metavar="PATH", default=None,
                          help="write a machine-readable report to PATH")
    add_runner_flags(timesync)
    timesync.set_defaults(func=_cmd_timesync)

    serve = sub.add_parser(
        "serve", help="multi-tenant metering daemon (JSON API over HTTP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="listen port; 0 picks an ephemeral port "
                            "(default 8787)")
    serve.add_argument("--db", default="repro-usage.db",
                       help="SQLite usage-store path "
                            "(default repro-usage.db)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="worker threads executing submissions "
                            "(default 2)")
    serve.add_argument("--selftest", action="store_true",
                       help="boot a throwaway server, drive the honest/"
                            "attacker/quota scenario end to end over HTTP "
                            "and exit non-zero on any check failure")
    serve.add_argument("--scale", type=float, default=0.1,
                       help="selftest workload scale (default 0.1)")
    serve.add_argument("--json", metavar="PATH", default=None,
                       help="write the selftest report to PATH")
    serve.add_argument("--busy-timeout-ms", type=int, default=5_000,
                       help="SQLite busy timeout — how long a locked "
                            "store is retried before erroring "
                            "(default 5000)")
    serve.add_argument("--drain-timeout-s", type=float, default=30.0,
                       help="seconds SIGTERM shutdown waits for in-flight "
                            "jobs before abandoning them (default 30)")
    serve.set_defaults(func=_cmd_serve)

    fleet = sub.add_parser(
        "fleet", help="datacenter-scale population sweep with streaming "
                      "aggregation")
    fleet.add_argument("--hosts", type=int, default=100,
                       help="physical hosts in the fleet (default 100)")
    fleet.add_argument("--guests", type=int, default=2,
                       help="metered guest slots per host (default 2)")
    fleet.add_argument("--prevalence", type=float, default=0.1,
                       help="attacker co-residency probability per host "
                            "(default 0.1)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="population seed; same seed, same fleet "
                            "(default 0)")
    fleet.add_argument("--scale", type=float, default=0.1,
                       help="workload run-length scale (default 0.1)")
    fleet.add_argument("--vm-fraction", type=float, default=0.5,
                       help="fraction of hosts that are hypervisor hosts "
                            "(default 0.5)")
    fleet.add_argument("--sync-prevalence", type=float, default=0.0,
                       help="probability a bare-metal host is under a "
                            "network sync attack (default 0: no time "
                            "plane, population identical to earlier "
                            "releases)")
    fleet.add_argument("--sync-offset-ns", type=int, default=5_000_000,
                       help="clock offset sync-attacked hosts are steered "
                            "to, in ns (default 5ms)")
    fleet.add_argument("--shards", type=int, default=None,
                       help="split the hosts into N contiguous ranges and "
                            "run them concurrently; the merged report is "
                            "bit-identical to the serial one "
                            "(docs/chaos.md)")
    fleet.add_argument("--endpoints", default=None, metavar="URLS",
                       help="comma-separated repro-serve base URLs to run "
                            "the shards on; a shard that stays dark is "
                            "declared in the report's coverage section "
                            "instead of failing the sweep")
    fleet.add_argument("--json", metavar="PATH", default=None,
                       help="write the full aggregate report to PATH")
    fleet.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    add_runner_flags(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    chaos = sub.add_parser(
        "chaos", help="fault-injection gauntlet: chaotic serve shards, "
                      "one dead, degraded-but-bounded report")
    chaos.add_argument("--intensity", type=float, default=0.4,
                       help="chaos intensity in [0, 1]: scales store/"
                            "worker/HTTP fault probabilities together "
                            "(default 0.4)")
    chaos.add_argument("--shards", type=int, default=3,
                       help="fleet shards / serve endpoints; the last one "
                            "is hard-down (default 3)")
    chaos.add_argument("--seed", type=int, default=2010,
                       help="chaos-plan seed: same seed, same fault "
                            "schedule (default 2010)")
    chaos.add_argument("--quick", action="store_true",
                       help="smaller fleet and deadlines (CI smoke mode)")
    chaos.add_argument("--db-dir", default=None,
                       help="directory for the per-shard usage stores "
                            "(default: a fresh temp dir)")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="write the gauntlet report to PATH")
    chaos.set_defaults(func=_cmd_chaos)

    gallery = sub.add_parser("gallery", help="run every attack once")
    gallery.add_argument("--scale", type=float, default=1.0)
    gallery.set_defaults(func=_cmd_gallery)

    calib = sub.add_parser("calibrate", help="measure primitive costs")
    calib.add_argument("--iterations", type=int, default=200)
    calib.set_defaults(func=_cmd_calibrate)

    comparison = sub.add_parser("comparison",
                                help="attack matrix + defense coverage")
    comparison.set_defaults(func=_cmd_comparison)

    top = sub.add_parser("top", help="procfs snapshot of a loaded machine")
    top.add_argument("--seconds", type=float, default=0.5)
    top.set_defaults(func=_cmd_top)

    bench = sub.add_parser(
        "bench", help="run the performance benchmark suite")
    bench.add_argument("--quick", action="store_true",
                       help="reduced op counts / scales (CI smoke mode)")
    bench.add_argument("--json", metavar="PATH", default=None,
                       help="report path (default: BENCH_<stamp>.json)")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="compare against a previous report; regressions "
                            "exit non-zero")
    bench.add_argument("--warn-only", action="store_true",
                       help="report baseline regressions without failing")
    bench.add_argument("--tolerance", type=float, default=0.35,
                       help="relative slowdown tolerated before a benchmark "
                            "counts as regressed (default 0.35)")
    bench.add_argument("--only", action="append", default=None,
                       metavar="SUBSTRING",
                       help="run only benchmarks whose name contains "
                            "SUBSTRING (repeatable)")
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Domain failures are an exit code and a one-line diagnosis, not a
        # traceback — scripts and CI gate on the code.
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
