"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure <fig4..fig11> [--scale S]`` — regenerate one evaluation figure
  and print the chart plus its shape checks (exit 1 if any check fails);
* ``figures [--scale S]`` — regenerate all eight;
* ``gallery`` — run every attack against one victim (summary table);
* ``calibrate`` — measure the simulated primitive costs;
* ``comparison`` — print the §V-C attack matrix and the §VI-B defense
  coverage table;
* ``top [--seconds T]`` — boot a machine with the paper's four workloads
  and print a procfs top snapshot after T simulated seconds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figure(args: argparse.Namespace) -> int:
    from .analysis.figures import FIGURES, run_figure
    from .analysis.report import figure_report

    fig_ids = sorted(FIGURES) if args.fig_id == "all" else [args.fig_id]
    ok = True
    for fig_id in fig_ids:
        fig = run_figure(fig_id, scale=args.scale)
        print(figure_report(fig))
        print()
        ok = ok and fig.passed
    return 0 if ok else 1


def _cmd_gallery(args: argparse.Namespace) -> int:
    from .analysis.experiment import run_experiment
    from .attacks import (
        InterruptFloodAttack,
        LibraryConstructorAttack,
        LibrarySubstitutionAttack,
        SchedulingAttack,
        ShellAttack,
        ThrashingAttack,
    )
    from .programs.workloads import make_ourprogram

    def victim():
        return make_ourprogram(iterations=int(2_500 * args.scale))

    baseline = run_experiment(victim())
    print(f"baseline: {baseline.total_s:.3f} s")
    rows = [
        ("shell", ShellAttack(506_000_000)),
        ("library-ctor", LibraryConstructorAttack(506_000_000)),
        ("library-subst", LibrarySubstitutionAttack(cycles_per_call=300_000)),
        ("scheduling", SchedulingAttack(nice=-20, forks=6_000)),
        ("thrashing", ThrashingAttack("i")),
        ("irq-flood", InterruptFloodAttack(rate_pps=25_000)),
    ]
    for name, attack in rows:
        result = run_experiment(victim(), attack)
        print(f"  {name:<14} {result.utime_s:.3f}u + {result.stime_s:.3f}s "
              f"(x{result.total_s / baseline.total_s:.2f})")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .analysis.calibration import calibrate

    print(calibrate(iterations=args.iterations).render())
    return 0


def _cmd_comparison(args: argparse.Namespace) -> int:
    from .attacks import comparison_matrix
    from .metering.properties import defense_coverage_table

    print(comparison_matrix())
    print()
    print(defense_coverage_table())
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .hw.machine import Machine
    from .config import default_config
    from .kernel import procfs
    from .programs.stdlib import install_standard_libraries
    from .analysis.figures import paper_workloads

    machine = Machine(default_config())
    install_standard_libraries(machine.kernel.libraries)
    shell = machine.new_shell()
    for program in paper_workloads(scale=1.0).values():
        shell.run_command(program)
    machine.run_for(int(args.seconds * 1e9))
    print(procfs.top(machine.kernel))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'On Trustworthiness of CPU Usage "
                    "Metering and Accounting' (Liu & Ding, ICDCSW 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("fig_id", choices=[f"fig{n}" for n in range(4, 12)])
    fig.add_argument("--scale", type=float, default=0.4)
    fig.set_defaults(func=_cmd_figure)

    figs = sub.add_parser("figures", help="regenerate all figures")
    figs.add_argument("--scale", type=float, default=0.4)
    figs.set_defaults(func=_cmd_figure, fig_id="all")

    gallery = sub.add_parser("gallery", help="run every attack once")
    gallery.add_argument("--scale", type=float, default=1.0)
    gallery.set_defaults(func=_cmd_gallery)

    calib = sub.add_parser("calibrate", help="measure primitive costs")
    calib.add_argument("--iterations", type=int, default=200)
    calib.set_defaults(func=_cmd_calibrate)

    comparison = sub.add_parser("comparison",
                                help="attack matrix + defense coverage")
    comparison.set_defaults(func=_cmd_comparison)

    top = sub.add_parser("top", help="procfs snapshot of a loaded machine")
    top.add_argument("--seconds", type=float, default=0.5)
    top.set_defaults(func=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
