"""Timing, reporting and baseline comparison for ``repro bench``.

A benchmark is a :class:`BenchSpec`: a name, a kind (``micro`` or ``e2e``),
a fixed operation count and a callable ``fn(ops)`` that performs that many
operations.  Fixed counts (scaled down by ``--quick``) keep the suite
deterministic in shape and its runtime predictable; the per-op cost is
simply ``wall / ops``.

Reports are JSON documents (schema ``repro-bench-v1``) carrying one entry
per benchmark (ns/op, wall seconds, op count) plus machine/env metadata so
a number can always be traced back to the interpreter and host that
produced it.  :func:`compare_reports` matches benchmarks by name against a
baseline report and flags anything slower than ``(1 + tolerance)`` times
the baseline ns/op — the tolerance is deliberately generous because
wall-clock noise on shared CI runners easily reaches tens of percent.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

BENCH_SCHEMA = "repro-bench-v1"

#: Default regression tolerance: a benchmark must be >35% slower than the
#: baseline before it is reported.
DEFAULT_TOLERANCE = 0.35


@dataclass
class BenchSpec:
    """One benchmark: ``fn(ops)`` performs ``ops`` operations."""

    name: str
    kind: str  # "micro" | "e2e"
    ops: int
    fn: Callable[[int], None]
    #: Optional human note stored alongside the numbers.
    note: str = ""


@dataclass
class BenchResult:
    """Measured outcome of one :class:`BenchSpec`."""

    name: str
    kind: str
    ops: int
    wall_s: float
    note: str = ""

    @property
    def ns_per_op(self) -> float:
        if self.ops <= 0:
            return 0.0
        return self.wall_s * 1e9 / self.ops

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "ops": self.ops,
            "wall_s": self.wall_s,
            "ns_per_op": self.ns_per_op,
            "note": self.note,
        }


def run_spec(spec: BenchSpec) -> BenchResult:
    """Time one benchmark (a single warm-free shot — cold costs are part
    of what the e2e benches measure, and the micro benches amortise any
    setup inside ``fn`` over their op count)."""
    start = time.perf_counter()
    spec.fn(spec.ops)
    wall = time.perf_counter() - start
    return BenchResult(name=spec.name, kind=spec.kind, ops=spec.ops,
                       wall_s=wall, note=spec.note)


def run_suite(quick: bool = False,
              only: Optional[Sequence[str]] = None,
              progress: Optional[Callable[[str], None]] = None,
              ) -> List[BenchResult]:
    """Run the full suite (micro then e2e) and return the results.

    ``only`` filters by substring match on benchmark names — applied
    *before* construction, so a filtered run never pays the setup cost of
    the benchmarks it skips; ``progress`` (when given) receives each
    benchmark name as it starts.
    """
    from .e2e import E2E_BUILDERS
    from .micro import MICRO_BUILDERS

    pairs = list(MICRO_BUILDERS) + list(E2E_BUILDERS)
    if only:
        pairs = [(name, builder) for name, builder in pairs
                 if any(token in name for token in only)]
    results: List[BenchResult] = []
    for name, builder in pairs:
        if progress is not None:
            progress(name)
        results.append(run_spec(builder(quick)))
    return results


def collect_metadata() -> Dict[str, Any]:
    """Machine/env provenance stored in every report."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


def build_report(results: Sequence[BenchResult],
                 quick: bool = False) -> Dict[str, Any]:
    from .. import __version__

    return {
        "schema": BENCH_SCHEMA,
        "created_utc": datetime.datetime.utcnow().replace(
            microsecond=0).isoformat() + "Z",
        "repro_version": __version__,
        "quick": quick,
        "meta": collect_metadata(),
        "benchmarks": [r.to_dict() for r in results],
    }


def write_report(path: Union[str, Path], results: Sequence[BenchResult],
                 quick: bool = False) -> Dict[str, Any]:
    doc = build_report(results, quick=quick)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    return doc


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} report "
            f"(schema={doc.get('schema')!r})")
    return doc


@dataclass
class Regression:
    """One benchmark that got slower than the baseline allows."""

    name: str
    baseline_ns: float
    current_ns: float

    @property
    def ratio(self) -> float:
        if self.baseline_ns <= 0:
            return float("inf")
        return self.current_ns / self.baseline_ns

    def __str__(self) -> str:
        return (f"{self.name}: {self.current_ns:,.0f} ns/op vs baseline "
                f"{self.baseline_ns:,.0f} ns/op ({self.ratio:.2f}x)")


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE) -> List[Regression]:
    """Benchmarks in ``current`` slower than baseline by more than
    ``tolerance`` (relative).  Benchmarks present on only one side are
    skipped — suites are allowed to grow."""
    base = {b["name"]: b for b in baseline.get("benchmarks", [])}
    regressions: List[Regression] = []
    for bench in current.get("benchmarks", []):
        ref = base.get(bench["name"])
        if ref is None:
            continue
        base_ns = float(ref.get("ns_per_op", 0.0))
        cur_ns = float(bench.get("ns_per_op", 0.0))
        if base_ns > 0 and cur_ns > base_ns * (1.0 + tolerance):
            regressions.append(Regression(bench["name"], base_ns, cur_ns))
    return regressions


def format_table(results: Sequence[BenchResult]) -> str:
    """A fixed-width results table for terminal output."""
    header = (f"{'benchmark':<32} {'kind':<6} {'ops':>10} "
              f"{'wall (s)':>10} {'ns/op':>14}")
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(f"{r.name:<32} {r.kind:<6} {r.ops:>10,} "
                     f"{r.wall_s:>10.3f} {r.ns_per_op:>14,.0f}")
    return "\n".join(lines)
