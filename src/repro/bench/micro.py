"""Microbenchmarks of the simulator's hot paths.

Each benchmark targets one of the paths the engine optimisation work
touched, so a regression here points at the responsible subsystem before
it shows up as a slow figure run:

* ``engine.slice_loop`` — the execution-engine charge loop, driven through
  a full machine running a compute-heavy workload (ops = simulated
  jiffies, so the number is "wall ns per simulated jiffy");
* ``acct.charge_tick.<scheme>`` — one exact charge + one timer-tick sample
  per op, for each accounting scheme;
* ``sched.pick_next.<kind>`` — one pick_next/update_curr/put_prev rotation
  per op, with a populated run queue;
* ``trace.emit.stored`` / ``trace.emit.suppressed`` — the trace append
  path for an enabled and a disabled category (the suppressed path is the
  one experiments pay millions of times);
* ``cache.roundtrip`` — one ResultCache put + get of a real (tiny)
  experiment result per op;
* ``chaos.backoff`` — one absorbed retryable fault per op through
  ``retry_call`` with a no-op sleep (the chaos plane's retry overhead);
* ``serve.store_contention`` — one store write transaction per op while
  a rival connection hammers the same file (the busy_timeout path two
  serve daemons sharing a store exercise).
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import replace
from typing import Iterator

from .harness import BenchSpec

#: Run-queue depth for the scheduler benchmarks.
SCHED_QUEUE_DEPTH = 16


# ---------------------------------------------------------------------------
# engine slice loop
# ---------------------------------------------------------------------------

def _bench_engine(quick: bool) -> BenchSpec:
    from ..config import default_config
    from ..hw.machine import Machine
    from ..programs.stdlib import install_standard_libraries
    from ..programs.workloads import make_ourprogram

    cfg = default_config()
    machine = Machine(cfg)
    install_standard_libraries(machine.kernel.libraries)
    shell = machine.new_shell()
    # Large enough to outlive the measurement: the engine must stay busy
    # for every measured jiffy (an exited task would turn the tail of the
    # run into fast-forwarded idle time and flatter the number).
    shell.run_command(make_ourprogram(iterations=10_000_000,
                                      cycles_per_iter=430_000,
                                      mallocs=64))
    tick_ns = cfg.tick_ns
    jiffies = 200 if quick else 1200

    def fn(ops: int) -> None:
        machine.run_for(ops * tick_ns)

    return BenchSpec(name="engine.slice_loop", kind="micro", ops=jiffies,
                     fn=fn, note="wall ns per simulated jiffy")


# ---------------------------------------------------------------------------
# accounting: exact charge + tick sample
# ---------------------------------------------------------------------------

def _bench_accounting(scheme: str, quick: bool) -> BenchSpec:
    from ..config import default_config
    from ..hw.cpu import CPUMode
    from ..kernel.accounting import ChargeKind, make_accounting
    from ..kernel.process import Task

    cfg = replace(default_config(), accounting=scheme,
                  process_aware_irq_accounting=True)
    acct = make_accounting(cfg)
    task = Task(pid=1, name="bench")
    user, kernel = CPUMode.USER, CPUMode.KERNEL
    charge_user, charge_irq = ChargeKind.USER, ChargeKind.IRQ
    ops = 40_000 if quick else 200_000

    def fn(n: int) -> None:
        charge = acct.charge
        on_tick = acct.on_tick
        for i in range(n):
            charge(task, user, 1_200, charge_user)
            charge(task, kernel, 300, charge_irq)
            on_tick(task, user if i & 1 else kernel)

    return BenchSpec(name=f"acct.charge_tick.{scheme}", kind="micro",
                     ops=ops, fn=fn,
                     note="2 charges + 1 tick sample per op")


# ---------------------------------------------------------------------------
# scheduler pick_next rotation
# ---------------------------------------------------------------------------

def _bench_scheduler(kind: str, quick: bool) -> BenchSpec:
    from ..config import default_config
    from ..kernel.process import Task, TaskState
    from ..kernel.sched import make_scheduler

    cfg = default_config()
    cfg = replace(cfg, scheduler=replace(cfg.scheduler, kind=kind))
    sched = make_scheduler(cfg)
    for i in range(SCHED_QUEUE_DEPTH):
        task = Task(pid=i + 1, name=f"bench{i}", nice=(i % 5) - 2)
        task.state = TaskState.READY
        sched.enqueue(task, wakeup=True)
    ops = 20_000 if quick else 100_000

    def fn(n: int) -> None:
        pick = sched.pick_next
        update = sched.update_curr
        put = sched.put_prev
        for _ in range(n):
            task = pick()
            update(task, 1_000_000)
            put(task)

    return BenchSpec(name=f"sched.pick_next.{kind}", kind="micro", ops=ops,
                     fn=fn,
                     note=f"pick/update_curr/put_prev over "
                          f"{SCHED_QUEUE_DEPTH} tasks")


# ---------------------------------------------------------------------------
# SMP: load balancer and lockstep slice loop
# ---------------------------------------------------------------------------

def _bench_load_balance(quick: bool) -> BenchSpec:
    from ..config import default_config
    from ..hw.machine import Machine
    from ..kernel.process import Task, TaskState

    machine = Machine(default_config(nproc=2))
    kernel = machine.kernel
    ctxs = kernel._cpu_contexts
    tasks = []
    for i in range(SCHED_QUEUE_DEPTH):
        task = Task(pid=1000 + i, name=f"bench{i}", nice=(i % 5) - 2)
        task.state = TaskState.READY
        tasks.append(task)
    ops = 5_000 if quick else 25_000

    def fn(n: int) -> None:
        balance = kernel.load_balance
        src = ctxs[0].scheduler
        for _ in range(n):
            # Pile everything on CPU 0, balance it flat, drain both
            # queues — one full worst-case rebalance per op.
            for task in tasks:
                task.cpu = 0
                src.enqueue(task, wakeup=False)
            balance()
            for task in tasks:
                ctxs[task.cpu].scheduler.dequeue(task)

    return BenchSpec(name="sched.load_balance", kind="micro", ops=ops,
                     fn=fn,
                     note=f"rebalance {SCHED_QUEUE_DEPTH} piled-up tasks "
                          f"across 2 CPUs per op")


def _bench_smp_slice(quick: bool) -> BenchSpec:
    from ..config import default_config
    from ..hw.machine import Machine
    from ..programs.stdlib import install_standard_libraries
    from ..programs.workloads import make_ourprogram

    cfg = default_config(nproc=2)
    machine = Machine(cfg)
    install_standard_libraries(machine.kernel.libraries)
    shell = machine.new_shell()
    # Two long-lived burners so the balancer spreads them and *both* CPUs
    # stay busy for every measured jiffy (see _bench_engine on why).
    for _ in range(2):
        shell.run_command(make_ourprogram(iterations=10_000_000,
                                          cycles_per_iter=430_000,
                                          mallocs=64))
    tick_ns = cfg.tick_ns
    jiffies = 150 if quick else 800

    def fn(ops: int) -> None:
        machine.run_for(ops * tick_ns)

    return BenchSpec(name="engine.smp_slice", kind="micro", ops=jiffies,
                     fn=fn,
                     note="wall ns per simulated jiffy, 2 CPUs busy "
                          "(lockstep slice + barrier path)")


# ---------------------------------------------------------------------------
# trace append
# ---------------------------------------------------------------------------

def _bench_trace(stored: bool, quick: bool) -> BenchSpec:
    from ..sim.tracing import TraceLog

    if stored:
        ops = 40_000 if quick else 200_000
        name, category = "trace.emit.stored", "bench"
    else:
        ops = 100_000 if quick else 500_000
        name, category = "trace.emit.suppressed", "quiet"

    def fn(n: int) -> None:
        log = TraceLog(enabled=("bench",), capacity=n + 1)
        emit = log.emit
        for i in range(n):
            emit(i, category, "bench event", pid=1, value=i)

    return BenchSpec(name=name, kind="micro", ops=ops, fn=fn)


# ---------------------------------------------------------------------------
# fault injection + clocksource watchdog
# ---------------------------------------------------------------------------

def _bench_fault_tick(quick: bool) -> BenchSpec:
    import random

    from ..config import default_config
    from ..faults import FaultPlan
    from ..faults.injectors import TickFaultInjector

    cfg = default_config()
    plan = FaultPlan(tick_loss_prob=0.1, tick_delay_prob=0.1,
                     tick_delay_max_ns=1_000_000,
                     smi_period_ns=50_000_000, smi_duration_ns=500_000)
    injector = TickFaultInjector(plan, random.Random(42), cfg.tick_ns)
    tick_ns = cfg.tick_ns
    ops = 40_000 if quick else 200_000

    def fn(n: int) -> None:
        decide = injector.decide
        for i in range(n):
            decide(i * tick_ns)

    return BenchSpec(name="fault.tick", kind="micro", ops=ops, fn=fn,
                     note="one timer-fire fault decision per op "
                          "(SMI + loss + delay branches armed)")


def _bench_watchdog_check(quick: bool) -> BenchSpec:
    from ..config import default_config
    from ..faults import FaultPlan
    from ..faults.injectors import TscFault
    from ..hw.cpu import CPU
    from ..kernel.timekeeping import ClocksourceWatchdog, TimeKeeper
    from ..sim.clock import Clock

    cfg = default_config()
    cpu = CPU(cfg.cpu_freq_hz)
    # Mild drift so checks take the skew-classification path without ever
    # tripping the (sticky) unstable latch.
    cpu.tsc_fault = TscFault(FaultPlan(tsc_drift_ppm=10_000))
    timekeeper = TimeKeeper(cfg.tick_ns)
    watchdog = ClocksourceWatchdog(cpu, Clock(), timekeeper, cfg.tick_ns)
    tick_ns = cfg.tick_ns
    ops = 20_000 if quick else 100_000

    def fn(n: int) -> None:
        tick = timekeeper.tick
        on_tick = watchdog.on_tick
        for i in range(1, n + 1):
            tick(True, True)
            on_tick(i * tick_ns)

    return BenchSpec(name="watchdog.check", kind="micro", ops=ops, fn=fn,
                     note="one sampled jiffy per op; a TSC cross-check "
                          "every 8th")


def _bench_sync_round(quick: bool) -> BenchSpec:
    from ..sim.rng import DeterministicRng
    from ..timesync import LinkModel, SyncNetwork, sweep_sync_plan

    # Attacked + jittered so the exchange takes every branch: loss draw,
    # asymmetry add, tamper draws, servo update.
    net = SyncNetwork(DeterministicRng(42),
                      attack=sweep_sync_plan(5_000_000),
                      link=LinkModel(base_delay_ns=500_000,
                                     jitter_ns=100_000))
    daemon = net.add_host("bench", drift_ppb=40_000)
    interval = daemon.interval_ns
    ops = 20_000 if quick else 100_000

    def fn(n: int) -> None:
        exchange = net.exchange
        for i in range(1, n + 1):
            exchange(daemon, i * interval)

    return BenchSpec(name="timesync.sync_round", kind="micro", ops=ops,
                     fn=fn,
                     note="one full two-way sync exchange per op "
                          "(delay-asymmetry attack + servo armed)")


def _bench_servo_step(quick: bool) -> BenchSpec:
    from ..timesync.netplane import LocalClock, PtpDaemon

    clock = LocalClock(drift_ppb=40_000)
    daemon = PtpDaemon("bench", clock, 100_000_000)
    interval = daemon.interval_ns
    ops = 40_000 if quick else 200_000

    def fn(n: int) -> None:
        update = daemon.servo_update
        for i in range(1, n + 1):
            # Alternate sub-threshold (slew) and over-threshold (step)
            # estimates so both servo paths stay hot.
            est = 2_000_000 if i % 8 == 0 else -40_000
            update(est, 500_000, i * interval)

    return BenchSpec(name="timesync.servo_step", kind="micro", ops=ops,
                     fn=fn,
                     note="one servo decision per op (PI slew with a "
                          "step every 8th)")


# ---------------------------------------------------------------------------
# hypervisor: tick path and vCPU context switch
# ---------------------------------------------------------------------------

def _busy_hypervisor(n_vms: int = 2):
    from ..programs.attackers import make_busyloop
    from ..programs.stdlib import install_standard_libraries
    from ..virt.hypervisor import Hypervisor

    hv = Hypervisor()
    for i in range(n_vms):
        vm = hv.create_vm(f"bench{i}")
        install_standard_libraries(vm.machine.kernel.libraries)
        # Outlives any measurement window, so every tick samples a busy
        # vCPU (an idle guest would fast-forward and flatter the number).
        vm.machine.new_shell().run_command(
            make_busyloop(total_cycles=10_000_000_000_000))
    return hv


def _bench_virt_tick(quick: bool) -> BenchSpec:
    hv = _busy_hypervisor()
    tick_ns = hv.cfg.tick_ns
    ticks = 100 if quick else 600

    def fn(ops: int) -> None:
        hv.run_for(ops * tick_ns)

    return BenchSpec(name="virt.tick", kind="micro", ops=ticks, fn=fn,
                     note="wall ns per hypervisor accounting tick "
                          "(2 busy guests)")


def _bench_vcpu_switch(quick: bool) -> BenchSpec:
    hv = _busy_hypervisor()
    hv.step()  # dispatch one vCPU so every _reschedule is a real switch
    ops = 20_000 if quick else 100_000

    def fn(n: int) -> None:
        resched = hv._reschedule
        for _ in range(n):
            hv.need_resched = True
            resched()

    return BenchSpec(name="virt.vcpu_switch", kind="micro", ops=ops, fn=fn,
                     note="requeue + pick_next + ledger sync per op, "
                          "alternating 2 vCPUs")


# ---------------------------------------------------------------------------
# result-cache round trip
# ---------------------------------------------------------------------------

def _bench_cache(quick: bool) -> BenchSpec:
    from ..runner.cache import ResultCache
    from ..runner.specs import ExperimentSpec, run_spec

    # A genuinely tiny point: one real result exercises the full
    # to_dict/from_dict serialisation both ways per op.
    spec = ExperimentSpec(program="O",
                          program_kwargs={"iterations": 3,
                                          "cycles_per_iter": 50_000,
                                          "mallocs": 1})
    result = run_spec(spec)
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    cache = ResultCache(tmpdir)
    ops = 60 if quick else 300

    def fn(n: int) -> None:
        try:
            for _ in range(n):
                cache.put(spec, result)
                cache.get(spec)
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)

    return BenchSpec(name="cache.roundtrip", kind="micro", ops=ops, fn=fn,
                     note="1 put + 1 get of a real result per op")


# ---------------------------------------------------------------------------
# fleet: expansion/dedup and streaming aggregation
# ---------------------------------------------------------------------------

def _bench_fleet_expand(quick: bool) -> BenchSpec:
    from ..fleet import FleetSpec, distinct_units

    hosts = 200 if quick else 2_000

    def fn(n: int) -> None:
        distinct_units(FleetSpec(hosts=n, guests=2, prevalence=0.1,
                                 seed=7, scale=0.05))

    return BenchSpec(name="fleet.expand", kind="micro", ops=hosts, fn=fn,
                     note="one host drawn, spec-built and deduped per op "
                          "(no experiments run)")


def _bench_fleet_aggregate(quick: bool) -> BenchSpec:
    from ..fleet import FleetAggregator, FleetSpec, distinct_units
    from ..runner import BatchRunner

    # Real outcomes, produced once in setup; the timed loop is the pure
    # streaming fold (audit + trust grade + sketch update per op).
    fleet = FleetSpec(hosts=6, guests=2, prevalence=0.3, seed=7, scale=0.04)
    groups = distinct_units(fleet)
    outcomes = BatchRunner().run([group.unit.spec for group in groups])
    pairs = list(zip(groups, outcomes))
    ops = 10_000 if quick else 50_000

    def fn(n: int) -> None:
        aggregator = FleetAggregator(fleet)
        add = aggregator.add
        for i in range(n):
            group, outcome = pairs[i % len(pairs)]
            add(group, outcome)
        aggregator.report()

    return BenchSpec(name="fleet.aggregate", kind="micro", ops=ops, fn=fn,
                     note="one weighted outcome folded into the streaming "
                          "aggregate per op")


# ---------------------------------------------------------------------------
# serve submit round trip
# ---------------------------------------------------------------------------

def _bench_serve_submit(quick: bool) -> BenchSpec:
    import json as _json
    import os
    import urllib.request

    from ..serve import MeteringService, ReproServer, UsageStore

    tmpdir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    store = UsageStore(os.path.join(tmpdir, "usage.db"))
    server = ReproServer(MeteringService(store, jobs=1))
    server.start_background()
    base = server.address

    def post(path: str, body: dict) -> dict:
        req = urllib.request.Request(
            base + path, data=_json.dumps(body).encode(), method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=30) as resp:
            return _json.loads(resp.read())

    tenant = post("/v1/tenants", {"name": "bench"})
    submit_path = f"/v1/tenants/{tenant['tenant_id']}/jobs"
    spec = {"program": "W", "program_kwargs": {"loops": 50},
            "label": "bench:serve"}
    # Warm the ledger: every measured submission is the steady-state hot
    # path (HTTP + validation + idempotency check + ledger-served bill).
    post(submit_path, {"spec": spec})
    ops = 25 if quick else 100

    def fn(n: int) -> None:
        try:
            for i in range(n):
                post(submit_path, {"spec": spec,
                                   "idempotency_key": f"op-{i}"})
        finally:
            server.close()
            shutil.rmtree(tmpdir, ignore_errors=True)

    return BenchSpec(name="serve.submit_roundtrip", kind="micro", ops=ops,
                     fn=fn,
                     note="1 HTTP submit billed from the ledger per op")


# ---------------------------------------------------------------------------
# chaos plane: retry/backoff and contended store writes
# ---------------------------------------------------------------------------

def _bench_chaos_backoff(quick: bool) -> BenchSpec:
    import random
    import sqlite3

    from ..chaos import BackoffPolicy, retry_call

    # Every op absorbs exactly one retryable fault: one failed call, one
    # jittered backoff computation (sleep is a no-op — the schedule math
    # and retry plumbing are what is being priced), one successful call.
    policy = BackoffPolicy(retries=2, base_ms=1.0, multiplier=2.0,
                           max_ms=8.0, jitter_fraction=0.1)
    rng = random.Random(1)
    ops = 20_000 if quick else 100_000

    def fn(n: int) -> None:
        flip = {"fail": False}

        def flaky() -> None:
            flip["fail"] = not flip["fail"]
            if flip["fail"]:
                raise sqlite3.OperationalError("database is locked")

        for _ in range(n):
            retry_call(flaky, policy, rng=rng, sleep=lambda _s: None)

    return BenchSpec(name="chaos.backoff", kind="micro", ops=ops, fn=fn,
                     note="one absorbed fault (retry + jittered backoff "
                          "schedule) per op, no-op sleep")


def _bench_store_contention(quick: bool) -> BenchSpec:
    import os
    import threading

    from ..serve import UsageStore

    # Two connections to one store file, as two serve daemons sharing a
    # database would be: a rival thread hammers write transactions while
    # the timed loop lands its own — each op is one BEGIN IMMEDIATE
    # transaction that may have to ride out the rival's lock via the
    # store's busy_timeout budget.
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-store-")
    path = os.path.join(tmpdir, "usage.db")
    store = UsageStore(path)
    tenant_id = store.register_tenant("bench")["tenant_id"]
    rival = UsageStore(path)
    stop = threading.Event()

    def hammer() -> None:
        quota = 10 ** 9
        while not stop.is_set():
            quota += 1
            rival.set_quota(tenant_id, quota)

    thread = threading.Thread(target=hammer, daemon=True,
                              name="bench-rival-writer")
    thread.start()
    ops = 200 if quick else 1_000

    def fn(n: int) -> None:
        try:
            for i in range(n):
                store.set_quota(tenant_id, 10 ** 6 + i)
        finally:
            stop.set()
            thread.join()
            rival.close()
            store.close()
            shutil.rmtree(tmpdir, ignore_errors=True)

    return BenchSpec(name="serve.store_contention", kind="micro", ops=ops,
                     fn=fn,
                     note="one write txn against a rival writer on the "
                          "same store file per op")


#: name → builder(quick) pairs, dependency-light first.  The names are
#: static so :func:`repro.bench.harness.run_suite` can filter *before*
#: constructing a benchmark (construction does the setup work — building
#: machines, running the tiny cache-seed experiment — which is also why
#: it happens outside the timed window).
MICRO_BUILDERS = [
    ("trace.emit.suppressed",
     lambda quick: _bench_trace(stored=False, quick=quick)),
    ("trace.emit.stored",
     lambda quick: _bench_trace(stored=True, quick=quick)),
] + [
    (f"acct.charge_tick.{scheme}",
     lambda quick, scheme=scheme: _bench_accounting(scheme, quick))
    for scheme in ("tick", "tsc", "dual")
] + [
    (f"sched.pick_next.{kind}",
     lambda quick, kind=kind: _bench_scheduler(kind, quick))
    for kind in ("cfs", "o1", "rr")
] + [
    ("sched.load_balance", _bench_load_balance),
    ("fault.tick", _bench_fault_tick),
    ("watchdog.check", _bench_watchdog_check),
    ("timesync.sync_round", _bench_sync_round),
    ("timesync.servo_step", _bench_servo_step),
    ("cache.roundtrip", _bench_cache),
    ("fleet.expand", _bench_fleet_expand),
    ("fleet.aggregate", _bench_fleet_aggregate),
    ("serve.submit_roundtrip", _bench_serve_submit),
    ("chaos.backoff", _bench_chaos_backoff),
    ("serve.store_contention", _bench_store_contention),
    ("virt.vcpu_switch", _bench_vcpu_switch),
    ("virt.tick", _bench_virt_tick),
    ("engine.slice_loop", _bench_engine),
    ("engine.smp_slice", _bench_smp_slice),
]


def micro_benchmarks(quick: bool = False) -> Iterator[BenchSpec]:
    """The micro suite (lazy: each spec is built as it is yielded)."""
    return (builder(quick) for _, builder in MICRO_BUILDERS)
