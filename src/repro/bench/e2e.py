"""End-to-end benchmarks: whole-pipeline wall-clock timings.

These are the numbers a user actually feels: how long a cold figure takes
to regenerate and how long the batch runner needs for a small sweep.  Both
run cache-less (cold) so they measure simulation throughput rather than
cache hits.
"""

from __future__ import annotations

from typing import Iterator, List

from .harness import BenchSpec


def _bench_figure(quick: bool) -> BenchSpec:
    from ..analysis.figures import figure4

    scale = 0.1 if quick else 0.3

    def fn(ops: int) -> None:
        for _ in range(ops):
            figure4(scale=scale)

    return BenchSpec(name="e2e.figure4_cold", kind="e2e", ops=1, fn=fn,
                     note=f"figure4 at scale {scale}, no cache")


def _bench_sweep(quick: bool) -> BenchSpec:
    from ..analysis.figures import paper_workload_params
    from ..runner.pool import BatchRunner
    from ..runner.specs import ExperimentSpec

    params = paper_workload_params(0.03 if quick else 0.08)
    specs: List[ExperimentSpec] = []
    for program in ("O", "P"):
        for attack in (None, "shell"):
            specs.append(ExperimentSpec(program=program,
                                        program_kwargs=params[program],
                                        attack=attack))
    runner = BatchRunner(jobs=1)

    def fn(ops: int) -> None:
        outcomes = runner.run(specs)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            raise RuntimeError(
                f"benchmark sweep failed: {failures[0].failure}")

    return BenchSpec(name="e2e.sweep_serial", kind="e2e", ops=len(specs),
                     fn=fn, note="O/P x none/shell through BatchRunner, "
                                 "serial, no cache")


#: name → builder(quick) pairs; see ``MICRO_BUILDERS`` in micro.py.
E2E_BUILDERS = [
    ("e2e.sweep_serial", _bench_sweep),
    ("e2e.figure4_cold", _bench_figure),
]


def e2e_benchmarks(quick: bool = False) -> Iterator[BenchSpec]:
    """The e2e suite (lazy: each spec is built as it is yielded)."""
    return (builder(quick) for _, builder in E2E_BUILDERS)
