"""Performance benchmark harness for the simulator.

Two layers, mirroring how the hot paths were optimised:

* :mod:`repro.bench.micro` — microbenchmarks of the individual hot paths
  (engine slice loop, tick delivery + accounting, scheduler pick_next,
  trace append, result-cache round trips);
* :mod:`repro.bench.e2e` — end-to-end timings (cold figure generation and
  a representative sweep through the batch runner).

``repro bench`` runs both, prints a table and writes a ``BENCH_<stamp>.json``
report; ``--baseline`` compares against a previous report so CI can flag
perf regressions (``--warn-only`` downgrades the failure to a warning).
"""

from .harness import (
    BENCH_SCHEMA,
    BenchResult,
    build_report,
    compare_reports,
    format_table,
    load_report,
    run_suite,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "build_report",
    "compare_reports",
    "format_table",
    "load_report",
    "run_suite",
    "write_report",
]
