"""The §V-C comparison of the attacks: vulnerability, strength, side
effects, privilege.  Regenerated as a data structure (and renderable table)
so tests can assert the qualitative claims and the bench can print it."""

from __future__ import annotations

from typing import List

from .base import AttackTraits
from .fault_flood import ExceptionFloodAttack
from .irq_flood import InterruptFloodAttack
from .library_ctor import LibraryConstructorAttack
from .library_subst import LibrarySubstitutionAttack
from .sched_attack import SchedulingAttack
from .shell_attack import ShellAttack
from .thrashing import ThrashingAttack

#: Traits of all six attacks, in the paper's presentation order.
ALL_ATTACK_TRAITS: List[AttackTraits] = [
    ShellAttack.traits,
    LibraryConstructorAttack.traits,
    LibrarySubstitutionAttack.traits,
    SchedulingAttack.traits,
    ThrashingAttack.traits,
    InterruptFloodAttack.traits,
    ExceptionFloodAttack.traits,
]


def comparison_matrix() -> str:
    """Render the §V-C comparison as a fixed-width table."""
    headers = ("attack", "section", "inflates", "strength",
               "root?", "vulnerability exploited", "side effects")
    rows = [
        (t.name, t.paper_section, t.inflates, t.strength,
         "yes" if t.requires_root else "no", t.vulnerability, t.side_effects)
        for t in ALL_ATTACK_TRAITS
    ]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]

    def fmt(row) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
