"""Attack interface and the qualitative traits of §V-C.

An attack object is single-use: create one per experiment run.  The
lifecycle mirrors how a dishonest provider operates:

1. ``install(machine, shell)`` — tamper with the platform *before* the
   user's job starts (patch the shell, plant libraries, set LD_PRELOAD);
2. ``engage(machine, victim)`` — start active machinery once the victim
   process exists (attach the tracer, launch the Fork chain or memory hog,
   start the packet flood);
3. ``cleanup(machine)`` — stop anything still running so the simulation can
   quiesce (the provider covering its tracks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell


@dataclass(frozen=True)
class AttackTraits:
    """The §V-C comparison dimensions for one attack."""

    name: str
    paper_section: str
    #: "utime" or "stime": which component the attack inflates.
    inflates: str
    #: What flaw it exploits.
    vulnerability: str
    #: "arbitrary" (attacker-chosen), "tunable", or "bounded".
    strength: str
    #: Side effects on the rest of the system.
    side_effects: str
    #: Does mounting it need root (or LSM-granted) privilege?
    requires_root: bool


class Attack:
    """Base class; concrete attacks override the hooks they need."""

    traits: AttackTraits

    #: Should the experiment harness let the attacker run to completion
    #: after the victim exits (needed when the figure reports the
    #: attacker's own CPU time, as Figs. 7-8 do)?
    wait_for_attacker = False

    def __init__(self) -> None:
        self._engaged = False
        #: Attacker-side tasks created by engage(), for reporting.
        self.attacker_tasks: List["Task"] = []

    # -- lifecycle ------------------------------------------------------------

    def install(self, machine: "Machine", shell: "Shell") -> None:
        """Tamper with the platform before the victim launches."""

    def pre_launch(self, machine: "Machine", shell: "Shell") -> None:
        """Warm up attack machinery before the victim starts (e.g. the
        memory hog building pressure)."""

    def engage(self, machine: "Machine", victim: "Task") -> None:
        """Start active attack machinery against a running victim."""
        self._engaged = True

    def cleanup(self, machine: "Machine") -> None:
        """Stop any machinery still running."""

    # -- reporting --------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.traits.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoAttack(Attack):
    """The honest-platform control run."""

    traits = AttackTraits(
        name="none",
        paper_section="-",
        inflates="-",
        vulnerability="-",
        strength="-",
        side_effects="-",
        requires_root=False,
    )
