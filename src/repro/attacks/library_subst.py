"""The shared-library function-substitution attack (paper §V-B2, Fig. 6).

The provider preloads fake ``malloc()`` and ``sqrt()`` that "first execute
the attacking code and then call the genuine" function.  Program semantics
are preserved (the genuine call still happens, via RTLD_NEXT delegation)
but every call steals cycles, so the inflation is *amplified* by the call
count — the difference from the constructor attack the paper highlights.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence

from ..kernel.loader.library import SharedLibrary
from ..programs.base import GuestContext, GuestFunction
from ..programs.ops import CallNext, Compute, Provenance
from .base import Attack, AttackTraits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.shell import Shell

ATTACK_LIB_NAME = "libattack_subst"

#: Default per-call theft: ~40 us at 2.53 GHz.
DEFAULT_CYCLES_PER_CALL = 100_000


def make_interposer(symbol: str, steal_cycles: int) -> GuestFunction:
    """A fake ``symbol`` that burns cycles then delegates to the genuine one."""

    def body(ctx: GuestContext, *args):
        yield Compute(steal_cycles)
        result = yield CallNext(symbol, args)
        return result

    return GuestFunction(f"fake_{symbol}", body, Provenance.INJECTED)


class LibrarySubstitutionAttack(Attack):
    """LD_PRELOAD interposers for hot library functions."""

    traits = AttackTraits(
        name="library-subst",
        paper_section="V-B2",
        inflates="utime",
        vulnerability="LD_PRELOAD symbol interposition inside the victim",
        strength="arbitrary",
        side_effects="every program calling the functions pays",
        requires_root=False,
    )

    def __init__(self, symbols: Sequence[str] = ("malloc", "sqrt"),
                 cycles_per_call: int = DEFAULT_CYCLES_PER_CALL) -> None:
        super().__init__()
        self.symbols = tuple(symbols)
        self.cycles_per_call = cycles_per_call
        self.library: SharedLibrary = None

    def install(self, machine: "Machine", shell: "Shell") -> None:
        interposers: Dict[str, GuestFunction] = {
            symbol: make_interposer(symbol, self.cycles_per_call)
            for symbol in self.symbols
        }
        self.library = SharedLibrary(
            ATTACK_LIB_NAME,
            symbols=interposers,
            provenance=Provenance.INJECTED,
        )
        machine.kernel.libraries.install(self.library, replace=True)
        preload = shell.env.get("LD_PRELOAD", "")
        shell.set_env("LD_PRELOAD",
                      f"{ATTACK_LIB_NAME} {preload}".strip())
