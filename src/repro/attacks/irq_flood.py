"""The interrupt-flooding attack (paper §IV-B3, Fig. 10).

A second machine blasts junk IP packets at the server's NIC.  Each packet
raises an interrupt whose handler time is billed to whichever process is
running — on a dedicated utility-computing platform, the victim.  The
paper notes this is among the *weakest* attacks: handlers are cheap
relative to user work, and the victim only pays for interrupts that land
while it happens to be on the CPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..hw.nic import PacketFlood
from .base import Attack, AttackTraits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell

DEFAULT_RATE_PPS = 20_000.0


class InterruptFloodAttack(Attack):
    """Flood the NIC with junk packets from an external host."""

    traits = AttackTraits(
        name="irq-flood",
        paper_section="IV-B3",
        inflates="stime",
        vulnerability="handler time billed to the interrupted process",
        strength="bounded",
        side_effects="denial-of-service pressure on the whole system",
        requires_root=False,  # mounted from outside the box entirely
    )

    def __init__(self, rate_pps: float = DEFAULT_RATE_PPS,
                 jitter: bool = False) -> None:
        super().__init__()
        self.rate_pps = rate_pps
        self.jitter = jitter
        self.flood: Optional[PacketFlood] = None

    def engage(self, machine: "Machine", victim: "Task") -> None:
        super().engage(machine, victim)
        self.flood = machine.packet_flood(self.rate_pps, jitter=self.jitter)
        self.flood.start()

    def cleanup(self, machine: "Machine") -> None:
        if self.flood is not None:
            self.flood.stop()
