"""The exception-flooding attack (paper §IV-B4, Fig. 11).

A memory hog "requests more than [the machine's RAM] ... continuously
writes data and reads them later", keeping physical memory exhausted.  The
victim pays three ways: its pages get evicted and major-fault back in
(handler time + swap I/O waits), its own allocations enter direct reclaim
(LRU scanning billed as its stime), and the stream of disk-completion
interrupts lands on it while the hog sleeps on I/O.

The paper also notes the natural cap: push too far and the OOM killer
terminates a process — which the simulated kernel will also do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.signals import SIGKILL
from ..programs.attackers import make_memhog
from .base import Attack, AttackTraits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell


class ExceptionFloodAttack(Attack):
    """Launch a memory hog sized above physical RAM."""

    traits = AttackTraits(
        name="fault-flood",
        paper_section="IV-B4",
        inflates="stime",
        vulnerability="fault handling and reclaim billed to the faulter; "
                      "I/O completions billed to the interrupted process",
        strength="bounded",
        side_effects="system-wide thrashing; capped by the OOM killer",
        requires_root=False,
    )

    def __init__(self, hog_pages: Optional[int] = None,
                 passes: int = 100_000,
                 pressure_target: float = 0.98,
                 warmup_max_ns: int = 20_000_000_000) -> None:
        super().__init__()
        self.hog_pages = hog_pages
        self.passes = passes
        self.pressure_target = pressure_target
        self.warmup_max_ns = warmup_max_ns
        self.hog_task: Optional["Task"] = None
        self._shell: Optional["Shell"] = None

    def install(self, machine: "Machine", shell: "Shell") -> None:
        self._shell = shell

    def pre_launch(self, machine: "Machine", shell: "Shell") -> None:
        """Start the hog and let it exhaust RAM before the victim runs, so
        the victim's whole lifetime sits under memory pressure."""
        pages = self.hog_pages
        if pages is None:
            # "more than 2 gigabytes ... beyond the capacity of the
            # physical memory": size the hog ~20% above RAM.
            pages = int(machine.cfg.memory.total_frames * 1.2)
        self.hog_task = self._shell.run_command(
            make_memhog(pages=pages, passes=self.passes))
        self.attacker_tasks.append(self.hog_task)
        mm = machine.kernel.mm

        def pressurised() -> bool:
            return (not self.hog_task.alive
                    or (mm.memory_pressure() >= self.pressure_target
                        and mm.swap_outs > 0))

        machine.run_until(pressurised, max_ns=self.warmup_max_ns)

    def engage(self, machine: "Machine", victim: "Task") -> None:
        super().engage(machine, victim)

    def cleanup(self, machine: "Machine") -> None:
        if self.hog_task is not None and self.hog_task.alive:
            machine.kernel.post_signal(self.hog_task, SIGKILL)
