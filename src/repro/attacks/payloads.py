"""Injected attack payloads.

The paper's launch-time attacks all splice the *same* CPU-bound code into
the victim ("about 2^34 times of loops ... therefore is CPU bound"); the
figures then show every program's user time growing by the same constant.
The payload here is a plain cycle burner tagged with the ``INJECTED``
provenance so the ground-truth oracle can price the theft exactly.
"""

from __future__ import annotations

from ..programs.base import GuestContext, GuestFunction
from ..programs.ops import Compute, Provenance

#: Default payload: ~0.4 simulated seconds at 2.53 GHz — the scaled
#: analogue of the paper's ~34-second injected loop.
DEFAULT_PAYLOAD_CYCLES = 1_000_000_000


def cpu_burn_payload(cycles: int = DEFAULT_PAYLOAD_CYCLES,
                     name: str = "attack-payload") -> GuestFunction:
    """A CPU-bound injected payload of exactly ``cycles`` cycles."""
    if cycles < 0:
        raise ValueError("payload cycles must be non-negative")

    def body(ctx: GuestContext):
        yield Compute(cycles)
        return None

    return GuestFunction(name, body, Provenance.INJECTED)
