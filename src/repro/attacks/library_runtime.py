"""Runtime (dlopen-path) library attack — the §IV-A2 dynamic-loading case.

Instead of preloading a new library, the provider *overwrites an installed
one* that the victim loads on demand.  The tampered copy keeps the genuine
symbols working (each wrapped to burn attacker cycles first, the genuine
body invoked underneath with its own provenance) and gains a constructor
payload that runs inside ``dlopen`` — all billed to the caller, exactly as
the loader-billing analysis of §III-C predicts for runtime loading.

Note the difference from :class:`~repro.attacks.library_subst.
LibrarySubstitutionAttack`: no ``LD_PRELOAD`` fingerprint is left in the
environment; the attack lives purely in the (provider-controlled) library
file, and only measurement of the file itself can catch it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..kernel.loader.library import SharedLibrary
from ..programs.base import GuestContext, GuestFunction
from ..programs.ops import Compute, Invoke, Provenance
from .base import Attack, AttackTraits
from .payloads import cpu_burn_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.shell import Shell

DEFAULT_CTOR_CYCLES = 120_000_000   # ~47 ms per dlopen
DEFAULT_PER_CALL_CYCLES = 60_000    # ~24 us per wrapped call


def _wrap_symbol(symbol: str, genuine: GuestFunction,
                 steal_cycles: int) -> GuestFunction:
    """A tampered export: burn cycles, then run the genuine body.

    The genuine body is pushed as its own frame so its work keeps the
    library provenance — the oracle bills only the theft to the attack.
    """

    def body(ctx: GuestContext, *args):
        yield Compute(steal_cycles)
        result = yield Invoke(genuine, args)
        return result

    return GuestFunction(f"tampered_{symbol}", body, Provenance.INJECTED)


class RuntimeLibraryAttack(Attack):
    """Overwrite a dlopen'd library with a tampered copy."""

    traits = AttackTraits(
        name="library-runtime",
        paper_section="IV-A2 (dynamic loading)",
        inflates="utime",
        vulnerability="dlopen runs ctors and plugin code in the victim's "
                      "account; the library file is provider-controlled",
        strength="arbitrary",
        side_effects="every program loading the library pays",
        requires_root=False,
    )

    def __init__(self, target_lib: str,
                 ctor_payload_cycles: int = DEFAULT_CTOR_CYCLES,
                 per_call_cycles: int = DEFAULT_PER_CALL_CYCLES) -> None:
        super().__init__()
        self.target_lib = target_lib
        self.ctor_payload_cycles = ctor_payload_cycles
        self.per_call_cycles = per_call_cycles
        self.tampered: SharedLibrary = None

    def install(self, machine: "Machine", shell: "Shell") -> None:
        genuine = machine.kernel.libraries.lookup(self.target_lib)
        symbols: Dict[str, GuestFunction] = {
            name: _wrap_symbol(name, fn, self.per_call_cycles)
            for name, fn in genuine.symbols.items()
        }
        self.tampered = SharedLibrary(
            genuine.name,
            symbols=symbols,
            constructor=cpu_burn_payload(self.ctor_payload_cycles,
                                         f"{genuine.name}.evil_ctor"),
            destructor=genuine.destructor,
            provenance=Provenance.INJECTED,
            version=genuine.version,  # the file claims the same version
        )
        machine.kernel.libraries.install(self.tampered, replace=True)
