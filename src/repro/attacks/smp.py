"""SMP metering attacks: tick dodging by migration, and IRQ steering.

Multiprocessors open two attack surfaces that do not exist on one CPU:

* **Cross-CPU tick dodging** (:class:`SmpDodgeAttack`) — per-CPU timer
  ticks are staggered across the jiffy, and each tick samples only the
  task running on *its* CPU.  A task that burns until just before its
  current CPU's tick and then migrates to the CPU whose tick is furthest
  away is (almost) never the sampled task, so tick accounting bills it
  (almost) nothing — the single-CPU tick-dodging idea of the paper's
  §IV-B1, rebuilt from migration instead of sub-jiffy yielding.  On a
  uniprocessor the same program cannot dodge (``migrate`` is a no-op and
  every tick is local), so its bill converges to its work — which is
  what the ``smp`` figure plots.

* **IRQ steering** (:class:`IrqSteerAttack`) — interrupt affinity
  (/proc/irq/<n>/smp_affinity) decides which CPU runs a device's
  handler.  A root attacker steers the NIC line at the victim's CPU,
  parks its own burner on another CPU, and floods the NIC: every
  handler nanosecond is billed to whoever runs on the steered CPU — the
  victim — while the attacker's own CPU stays interrupt-free.  The
  same handler-misattribution flaw as §IV-B3, with affinity turning a
  scattershot attack into a targeted one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..hw.irq import IRQ_NIC
from ..hw.nic import PacketFlood
from ..programs.attackers import make_pinned_burner, make_smp_dodger
from .base import Attack, AttackTraits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell

DEFAULT_DODGE_CYCLES = 506_000_000  # ~0.2 s at the default 2.53 GHz
DEFAULT_GUARD_NS = 40_000
DEFAULT_STEER_RATE_PPS = 20_000.0


class SmpDodgeAttack(Attack):
    """Burn between local ticks, migrate off the CPU before each lands."""

    wait_for_attacker = True

    traits = AttackTraits(
        name="smp-dodge",
        paper_section="IV-B1 (SMP variant)",
        inflates="utime",  # of nobody: the attacker's own bill vanishes
        vulnerability="per-CPU tick sampling + attacker-driven migration",
        strength="arbitrary",
        side_effects="steals capacity from every CPU it visits",
        requires_root=False,  # sched_setaffinity on self is unprivileged
    )

    def __init__(self, total_cycles: int = DEFAULT_DODGE_CYCLES,
                 guard_ns: int = DEFAULT_GUARD_NS) -> None:
        super().__init__()
        self.total_cycles = total_cycles
        self.guard_ns = guard_ns
        self.dodger: Optional["Task"] = None
        self._shell: Optional["Shell"] = None

    def install(self, machine: "Machine", shell: "Shell") -> None:
        self._shell = shell

    def engage(self, machine: "Machine", victim: "Task") -> None:
        super().engage(machine, victim)
        cfg = machine.cfg
        program = make_smp_dodger(
            total_cycles=self.total_cycles,
            tick_ns=cfg.tick_ns,
            nproc=cfg.nproc,
            freq_hz=cfg.cpu_freq_hz,
            guard_ns=self.guard_ns)
        self.dodger = self._shell.run_command(program)
        self.attacker_tasks.append(self.dodger)

    def cleanup(self, machine: "Machine") -> None:
        if self.dodger is not None and self.dodger.alive:
            machine.kernel.do_exit(self.dodger, 0)


class IrqSteerAttack(Attack):
    """Steer the NIC interrupt line at the victim's CPU and flood it."""

    traits = AttackTraits(
        name="irq-steer",
        paper_section="IV-B3 (SMP variant)",
        inflates="stime",
        vulnerability="handler billed to the interrupted process, "
                      "with affinity choosing who that is",
        strength="bounded",
        side_effects="interrupt load concentrated on one CPU",
        requires_root=True,  # writing smp_affinity needs root
    )

    def __init__(self, rate_pps: float = DEFAULT_STEER_RATE_PPS,
                 target_cpu: int = 0,
                 burner_cycles: int = 2_000_000_000) -> None:
        super().__init__()
        self.rate_pps = rate_pps
        self.target_cpu = target_cpu
        self.burner_cycles = burner_cycles
        self.flood: Optional[PacketFlood] = None
        self.burner: Optional["Task"] = None
        self._shell: Optional["Shell"] = None

    def install(self, machine: "Machine", shell: "Shell") -> None:
        self._shell = shell
        # Steer the NIC line before the victim launches (echo mask >
        # /proc/irq/11/smp_affinity, as root).
        machine.pic.set_affinity(IRQ_NIC, self.target_cpu)

    def engage(self, machine: "Machine", victim: "Task") -> None:
        super().engage(machine, victim)
        nproc = machine.cfg.nproc
        if nproc > 1:
            # Park the attacker's own work on a different CPU: it keeps
            # that CPU busy (so the balancer leaves the victim where the
            # interrupts land) and never pays for a handler itself.
            away = (self.target_cpu + 1) % nproc
            program = make_pinned_burner(away, self.burner_cycles)
            self.burner = self._shell.run_command(program, uid=0)
            self.attacker_tasks.append(self.burner)
        self.flood = machine.packet_flood(self.rate_pps)
        self.flood.start()

    def cleanup(self, machine: "Machine") -> None:
        if self.flood is not None:
            self.flood.stop()
        if self.burner is not None and self.burner.alive:
            machine.kernel.do_exit(self.burner, 0)
