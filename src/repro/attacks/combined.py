"""Composite attacks.

The paper's §I notes that "more sophisticated attacks can also be mounted
by [a] real-world service provider to maximize its benefits" — in practice
a provider would stack attacks: an LD_PRELOAD theft *and* a scheduling
attack, say.  :class:`CompositeAttack` runs any set of attacks through one
lifecycle so their effects combine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .base import Attack, AttackTraits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell


class CompositeAttack(Attack):
    """Mount several attacks against the same victim run."""

    traits = AttackTraits(
        name="composite",
        paper_section="I (discussion)",
        inflates="utime+stime",
        vulnerability="all of the constituents' vulnerabilities",
        strength="arbitrary",
        side_effects="union of the constituents'",
        requires_root=False,  # refined per instance below
    )

    def __init__(self, attacks: Sequence[Attack]) -> None:
        super().__init__()
        if not attacks:
            raise ValueError("composite of zero attacks")
        self.attacks = list(attacks)
        self.wait_for_attacker = any(a.wait_for_attacker for a in attacks)

    @property
    def name(self) -> str:
        return "+".join(attack.name for attack in self.attacks)

    @property
    def requires_root(self) -> bool:
        return any(a.traits.requires_root for a in self.attacks)

    def install(self, machine: "Machine", shell: "Shell") -> None:
        for attack in self.attacks:
            attack.install(machine, shell)

    def pre_launch(self, machine: "Machine", shell: "Shell") -> None:
        for attack in self.attacks:
            attack.pre_launch(machine, shell)

    def engage(self, machine: "Machine", victim: "Task") -> None:
        super().engage(machine, victim)
        for attack in self.attacks:
            attack.engage(machine, victim)
            self.attacker_tasks.extend(attack.attacker_tasks)

    def cleanup(self, machine: "Machine") -> None:
        for attack in reversed(self.attacks):
            attack.cleanup(machine)
