"""The shared-library constructor attack (paper §IV-A2, Fig. 5).

A library's ``__attribute__((constructor))`` routine runs before ``main()``
(and its destructor after exit), inside the victim process, billed to the
victim.  The provider compiles the payload into a library and points
``LD_PRELOAD`` at it — the paper declares ``test_init_t``/``test_fini_t``
exactly this way.  The result is "almost identical to Fig. 4: in essence,
the same attacking code is executed at different locations."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..kernel.loader.library import SharedLibrary
from ..programs.ops import Provenance
from .base import Attack, AttackTraits
from .payloads import DEFAULT_PAYLOAD_CYCLES, cpu_burn_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.shell import Shell

ATTACK_LIB_NAME = "libattack_ctor"


class LibraryConstructorAttack(Attack):
    """LD_PRELOAD a library whose constructor burns attacker-chosen cycles."""

    traits = AttackTraits(
        name="library-ctor",
        paper_section="IV-A2",
        inflates="utime",
        vulnerability="loader runs library ctors/dtors in the victim's account",
        strength="arbitrary",
        side_effects="every program loading the library pays",
        requires_root=False,
    )

    def __init__(self, payload_cycles: int = DEFAULT_PAYLOAD_CYCLES,
                 use_destructor: bool = False) -> None:
        super().__init__()
        self.payload_cycles = payload_cycles
        self.use_destructor = use_destructor
        self.library: SharedLibrary = None

    def install(self, machine: "Machine", shell: "Shell") -> None:
        ctor_cycles = self.payload_cycles
        dtor_cycles = 0
        if self.use_destructor:
            # Split the payload across both hooks, like implementing
            # test_init_t and test_fini_t.
            ctor_cycles = self.payload_cycles // 2
            dtor_cycles = self.payload_cycles - ctor_cycles
        self.library = SharedLibrary(
            ATTACK_LIB_NAME,
            symbols={},
            constructor=cpu_burn_payload(ctor_cycles, "test_init_t"),
            destructor=(cpu_burn_payload(dtor_cycles, "test_fini_t")
                        if dtor_cycles else None),
            provenance=Provenance.INJECTED,
        )
        machine.kernel.libraries.install(self.library, replace=True)
        preload = shell.env.get("LD_PRELOAD", "")
        shell.set_env("LD_PRELOAD",
                      f"{ATTACK_LIB_NAME} {preload}".strip())
