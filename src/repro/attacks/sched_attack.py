"""The process-scheduling attack (paper §IV-B1, Figs. 7-8).

The ``Fork`` program repeatedly forks a do-nothing child and waits for it.
Parent and children each burn only microseconds before voluntarily leaving
the CPU, so they are almost never the running task when the timer interrupt
samples — the victim is, and gets billed whole jiffies that the attacker
partly consumed.  Raising the attacker's priority (lowering nice, which
needs root) shrinks the CFS fork debit and packs more hidden fork cycles
into each jiffy, strengthening the attack exactly as Fig. 7 shows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..programs.attackers import make_fork_attacker
from .base import Attack, AttackTraits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell


class SchedulingAttack(Attack):
    """Run the Fork program concurrently with the victim."""

    wait_for_attacker = True

    traits = AttackTraits(
        name="scheduling",
        paper_section="IV-B1",
        inflates="utime",
        vulnerability="whole-jiffy sampling at the timer interrupt",
        strength="tunable",
        side_effects="none on other processes; outcome depends on load",
        requires_root=True,  # to raise the attacker's priority
    )

    def __init__(self, nice: Optional[int] = -20, forks: int = 1 << 14) -> None:
        super().__init__()
        self.nice = nice
        self.forks = forks
        self.fork_task: Optional["Task"] = None
        self._shell: Optional["Shell"] = None

    def install(self, machine: "Machine", shell: "Shell") -> None:
        self._shell = shell

    def engage(self, machine: "Machine", victim: "Task") -> None:
        super().engage(machine, victim)
        program = make_fork_attacker(forks=self.forks, nice=self.nice)
        # Run as root so setpriority(-n) succeeds (paper §V-C notes the
        # privilege prerequisite).
        self.fork_task = self._shell.run_command(program, uid=0)
        self.attacker_tasks.append(self.fork_task)

    def cleanup(self, machine: "Machine") -> None:
        if self.fork_task is not None and self.fork_task.alive:
            machine.kernel.do_exit(self.fork_task, 0)
