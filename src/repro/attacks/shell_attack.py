"""The shell attack (paper §IV-A1, evaluated in Fig. 4).

The kernel starts metering a process at ``fork()``, but the program's code
only runs after ``execve()``.  A provider who patches the shell — the paper
modified bash's ``execute_disk_command()`` between ``make_child()`` and
``shell_execve()`` — gets arbitrary code billed to the user's process, with
no root requirement beyond owning the shell binary the session uses.

Effect: every program's *user* time grows by the same constant (the payload
runs once, before ``main``); system time is untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import Attack, AttackTraits
from .payloads import DEFAULT_PAYLOAD_CYCLES, cpu_burn_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.shell import Shell


class ShellAttack(Attack):
    """Inject a CPU-bound payload between fork() and execve()."""

    traits = AttackTraits(
        name="shell",
        paper_section="IV-A1",
        inflates="utime",
        vulnerability="metering starts at fork, before the user's code loads",
        strength="arbitrary",
        side_effects="every program started from the tampered shell pays",
        requires_root=False,
    )

    def __init__(self, payload_cycles: int = DEFAULT_PAYLOAD_CYCLES) -> None:
        super().__init__()
        self.payload_cycles = payload_cycles

    def install(self, machine: "Machine", shell: "Shell") -> None:
        shell.post_fork_payload = cpu_burn_payload(
            self.payload_cycles, name="shell-attack-payload")
