"""The execution-thrashing attack (paper §IV-B2, Fig. 9).

A tracer process ``ptrace``-attaches to the victim and plants a hardware
watchpoint (DR0/DR7) on a frequently-accessed variable.  Every hit raises a
debug exception, delivers SIGTRAP, stops the victim, wakes the tracer, and
costs two context switches before the tracer resumes the victim with
``ptrace(CONT)`` — all of it billed to the victim, mostly as system time.

The paper watched: O's loop counter, Pi's ``y`` (~1e7 hits), Whetstone's
``T1`` (~2e5 hits) and Brute's ``count`` in ``crack_len()`` (~895k hits at
``PER_THREAD_TRIES = 50``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import SimulationError
from ..hw.cpu import Watchpoint
from ..programs.base import GuestContext, GuestFunction
from ..programs.ops import Compute, Provenance, Syscall
from .base import Attack, AttackTraits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell


def tracer_body(ctx: GuestContext, victim_pid: int, watch_vaddr: int,
                watch_len: int):
    """The tracer loop, entirely through real ptrace/waitpid syscalls.

    Hardware debug registers are per-thread state, so the tracer polls
    ``/proc/<pid>/task`` for new threads (Brute spawns its workers after
    launch), attaches to each, plants the watchpoint, and then services
    SIGTRAP stops with ``ptrace(CONT)``.
    """
    attached = set()
    while True:
        tids = yield Syscall("proc_threads", (victim_pid,))
        if isinstance(tids, int):
            return 0  # ESRCH: the victim (and its group) are gone
        for tid in tids:
            if tid in attached:
                continue
            result = yield Syscall("ptrace", ("attach", tid))
            if isinstance(result, int) and result < 0:
                continue  # raced with thread exit
            attached.add(tid)
            result = yield Syscall("waitpid", (tid,))
            if isinstance(result, int) and result < 0:
                continue
            yield Syscall("ptrace", ("pokeuser_dr", tid, 0,
                                     Watchpoint(watch_vaddr, watch_len)))
            yield Syscall("ptrace", ("cont", tid))

        result = yield Syscall("waitpid", (-1, True))  # WNOHANG
        if isinstance(result, int):
            if result < 0:
                return 0  # ECHILD: no tracees left
            # Nothing stopped right now; nap briefly, then rescan for new
            # threads (the poll costs the *tracer*, not the victim).
            yield Syscall("nanosleep", (200_000,))
            continue
        pid, (kind, _info) = result
        if kind == "stopped":
            # A watchpoint SIGTRAP: bookkeeping, then resume the tracee.
            yield Compute(800)
            yield Syscall("ptrace", ("cont", pid))


class ThrashingAttack(Attack):
    """ptrace + hardware watchpoint on a hot victim variable."""

    traits = AttackTraits(
        name="thrashing",
        paper_section="IV-B2",
        inflates="stime",
        vulnerability="trace stops/resumes cost kernel time in the victim",
        strength="tunable",
        side_effects="least side effects: aims exactly at the victim",
        requires_root=True,  # LSM-gated ptrace (paper §V-C)
    )

    def __init__(self, watch_symbol: str, watch_len: int = 8,
                 tracer_uid: int = 0) -> None:
        super().__init__()
        self.watch_symbol = watch_symbol
        self.watch_len = watch_len
        self.tracer_uid = tracer_uid
        self.tracer_task: Optional["Task"] = None

    def engage(self, machine: "Machine", victim: "Task") -> None:
        super().engage(machine, victim)
        # The victim must have exec'd before the symbol has an address; let
        # the simulation run through the launch phase.
        machine.run_until(
            lambda: (not victim.alive)
            or (victim.guest_ctx is not None
                and victim.guest_ctx.has_symbol(self.watch_symbol)),
            max_ns=10_000_000_000)
        if not victim.alive:
            raise SimulationError("victim exited before the tracer attached")
        vaddr = victim.guest_ctx.addr(self.watch_symbol)
        fn = GuestFunction("thrash-tracer", tracer_body, Provenance.TRACER)
        self.tracer_task = machine.kernel.spawn(
            fn, args=(victim.pid, vaddr, self.watch_len),
            name="tracer", uid=self.tracer_uid)
        self.attacker_tasks.append(self.tracer_task)

    def cleanup(self, machine: "Machine") -> None:
        if self.tracer_task is not None and self.tracer_task.alive:
            machine.kernel.do_exit(self.tracer_task, 0)
