"""The paper's six attacks on CPU-time metering (Section IV).

Every attack implements the :class:`~repro.attacks.base.Attack` interface:
``install`` tampers with the platform before the victim launches (shell,
libraries, environment), ``engage`` starts active machinery once the victim
is running (tracer, flood, hog, fork chain), ``cleanup`` quiesces the
machine afterwards.
"""

from .base import Attack, AttackTraits, NoAttack
from .combined import CompositeAttack
from .shell_attack import ShellAttack
from .library_ctor import LibraryConstructorAttack
from .library_runtime import RuntimeLibraryAttack
from .library_subst import LibrarySubstitutionAttack
from .sched_attack import SchedulingAttack
from .thrashing import ThrashingAttack
from .irq_flood import InterruptFloodAttack
from .fault_flood import ExceptionFloodAttack
from .smp import IrqSteerAttack, SmpDodgeAttack
from .comparison import ALL_ATTACK_TRAITS, comparison_matrix

__all__ = [
    "Attack",
    "AttackTraits",
    "NoAttack",
    "CompositeAttack",
    "ShellAttack",
    "LibraryConstructorAttack",
    "LibrarySubstitutionAttack",
    "RuntimeLibraryAttack",
    "SchedulingAttack",
    "ThrashingAttack",
    "InterruptFloodAttack",
    "ExceptionFloodAttack",
    "SmpDodgeAttack",
    "IrqSteerAttack",
    "ALL_ATTACK_TRAITS",
    "comparison_matrix",
]
