"""Deterministic simulated network time plane: links, clocks, daemons.

This module models the part of a datacenter the metering papers take for
granted: that every host agrees what time it is.  A :class:`SyncNetwork`
owns one *true time* axis (the simulator's event clock — the same exact
oracle the invariant checker reconciles billing against) and a reference
master; each participating host hangs a :class:`LocalClock` (an integer
phase/frequency ledger over true time) and a :class:`PtpDaemon` or
:class:`NtpDaemon` off it.  Daemons run periodic two-way exchange rounds
(master→slave sync carrying t1/t2, slave→master delay-req carrying t3/t4)
over a seeded :class:`LinkModel`, estimate ``offset = ((t2-t1)-(t4-t3))/2``
and discipline the local clock with a servo — a PI phase/frequency servo
for PTP (ptp4l-style: step when far, slew when close) and a step-only,
slow-poll servo for NTP.

Everything is integer nanoseconds / parts-per-billion; every probabilistic
choice reads a named ``timesync:*`` stream of the run's
:class:`~repro.sim.rng.DeterministicRng`.  Two runs with the same spec and
seed produce bit-identical sync histories, and a run *without* a time-sync
spec constructs none of these objects at all.

Conservation: a :class:`LocalClock` never forgets where its phase came
from.  Its offset from true time decomposes *exactly* (integer equality,
no epsilon) into initial offset + accrued natural drift + accrued servo
slew + issued servo steps, and the daemon keeps an independent ledger of
the corrections it issued.  :meth:`SyncNetwork.check_conservation` crosses
the two ledgers and the true-time oracle and raises
:class:`TimeSyncError` on any mismatch; the machine integration reports
that through the :class:`~repro.verify.invariants.InvariantChecker` as the
``timesync-conservation`` law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ConfigError, SimulationError
from .plan import SyncAttackPlan

#: Integer scale for frequency arithmetic: parts-per-billion per second.
PPB = 1_000_000_000

#: Offsets at or beyond this make the PTP servo *step* the clock instead
#: of slewing (mirrors ptp4l's first-sync behaviour).
PTP_STEP_THRESHOLD_NS = 1_000_000

#: Servo frequency corrections are clamped to +/-500 ppm, the classic
#: adjtimex() limit — a servo chasing a lying master saturates here.
MAX_ADJ_PPB = 500_000_000 // 1000  # 500_000 ppb == 500 ppm


class TimeSyncError(SimulationError):
    """A time-sync conservation law failed (a harness bug, not an attack)."""


@dataclass(frozen=True)
class LinkModel:
    """Seeded symmetric network path between master and slave.

    ``base_delay_ns`` is the honest one-way delay; ``jitter_ns`` adds a
    uniform integer draw in ``[0, jitter_ns]`` per packet from the
    ``timesync:link`` stream.  Attack-injected asymmetry lives in the
    :class:`SyncAttackPlan`, not here — the link itself is honest.
    """

    base_delay_ns: int = 500_000
    jitter_ns: int = 0

    def __post_init__(self) -> None:
        if self.base_delay_ns < 0 or self.jitter_ns < 0:
            raise ConfigError("link delays must be >= 0")

    def one_way_delay_ns(self, rng) -> int:
        if self.jitter_ns:
            return self.base_delay_ns + rng.randint(0, self.jitter_ns)
        return self.base_delay_ns


class LocalClock:
    """Integer-exact local clock: phase + frequency ledger over true time.

    ``read(true_ns)`` returns the host's local view of the wall clock;
    ``offset_ns`` is (local - true) with every contribution recorded in a
    separate ledger column so the decomposition can be re-checked exactly:

        offset_ns == initial_offset_ns + drift_ledger_ns
                     + servo_freq_ledger_ns + servo_step_ledger_ns

    Accrual is piecewise: each commit floors the (drift + adj) product over
    the elapsed span independently, and both the offset and the ledger are
    built from the *same* commits, so the identity is exact by arithmetic,
    not by tolerance.
    """

    def __init__(self, drift_ppb: int = 0, offset_ns: int = 0,
                 start_ns: int = 0) -> None:
        self.drift_ppb = drift_ppb          # natural oscillator error
        self.adj_ppb = 0                    # servo frequency discipline
        self.offset_ns = offset_ns          # local - true, at _committed_ns
        self.initial_offset_ns = offset_ns
        self.drift_ledger_ns = 0            # cumulative natural drift
        self.servo_freq_ledger_ns = 0       # cumulative servo slew
        self.servo_step_ledger_ns = 0       # cumulative servo steps
        self._committed_ns = start_ns       # true time of last commit

    def advance_to(self, true_ns: int) -> None:
        """Commit phase accrued between the last commit and ``true_ns``."""
        if true_ns < self._committed_ns:
            raise TimeSyncError(
                f"clock advanced backwards: {true_ns} < {self._committed_ns}")
        span = true_ns - self._committed_ns
        if span:
            drift_add = self.drift_ppb * span // PPB
            slew_add = self.adj_ppb * span // PPB
            self.offset_ns += drift_add + slew_add
            self.drift_ledger_ns += drift_add
            self.servo_freq_ledger_ns += slew_add
            self._committed_ns = true_ns

    def read(self, true_ns: int) -> int:
        """The host's local wall clock at true time ``true_ns``."""
        self.advance_to(true_ns)
        return true_ns + self.offset_ns

    def step(self, delta_ns: int, true_ns: int) -> None:
        """Servo phase step (clock_settime-style jump)."""
        self.advance_to(true_ns)
        self.offset_ns += delta_ns
        self.servo_step_ledger_ns += delta_ns

    def set_freq(self, adj_ppb: int, true_ns: int) -> None:
        """Servo frequency adjustment (adjtimex-style slew)."""
        self.advance_to(true_ns)  # old rate accrues up to this instant
        self.adj_ppb = adj_ppb

    def servo_total_ns(self) -> int:
        """Everything the servo ever did to this clock (steps + slew)."""
        return self.servo_step_ledger_ns + self.servo_freq_ledger_ns

    def conservation_error_ns(self) -> int:
        """Exact ledger identity residue — nonzero means a harness bug."""
        return self.offset_ns - (self.initial_offset_ns
                                 + self.drift_ledger_ns
                                 + self.servo_freq_ledger_ns
                                 + self.servo_step_ledger_ns)


class PtpDaemon:
    """Slave-side IEEE 1588-style daemon: two-way exchange + PI servo.

    The servo steps the clock when the estimate is beyond
    ``PTP_STEP_THRESHOLD_NS`` and otherwise slews with a PI filter
    (proportional gain 1/2, integral gain 1/8 per round) clamped to
    +/-500 ppm.  It keeps an *issued-corrections ledger* independent of
    the clock's own, so :meth:`SyncNetwork.check_conservation` can cross
    the two.
    """

    protocol = "ptp"

    def __init__(self, name: str, clock: LocalClock,
                 interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ConfigError("sync interval must be positive")
        self.name = name
        self.clock = clock
        self.interval_ns = interval_ns
        self.rounds = 0
        self.lost_rounds = 0
        self.last_offset_est_ns = 0
        self.last_delay_est_ns = 0
        # Independent ledger of corrections this daemon *issued*:
        self.issued_step_ns = 0
        self.issued_adj_ppb = 0
        self._integral_ppb = 0

    def note_lost(self) -> None:
        self.lost_rounds += 1

    def servo_update(self, offset_est_ns: int, delay_est_ns: int,
                     true_ns: int) -> None:
        """Discipline the local clock toward ``offset_est -> 0``."""
        self.rounds += 1
        self.last_offset_est_ns = offset_est_ns
        self.last_delay_est_ns = delay_est_ns
        if abs(offset_est_ns) >= PTP_STEP_THRESHOLD_NS:
            self.clock.step(-offset_est_ns, true_ns)
            self.issued_step_ns += -offset_est_ns
            return
        self._integral_ppb += -(offset_est_ns * PPB) // (self.interval_ns * 8)
        p_ppb = -(offset_est_ns * PPB) // (self.interval_ns * 2)
        adj = self._integral_ppb + p_ppb
        adj = max(-MAX_ADJ_PPB, min(MAX_ADJ_PPB, adj))
        self.clock.set_freq(adj, true_ns)
        self.issued_adj_ppb = adj


class NtpDaemon(PtpDaemon):
    """NTP-flavoured variant: slow poll, step-only, no frequency
    discipline.  With a drifting oscillator its offset sawtooths between
    polls — measurably worse residual than PTP, same exchange math."""

    protocol = "ntp"

    #: NTP polls far less often than PTP syncs.
    POLL_MULTIPLIER = 8

    def __init__(self, name: str, clock: LocalClock,
                 interval_ns: int) -> None:
        super().__init__(name, clock, interval_ns * self.POLL_MULTIPLIER)

    def servo_update(self, offset_est_ns: int, delay_est_ns: int,
                     true_ns: int) -> None:
        self.rounds += 1
        self.last_offset_est_ns = offset_est_ns
        self.last_delay_est_ns = delay_est_ns
        if offset_est_ns:
            self.clock.step(-offset_est_ns, true_ns)
            self.issued_step_ns += -offset_est_ns


class SyncNetwork:
    """One reference master plus any number of disciplined slave hosts.

    The master *is* the true-time oracle unless the attack plan says it
    lies (``master_offset_ns`` / ``master_drift_ppb``).  Attack hooks —
    delay asymmetry, timestamp tampering, round loss — are applied here,
    on the wire, exactly where a network attacker sits; daemons and
    clocks never know whether they are under attack.
    """

    def __init__(self, rng, attack: Optional[SyncAttackPlan] = None,
                 link: Optional[LinkModel] = None,
                 start_ns: int = 0) -> None:
        self.attack = attack if attack is None or not attack.is_empty() \
            else None
        self.link = link or LinkModel()
        self.start_ns = start_ns
        self.hosts: List[PtpDaemon] = []
        self._link_rng = rng.stream("timesync:link")
        self._tamper_rng = rng.stream("timesync:tamper")
        self._loss_rng = rng.stream("timesync:loss")

    # -- topology ----------------------------------------------------------

    def add_host(self, name: str, drift_ppb: int = 0,
                 protocol: str = "ptp",
                 interval_ns: int = 100_000_000) -> PtpDaemon:
        if protocol not in ("ptp", "ntp"):
            raise ConfigError(f"unknown sync protocol {protocol!r}")
        clock = LocalClock(drift_ppb=drift_ppb, start_ns=self.start_ns)
        cls = PtpDaemon if protocol == "ptp" else NtpDaemon
        daemon = cls(name, clock, interval_ns)
        self.hosts.append(daemon)
        return daemon

    def max_flight_ns(self) -> int:
        """Worst-case true-time span one exchange can occupy (both flight
        legs at maximum jitter plus any injected asymmetry) — callers use
        it to keep whole rounds inside their horizon."""
        worst_leg = self.link.base_delay_ns + self.link.jitter_ns
        asym = self.attack.delay_asymmetry_ns if self.attack else 0
        return 2 * worst_leg + asym

    # -- master ------------------------------------------------------------

    def master_time_ns(self, true_ns: int) -> int:
        """What the (possibly byzantine) master claims the time is."""
        claimed = true_ns
        if self.attack is not None:
            claimed += self.attack.master_offset_ns
            claimed += self.attack.master_drift_ppb \
                * (true_ns - self.start_ns) // PPB
        return claimed

    # -- the two-way exchange ----------------------------------------------

    def exchange(self, daemon: PtpDaemon, true_ns: int) -> Optional[int]:
        """Run one sync round for ``daemon`` starting at true ``true_ns``.

        Returns the daemon's offset estimate (ns) or None if the round
        was lost.  The exchange is evaluated in closed form over the
        packet flight times; callers must space rounds further apart than
        one round trip (intervals are ~100ms, delays ~0.5ms).
        """
        attack = self.attack
        if attack is not None and attack.loss_prob > 0 \
                and self._loss_rng.random() < attack.loss_prob:
            daemon.note_lost()
            return None

        fwd = self.link.one_way_delay_ns(self._link_rng)
        rev = self.link.one_way_delay_ns(self._link_rng)
        if attack is not None:
            fwd += attack.delay_asymmetry_ns  # master->slave path only

        # master->slave sync message
        t1 = self.master_time_ns(true_ns)
        slave_recv_true = true_ns + fwd
        t2 = daemon.clock.read(slave_recv_true)
        # slave->master delay request (sent immediately on receipt)
        t3 = t2
        t4 = self.master_time_ns(slave_recv_true + rev)

        if attack is not None and attack.tamper_prob > 0:
            # the wire-crossing master stamps are the tamperable pair
            if self._tamper_rng.random() < attack.tamper_prob:
                t1 += self._tamper_rng.randint(-attack.tamper_ns,
                                               attack.tamper_ns)
            if self._tamper_rng.random() < attack.tamper_prob:
                t4 += self._tamper_rng.randint(-attack.tamper_ns,
                                               attack.tamper_ns)

        offset_est = ((t2 - t1) - (t4 - t3)) // 2
        delay_est = ((t2 - t1) + (t4 - t3)) // 2
        daemon.servo_update(offset_est, delay_est, slave_recv_true)
        return offset_est

    # -- standalone driver -------------------------------------------------

    def run(self, duration_ns: int) -> None:
        """Drive every host's exchange grid for ``duration_ns`` of true
        time (standalone use; the Machine integration schedules rounds on
        its own event queue instead)."""
        end_ns = self.start_ns + duration_ns
        flight = self.max_flight_ns()
        due = {id(d): self.start_ns + d.interval_ns for d in self.hosts}
        while True:
            pending = [(due[id(d)], i, d) for i, d in enumerate(self.hosts)
                       if due[id(d)] + flight <= end_ns]
            if not pending:
                break
            when, _, daemon = min(pending)
            self.exchange(daemon, when)
            due[id(daemon)] = when + daemon.interval_ns
        for daemon in self.hosts:
            daemon.clock.advance_to(end_ns)
        self.check_conservation(end_ns)

    # -- conservation ------------------------------------------------------

    def check_conservation(self, true_ns: int) -> None:
        """Exact-integer cross-check of every host's clock against its
        ledgers, its daemon's issued-corrections ledger, and the true-time
        oracle.  Raises :class:`TimeSyncError` on any mismatch."""
        for daemon in self.hosts:
            clock = daemon.clock
            residue = clock.conservation_error_ns()
            if residue:
                raise TimeSyncError(
                    f"{daemon.name}: clock ledger identity off by "
                    f"{residue}ns")
            if daemon.issued_step_ns != clock.servo_step_ledger_ns:
                raise TimeSyncError(
                    f"{daemon.name}: daemon issued {daemon.issued_step_ns}ns "
                    f"of steps but the clock recorded "
                    f"{clock.servo_step_ledger_ns}ns")
            if daemon.issued_adj_ppb != clock.adj_ppb:
                raise TimeSyncError(
                    f"{daemon.name}: daemon issued adj {daemon.issued_adj_ppb}"
                    f"ppb but the clock runs at {clock.adj_ppb}ppb")
            if clock.read(true_ns) - true_ns != clock.offset_ns:
                raise TimeSyncError(
                    f"{daemon.name}: local clock disagrees with its own "
                    f"offset against the true-time oracle")


class OffsetEstimator:
    """Guest-side, platform-agnostic clock-offset estimator (the defense).

    The guest cannot see true time — but it *can* see everything its own
    sync servo did to its clock (`chronyc tracking` style): every step and
    every slewed interval is local state, captured exactly in the clock's
    servo ledgers.  A sane oscillator needs at most
    ``tolerance_ppb * elapsed`` of total correction; cumulative servo
    activity beyond that envelope cannot be physics and is attributed to
    the network.

    Per round the estimator grades the interval:

    * ``|est| <= plausible``            -> TRUSTED (indistinguishable
      from honest oscillator drift);
    * ``|est| > plausible``             -> DEGRADED (the clock was steered
      further than the oscillator could need);
    * ``|est| > untrusted_factor * plausible`` or more than half the
      rounds lost                        -> UNTRUSTED.

    where ``est`` is the servo-activity total and ``plausible`` the
    drift envelope at that instant.  :meth:`correction_ns` clips the
    estimate to the envelope — the metering layer subtracts it from
    cross-host stamps, leaving a residual bounded by
    :meth:`uncertainty_ns` *by construction*: the true offset decomposes
    into servo total (known exactly) plus natural drift (unknown but
    inside the envelope whenever ``tolerance_ppb`` bounds the real
    oscillator).
    """

    def __init__(self, daemon: PtpDaemon, start_ns: int,
                 tolerance_ppb: int = 100_000,
                 untrusted_factor: int = 8) -> None:
        if tolerance_ppb <= 0:
            raise ConfigError("oscillator tolerance must be positive")
        self.daemon = daemon
        self.start_ns = start_ns
        self.tolerance_ppb = tolerance_ppb
        self.untrusted_factor = untrusted_factor
        self.trusted_rounds = 0
        self.degraded_rounds = 0
        self.untrusted_rounds = 0
        self._last_true_ns = start_ns

    # -- the estimate ------------------------------------------------------

    def est_offset_ns(self) -> int:
        """Best guest-side estimate of (local - true): the servo total."""
        return self.daemon.clock.servo_total_ns()

    def plausible_ns(self, true_ns: int) -> int:
        """Honest-oscillator correction envelope since the epoch."""
        return self.tolerance_ppb * (true_ns - self.start_ns) // PPB

    def uncertainty_ns(self, true_ns: int) -> int:
        """Declared residual bound after :meth:`correction_ns` is applied:
        the unknown natural-drift term plus the clipped envelope."""
        return 2 * self.plausible_ns(true_ns)

    def correction_ns(self, true_ns: int) -> int:
        """What the metering layer should subtract from a locally-stamped
        interval: the servo total clipped to the plausible envelope, so an
        honest host is never 'corrected' at all."""
        est = self.est_offset_ns()
        envelope = self.plausible_ns(true_ns)
        if abs(est) <= envelope:
            return 0
        return est - envelope if est > 0 else est + envelope

    # -- grading -----------------------------------------------------------

    def observe_round(self, true_ns: int) -> str:
        """Grade the interval since the last observation; returns the
        grade name (``trusted``/``degraded``/``untrusted``)."""
        self._last_true_ns = true_ns
        est = abs(self.est_offset_ns())
        envelope = self.plausible_ns(true_ns)
        total = self.daemon.rounds + self.daemon.lost_rounds
        starved = total > 0 and self.daemon.lost_rounds * 2 > total
        if starved or est > self.untrusted_factor * max(envelope, 1):
            self.untrusted_rounds += 1
            return "untrusted"
        if est > envelope:
            self.degraded_rounds += 1
            return "degraded"
        self.trusted_rounds += 1
        return "trusted"

    def summary(self, true_ns: int) -> Dict[str, Any]:
        return {
            "est_offset_ns": self.est_offset_ns(),
            "uncertainty_ns": self.uncertainty_ns(true_ns),
            "correction_ns": self.correction_ns(true_ns),
            "trusted_rounds": self.trusted_rounds,
            "degraded_rounds": self.degraded_rounds,
            "untrusted_rounds": self.untrusted_rounds,
        }
