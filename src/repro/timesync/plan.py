"""Declarative, seeded, spec-serializable network time-sync attack plans.

A :class:`SyncAttackPlan` describes every deliberate misbehaviour of the
*network time plane* a run should suffer — the attack surface "Breaking
Precision Time: OS Vulnerability Exploits Against IEEE 1588" maps out for
PTP deployments:

* **delay asymmetry** — extra one-way delay injected on the master→slave
  path only.  Two-way exchange protocols assume symmetric paths, so an
  asymmetry of ``a`` biases every offset estimate by ``a/2`` and the servo
  faithfully steers the victim's clock that far off true time;
* **malicious (byzantine) master** — the grandmaster itself lies: its
  timestamps carry a constant offset and/or drift, and every slave follows;
* **timestamp tampering** — an on-path attacker rewrites individual
  protocol timestamps (t1/t4, the master-side pair that crosses the wire);
* **sync-packet loss** — exchange rounds are dropped, starving the servo.

The plan follows the :class:`~repro.faults.FaultPlan` conventions exactly:
plain frozen data, JSON round-trip with unknown-key rejection, an
``is_empty()`` notion collapsed by :func:`normalize_sync_plan` so the
no-attack path (and every pre-timesync cache key) stays bit-identical, and
a one-knob :func:`sweep_sync_plan` for figures and the CLI.

Determinism: probabilistic pieces (tamper draws, loss draws, link jitter)
read dedicated named RNG streams (``timesync:*``) of the run's
:class:`~repro.sim.rng.DeterministicRng`, so a plan plus a config seed
always reproduces the same sync history and never perturbs the draws any
other subsystem sees.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping

from ..errors import ConfigError


@dataclass(frozen=True)
class SyncAttackPlan:
    """One run's worth of deliberate time-plane misbehaviour.

    All-defaults is the *empty* plan: no attack hook is armed and the sync
    exchange is bit-identical to one without an attack layer at all.
    """

    # -- delay-asymmetry injection ----------------------------------------
    #: Extra one-way delay (ns) added to every master→slave packet.  The
    #: slave's offset estimate is biased by half of this, steering its
    #: clock *behind* true time by ``delay_asymmetry_ns / 2``.
    delay_asymmetry_ns: int = 0

    # -- malicious / byzantine master -------------------------------------
    #: Constant lie added to every timestamp the master produces; slaves
    #: converge onto the lie (their clocks end up *ahead* by this much).
    master_offset_ns: int = 0
    #: Frequency lie of the master's claimed time, in parts per billion;
    #: slaves are dragged along at this rate.
    master_drift_ppb: int = 0

    # -- timestamp tampering ----------------------------------------------
    #: Per-timestamp tampering probability for the wire-crossing stamps
    #: (t1 and t4 independently); draws come from ``timesync:tamper``.
    tamper_prob: float = 0.0
    #: Maximum magnitude of one tampered stamp's perturbation (uniform in
    #: ``[-tamper_ns, +tamper_ns]``).
    tamper_ns: int = 0

    # -- sync-packet loss --------------------------------------------------
    #: Probability an entire exchange round is lost (no servo update);
    #: draws come from ``timesync:loss``.
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("tamper_prob", "loss_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
        for name in ("delay_asymmetry_ns", "tamper_ns"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.tamper_prob > 0 and self.tamper_ns <= 0:
            raise ConfigError("tamper_prob needs a positive tamper_ns")

    # -- structure queries -------------------------------------------------

    def is_empty(self) -> bool:
        """True when the plan attacks nothing."""
        return not (self.delay_asymmetry_ns or self.master_offset_ns
                    or self.master_drift_ppb or self.tamper_prob > 0
                    or self.loss_prob > 0)

    #: Steady-state clock offset (ns, signed) the deterministic attack
    #: components steer a converged slave to: the servo drives the offset
    #: *estimate* to zero, which plants the true offset at the estimate's
    #: bias.  Tampering and loss are noise, not bias, and contribute 0.
    def injected_offset_ns(self) -> int:
        return self.master_offset_ns - self.delay_asymmetry_ns // 2

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full plain-data form (every field, defaults included)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SyncAttackPlan":
        """Inverse of :meth:`to_dict`; unknown keys fail loudly so a typo
        in a spec never silently runs attack-free."""
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(f"unknown sync attack plan field(s) "
                              f"{sorted(unknown)}; have {sorted(known)}")
        return cls(**dict(doc))

    def describe(self) -> str:
        """Short human summary of the armed attack components."""
        parts = []
        if self.delay_asymmetry_ns:
            parts.append(f"delay-asym {self.delay_asymmetry_ns}ns")
        if self.master_offset_ns:
            parts.append(f"byzantine-master {self.master_offset_ns:+}ns")
        if self.master_drift_ppb:
            parts.append(f"master-drift {self.master_drift_ppb}ppb")
        if self.tamper_prob > 0:
            parts.append(f"tamper p={self.tamper_prob:g}"
                         f"<={self.tamper_ns}ns")
        if self.loss_prob > 0:
            parts.append(f"sync-loss p={self.loss_prob:g}")
        return ", ".join(parts) if parts else "no sync attack"


def normalize_sync_plan(attack) -> "SyncAttackPlan | None":
    """Coerce an attack argument (None, mapping or plan) to an active
    :class:`SyncAttackPlan`, collapsing empty plans to None so the
    no-attack exchange stays byte-identical to one without an attack
    layer."""
    if attack is None:
        return None
    plan = attack if isinstance(attack, SyncAttackPlan) \
        else SyncAttackPlan.from_dict(dict(attack))
    return None if plan.is_empty() else plan


def sweep_sync_plan(offset_ns: int) -> SyncAttackPlan:
    """The canonical one-knob plan used by the ``timesync`` figure and the
    timesync CLI: a pure delay-asymmetry attack steering the victim's
    clock ``offset_ns`` behind true time (the classic, hardest-to-detect
    IEEE 1588 attack — no packet is malformed, no timestamp is forged)."""
    if offset_ns < 0:
        raise ConfigError("sync sweep offset must be >= 0")
    return SyncAttackPlan(delay_asymmetry_ns=2 * offset_ns)
