"""Spec-level configuration of the time plane for one experiment.

A :class:`TimeSyncSpec` is the mapping carried by
``ExperimentSpec.timesync``: which protocol the victim host runs, how bad
its oscillator is, what the link looks like, whether the guest-side
defense estimator is armed, and the (optional) :class:`SyncAttackPlan`.
Like fault plans, an *inert* spec — no attack, no drift, no jitter —
normalizes to None so absent and do-nothing configurations share one
identity and every pre-timesync cache key stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional

from ..errors import ConfigError
from .plan import SyncAttackPlan, normalize_sync_plan, sweep_sync_plan

#: Default sync-exchange cadence (PTP syncs this often; NTP polls 8x
#: slower — see :class:`~repro.timesync.netplane.NtpDaemon`).
DEFAULT_INTERVAL_NS = 100_000_000

#: Canonical victim oscillator error used by the figure/CLI sweeps:
#: 40 ppm, a perfectly ordinary uncompensated crystal.
SWEEP_DRIFT_PPB = 40_000


@dataclass(frozen=True)
class TimeSyncSpec:
    """Everything the time plane needs to know about one run."""

    #: The attack plan, or None for an honest network.
    attack: Optional[SyncAttackPlan] = None
    #: ``"ptp"`` or ``"ntp"``.
    protocol: str = "ptp"
    #: Base sync-exchange interval (ns).
    interval_ns: int = DEFAULT_INTERVAL_NS
    #: Victim host's natural oscillator error (ppb, signed).
    drift_ppb: int = 0
    #: Honest one-way link delay (ns).
    link_delay_ns: int = 500_000
    #: Uniform per-packet link jitter bound (ns).
    link_jitter_ns: int = 0
    #: Arm the guest-side offset estimator (the defense).
    defense: bool = True

    def __post_init__(self) -> None:
        if self.protocol not in ("ptp", "ntp"):
            raise ConfigError(f"unknown sync protocol {self.protocol!r}")
        if self.interval_ns <= 0:
            raise ConfigError("sync interval_ns must be positive")
        if self.link_delay_ns < 0 or self.link_jitter_ns < 0:
            raise ConfigError("link delays must be >= 0")
        if self.attack is not None and not isinstance(self.attack,
                                                      SyncAttackPlan):
            object.__setattr__(self, "attack",
                               normalize_sync_plan(self.attack))

    def is_empty(self) -> bool:
        """True when running the sync plane would change nothing: no
        attack, a perfect oscillator and a jitterless link leave every
        offset estimate at exactly zero."""
        attack = normalize_sync_plan(self.attack)
        return attack is None and self.drift_ppb == 0 \
            and self.link_jitter_ns == 0

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self)
            if f.name != "attack"
        }
        plan = normalize_sync_plan(self.attack)
        doc["attack"] = plan.to_dict() if plan is not None else None
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TimeSyncSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(f"unknown timesync spec field(s) "
                              f"{sorted(unknown)}; have {sorted(known)}")
        kwargs = dict(doc)
        attack = kwargs.get("attack")
        if attack is not None and not isinstance(attack, SyncAttackPlan):
            kwargs["attack"] = SyncAttackPlan.from_dict(dict(attack))
        return cls(**kwargs)

    def describe(self) -> str:
        plan = normalize_sync_plan(self.attack)
        bits = [self.protocol,
                f"drift {self.drift_ppb}ppb",
                "defense on" if self.defense else "defense off"]
        bits.append(plan.describe() if plan is not None else "no sync attack")
        return ", ".join(bits)


def normalize_timesync(timesync) -> Optional[TimeSyncSpec]:
    """Coerce a timesync argument (None, mapping or spec) to an *active*
    :class:`TimeSyncSpec`, collapsing inert specs to None — the
    no-time-plane path constructs nothing and stays bit-identical."""
    if timesync is None:
        return None
    spec = timesync if isinstance(timesync, TimeSyncSpec) \
        else TimeSyncSpec.from_dict(dict(timesync))
    return None if spec.is_empty() else spec


def sweep_timesync(offset_ns: int, defense: bool = True,
                   protocol: str = "ptp",
                   interval_ns: int = DEFAULT_INTERVAL_NS) -> TimeSyncSpec:
    """Canonical one-knob spec for the ``timesync`` figure and CLI: a
    delay-asymmetry attack targeting ``offset_ns`` of clock skew against
    a victim with an ordinary 40 ppm crystal and a jitterless link (so
    the figure's strict inequalities are deterministic).  ``interval_ns``
    sets the exchange cadence; short scaled-down runs pass a smaller
    interval so the servo sees enough rounds to converge."""
    attack = sweep_sync_plan(offset_ns) if offset_ns else None
    return TimeSyncSpec(attack=normalize_sync_plan(attack),
                        protocol=protocol,
                        drift_ppb=SWEEP_DRIFT_PPB,
                        defense=defense,
                        interval_ns=interval_ns)
