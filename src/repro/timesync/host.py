"""Glue between a :class:`~repro.hw.machine.Machine` and the time plane.

:class:`MachineTimeSync` hangs one disciplined host off a
:class:`SyncNetwork`, drives exchange rounds from the machine's own event
queue (so sync traffic interleaves deterministically with ticks, packets
and disk completions), mirrors every servo action into the kernel's
:class:`~repro.kernel.timekeeping.TimeKeeper` via ``walltime_offset_ns``,
and at finalize cross-checks the whole ledger against the true-time
oracle — reporting any mismatch through the invariant checker as the
``timesync-conservation`` law.

The *billing* consequence is modelled the way a real cross-host metering
pipeline fails: the meter stamps a job's start on the coordinator
(master) clock and its end on the local synced clock, so the bill
absorbs the host's terminal clock offset.  With the defense armed, the
guest-side :class:`OffsetEstimator` supplies a correction (its servo
ledger clipped to the honest-oscillator envelope) and a declared
uncertainty; without it the skew lands on the invoice silently.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .netplane import LinkModel, OffsetEstimator, SyncNetwork
from .plan import normalize_sync_plan
from .spec import TimeSyncSpec


class MachineTimeSync:
    """Per-machine time-plane driver.  Constructed only when the run has
    an active (non-inert) :class:`TimeSyncSpec`; a machine without one
    contains none of this — bit-identical to the pre-timesync simulator."""

    def __init__(self, spec: TimeSyncSpec, machine) -> None:
        self.spec = spec
        self.machine = machine
        self.network = SyncNetwork(
            machine.rng,
            attack=normalize_sync_plan(spec.attack),
            link=LinkModel(base_delay_ns=spec.link_delay_ns,
                           jitter_ns=spec.link_jitter_ns),
            start_ns=machine.clock.now)
        self.daemon = self.network.add_host(
            "guest", drift_ppb=spec.drift_ppb, protocol=spec.protocol,
            interval_ns=spec.interval_ns)
        self.estimator: Optional[OffsetEstimator] = (
            OffsetEstimator(self.daemon, start_ns=machine.clock.now)
            if spec.defense else None)
        self._finalized_at: Optional[int] = None
        machine.kernel.timekeeper.sync_steered = True
        self._schedule_next()

    # -- the event-driven exchange grid ------------------------------------

    def _schedule_next(self) -> None:
        when = self.machine.clock.now + self.daemon.interval_ns
        self.machine.events.schedule(when, self._round, name="timesync-round")

    def _round(self) -> None:
        now = self.machine.clock.now
        self.network.exchange(self.daemon, now)
        self._steer()
        if self.estimator is not None:
            self.estimator.observe_round(self.machine.clock.now)
        self._schedule_next()

    def _steer(self) -> None:
        """Mirror the disciplined clock into the kernel's timekeeper, the
        way settimeofday/adjtimex land on CLOCK_REALTIME."""
        self.machine.kernel.timekeeper.walltime_offset_ns = \
            self.daemon.clock.offset_ns

    # -- end of run --------------------------------------------------------

    def finalize(self, now_ns: int) -> None:
        """Settle the clock at the end of the run, run the conservation
        cross-check, and freeze the terminal offset for billing."""
        clock = self.daemon.clock
        # The last exchange may have committed the clock slightly past the
        # victim's exit instant (packet flight time); never rewind.
        clock.advance_to(max(now_ns, clock._committed_ns))
        self._steer()
        self._finalized_at = max(now_ns, clock._committed_ns)
        checker = self.machine.invariant_checker
        if checker is not None:
            try:
                self.network.check_conservation(self._finalized_at)
            except Exception as exc:  # reported, not raised: checker policy
                checker._report("timesync-conservation", str(exc))
        else:
            self.network.check_conservation(self._finalized_at)

    # -- billing consequence -----------------------------------------------

    def billed_skew_ns(self) -> int:
        """Signed ns the cross-host bill is off by: the terminal clock
        offset, minus the estimator's correction when the defense is on."""
        end = self._finalized_at if self._finalized_at is not None \
            else self.machine.clock.now
        skew = self.daemon.clock.offset_ns
        if self.estimator is not None:
            skew -= self.estimator.correction_ns(end)
        return skew

    def stats(self) -> Dict[str, Any]:
        """Integer counters for ``ExperimentResult.stats``; keys exist
        only on timesync-active runs, like fault and SMP stats."""
        end = self._finalized_at if self._finalized_at is not None \
            else self.machine.clock.now
        doc: Dict[str, Any] = {
            "timesync_rounds": self.daemon.rounds,
            "timesync_lost_rounds": self.daemon.lost_rounds,
            "timesync_offset_ns": self.daemon.clock.offset_ns,
            "timesync_billed_skew_ns": self.billed_skew_ns(),
            "timesync_defense": int(self.estimator is not None),
        }
        if self.estimator is not None:
            est = self.estimator
            uncertainty = est.uncertainty_ns(end)
            watchdog = self.machine.watchdog
            if watchdog is not None and watchdog.unstable:
                # Cross-check against the clocksource watchdog: when the
                # local time base itself was caught lying, the estimator's
                # ledger rests on it — widen and stop trusting.
                uncertainty += watchdog.total_uncertainty_ns()
            doc.update({
                "timesync_est_offset_ns": est.est_offset_ns(),
                "timesync_correction_ns": est.correction_ns(end),
                "timesync_uncertainty_ns": uncertainty,
                "timesync_trusted": est.trusted_rounds,
                "timesync_degraded": est.degraded_rounds,
                "timesync_untrusted": est.untrusted_rounds
                + (1 if watchdog is not None and watchdog.unstable else 0),
            })
        return doc
