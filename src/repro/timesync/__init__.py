"""Simulated network time plane: PTP/NTP sync, attacks, and the defense.

Models the layer the metering stack silently trusts — that hosts agree
what time it is.  See :mod:`repro.timesync.netplane` for the protocol and
servo model, :mod:`repro.timesync.plan` for the attack taxonomy and
:mod:`repro.timesync.spec` for the per-experiment configuration mapping
(docs/timesync.md walks through all three).
"""

from .netplane import (LinkModel, LocalClock, NtpDaemon, OffsetEstimator,
                       PtpDaemon, SyncNetwork, TimeSyncError,
                       PTP_STEP_THRESHOLD_NS)
from .plan import SyncAttackPlan, normalize_sync_plan, sweep_sync_plan
from .spec import (TimeSyncSpec, normalize_timesync, sweep_timesync,
                   SWEEP_DRIFT_PPB)

__all__ = [
    "LinkModel",
    "LocalClock",
    "NtpDaemon",
    "OffsetEstimator",
    "PtpDaemon",
    "SyncNetwork",
    "TimeSyncError",
    "PTP_STEP_THRESHOLD_NS",
    "SyncAttackPlan",
    "normalize_sync_plan",
    "sweep_sync_plan",
    "TimeSyncSpec",
    "normalize_timesync",
    "sweep_timesync",
    "SWEEP_DRIFT_PPB",
]
