"""The cloud provider: one physical machine, many instances, two tariffs."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..config import MachineConfig, default_config
from ..errors import SimulationError
from ..hw.machine import Machine
from ..kernel.accounting import CpuUsage
from ..metering.billing import (
    PER_HOUR_PLAN,
    PER_SECOND_PLAN,
    Invoice,
    PricePlan,
)
from ..programs.stdlib import install_standard_libraries
from .instance import Instance

#: uid pool for customers; the provider itself operates as root (uid 0).
_FIRST_CUSTOMER_UID = 5_000


class CloudProvider:
    """Hosts customer instances on one simulated machine."""

    def __init__(self, cfg: Optional[MachineConfig] = None,
                 machine: Optional[Machine] = None) -> None:
        self.machine = machine or Machine(cfg or default_config())
        install_standard_libraries(self.machine.kernel.libraries)
        self.instances: Dict[str, Instance] = {}
        self._next_uid = _FIRST_CUSTOMER_UID

    # -- lifecycle -------------------------------------------------------------

    def launch_instance(self, name: str, owner: str,
                        provider_owned: bool = False) -> Instance:
        """Provision an instance (its own shell session and uid).

        ``provider_owned`` instances run as root — the co-location vector
        for the privileged attacks.
        """
        if name in self.instances:
            raise SimulationError(f"instance name {name!r} already in use")
        if provider_owned:
            uid = 0
        else:
            uid = self._next_uid
            self._next_uid += 1
        shell = self.machine.new_shell()
        instance = Instance(name, owner, self.machine, shell, uid,
                            launched_ns=self.machine.clock.now)
        self.instances[name] = instance
        return instance

    def terminate_instance(self, name: str) -> None:
        self.instances[name].terminate()

    # -- billing ------------------------------------------------------------------

    def invoice_uptime(self, name: str,
                       plan: PricePlan = PER_HOUR_PLAN) -> Invoice:
        """EC2-style: bill wall-clock uptime, partial units rounded up."""
        instance = self.instances[name]
        # Uptime billing has no utime/stime split; file it all as utime.
        return Invoice(job_name=f"{name} (uptime)", plan=plan,
                       usage=CpuUsage(instance.uptime_ns, 0))

    def invoice_cpu(self, name: str,
                    plan: PricePlan = PER_SECOND_PLAN) -> Invoice:
        """Metered-CPU tariff: bill the kernel-accounted CPU time."""
        instance = self.instances[name]
        return Invoice(job_name=f"{name} (cpu)", plan=plan,
                       usage=instance.cpu_usage())

    # -- reporting --------------------------------------------------------------------

    def summary(self) -> str:
        lines = ["instances:"]
        for name, instance in sorted(self.instances.items()):
            usage = instance.cpu_usage()
            lines.append(
                f"  {name:<12} owner={instance.owner:<10} "
                f"{instance.state.value:<10} "
                f"uptime={instance.uptime_ns / 1e9:8.3f}s "
                f"cpu={usage.total_seconds:8.3f}s")
        return "\n".join(lines)
