"""The cloud provider: one physical machine, many instances, two tariffs.

Two hosting models, matching the two co-location stories in the paper's
§III-B:

* **shared kernel** (default) — instances are uid-partitioned task groups
  on one machine, metered by the kernel's per-task accounting;
* **virtualization** (``virtualization=True``) — instances are real VMs
  behind vCPUs of a credit hypervisor (:mod:`repro.virt`), metered by the
  hypervisor's tick-sampled billing.  Same tariffs, one level down — and
  the same class of sampling attacks against them (docs/virt.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..config import MachineConfig, default_config
from ..errors import SimulationError
from ..hw.machine import Machine
from ..kernel.accounting import CpuUsage
from ..metering.billing import (
    PER_HOUR_PLAN,
    PER_SECOND_PLAN,
    Invoice,
    PricePlan,
    plan_by_name,
)
from ..programs.stdlib import install_standard_libraries
from .instance import Instance, VmInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..virt.hypervisor import Hypervisor, HypervisorConfig

#: uid pool for customers; the provider itself operates as root (uid 0).
_FIRST_CUSTOMER_UID = 5_000


class CloudProvider:
    """Hosts customer instances on one simulated machine (or hypervisor)."""

    def __init__(self, cfg: Optional[MachineConfig] = None,
                 machine: Optional[Machine] = None,
                 virtualization: bool = False,
                 hypervisor: Optional["Hypervisor"] = None,
                 hv_cfg: Optional["HypervisorConfig"] = None) -> None:
        """``cfg`` is the machine config — of the one shared machine, or of
        every guest when ``virtualization`` is on.  Passing ``hypervisor``
        (or ``hv_cfg``) implies virtualization."""
        self.hypervisor: Optional["Hypervisor"] = None
        self.machine: Optional[Machine] = None
        self._guest_cfg = cfg or default_config()
        if virtualization or hypervisor is not None or hv_cfg is not None:
            from ..virt.hypervisor import Hypervisor

            self.hypervisor = hypervisor or Hypervisor(hv_cfg)
        else:
            self.machine = machine or Machine(cfg or default_config())
            install_standard_libraries(self.machine.kernel.libraries)
        self.instances: Dict[str, Instance] = {}
        self._next_uid = _FIRST_CUSTOMER_UID

    @property
    def virtualization(self) -> bool:
        return self.hypervisor is not None

    # -- lifecycle -------------------------------------------------------------

    def launch_instance(self, name: str, owner: str,
                        provider_owned: bool = False,
                        weight: int = 256) -> Instance:
        """Provision an instance.

        Shared-kernel model: a shell session with its own uid
        (``provider_owned`` instances run as root — the co-location vector
        for the privileged attacks).  Virtualization model: a whole guest
        VM with scheduler ``weight`` (``provider_owned``/uid moot — every
        tenant is root in its own kernel).
        """
        if name in self.instances:
            raise SimulationError(f"instance name {name!r} already in use")
        if self.hypervisor is not None:
            vm = self.hypervisor.create_vm(name, cfg=self._guest_cfg,
                                           weight=weight)
            install_standard_libraries(vm.machine.kernel.libraries)
            instance: Instance = VmInstance(
                name, owner, vm, self.hypervisor,
                launched_ns=self.hypervisor.clock.now)
            self.instances[name] = instance
            return instance
        if provider_owned:
            uid = 0
        else:
            uid = self._next_uid
            self._next_uid += 1
        shell = self.machine.new_shell()
        instance = Instance(name, owner, self.machine, shell, uid,
                            launched_ns=self.machine.clock.now)
        self.instances[name] = instance
        return instance

    def terminate_instance(self, name: str) -> None:
        self.instances[name].terminate()

    # -- billing ------------------------------------------------------------------

    def invoice_uptime(self, name: str,
                       plan: "PricePlan | str" = PER_HOUR_PLAN) -> Invoice:
        """EC2-style: bill wall-clock uptime, partial units rounded up.

        ``plan`` also accepts a wire name (``"per-cpu-hour"``), the form
        tenants use over the ``repro serve`` API."""
        instance = self.instances[name]
        if isinstance(plan, str):
            plan = plan_by_name(plan)
        # Uptime billing has no utime/stime split; file it all as utime.
        return Invoice(job_name=f"{name} (uptime)", plan=plan,
                       usage=CpuUsage(instance.uptime_ns, 0))

    def invoice_cpu(self, name: str,
                    plan: "PricePlan | str" = PER_SECOND_PLAN) -> Invoice:
        """Metered-CPU tariff: bill what the provider's meter sees — the
        kernel's per-task accounting for shared instances, the
        hypervisor's tick-sampled billing for VMs."""
        instance = self.instances[name]
        if isinstance(plan, str):
            plan = plan_by_name(plan)
        return Invoice(job_name=f"{name} (cpu)", plan=plan,
                       usage=instance.metered_usage())

    # -- reporting --------------------------------------------------------------------

    def summary(self) -> str:
        lines = ["instances:"]
        for name, instance in sorted(self.instances.items()):
            usage = instance.metered_usage()
            lines.append(
                f"  {name:<12} owner={instance.owner:<10} "
                f"{instance.state.value:<10} "
                f"uptime={instance.uptime_ns / 1e9:8.3f}s "
                f"cpu={usage.total_seconds:8.3f}s")
        return "\n".join(lines)
