"""Instances: billing domains of tasks on a shared machine."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional

from ..errors import SimulationError
from ..kernel.accounting import CpuUsage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from ..kernel.process import Task
    from ..kernel.shell import Shell
    from ..virt.hypervisor import Hypervisor, VirtualMachine


class InstanceState(enum.Enum):
    RUNNING = "running"
    TERMINATED = "terminated"


class Instance:
    """One rented instance: a shell session plus everything it spawned."""

    def __init__(self, name: str, owner: str, machine: "Machine",
                 shell: "Shell", uid: int, launched_ns: int) -> None:
        self.name = name
        self.owner = owner
        self.machine = machine
        self.shell = shell
        self.uid = uid
        self.launched_ns = launched_ns
        self.terminated_ns: Optional[int] = None
        self.state = InstanceState.RUNNING
        self.tasks: List["Task"] = []

    # -- job control ---------------------------------------------------------

    def run(self, program, nice: Optional[int] = None) -> "Task":
        """Launch a job inside this instance."""
        if self.state is not InstanceState.RUNNING:
            raise SimulationError(f"instance {self.name} is terminated")
        task = self.shell.run_command(program, uid=self.uid, nice=nice)
        self.tasks.append(task)
        return task

    def wait_all(self, max_ns: Optional[int] = None) -> None:
        """Run the machine until every job of this instance exited."""
        self.machine.run_until_exit(self.tasks, max_ns=max_ns)

    def terminate(self) -> None:
        if self.state is InstanceState.TERMINATED:
            return
        self.state = InstanceState.TERMINATED
        self.terminated_ns = self.machine.clock.now
        kernel = self.machine.kernel
        for task in self.tasks:
            if task.alive:
                kernel.do_exit(task, 137)

    # -- metering views ---------------------------------------------------------

    @property
    def uptime_ns(self) -> int:
        """Wall-clock uptime: what EC2-style instance-hours bill."""
        end = (self.terminated_ns if self.terminated_ns is not None
               else self.machine.clock.now)
        return end - self.launched_ns

    def cpu_usage(self) -> CpuUsage:
        """Metered CPU over every task (and thread) of the instance."""
        kernel = self.machine.kernel
        usage = CpuUsage()
        seen = set()
        for task in self.tasks:
            for member in kernel.thread_group(task):
                if member.pid in seen:
                    continue
                seen.add(member.pid)
                usage = usage + kernel.accounting.usage(member)
            # Children reaped by the job (e.g. its own forks) accumulate
            # in cutime/cstime.
            usage = usage + CpuUsage(task.acct_cutime_ns, task.acct_cstime_ns)
        return usage

    def metered_usage(self) -> CpuUsage:
        """What the *provider's* meter sees for this instance — for a
        shared-kernel instance, the kernel's per-task accounting."""
        return self.cpu_usage()

    def __repr__(self) -> str:
        return (f"Instance({self.name!r}, owner={self.owner!r}, "
                f"{self.state.value})")


class VmInstance(Instance):
    """An instance that is a real virtual machine behind one vCPU.

    The tenant gets a whole guest kernel (root inside it); the provider
    meters at the *hypervisor*: wall-clock uptime off the host clock and
    CPU off the credit scheduler's tick-sampled billing.  The gap between
    that bill and what the vCPU actually ran is the VM-level metering
    attack surface (docs/virt.md).
    """

    def __init__(self, name: str, owner: str, vm: "VirtualMachine",
                 hypervisor: "Hypervisor", launched_ns: int) -> None:
        super().__init__(name, owner, vm.machine,
                         vm.machine.new_shell(), uid=0,
                         launched_ns=launched_ns)
        self.vm = vm
        self.hypervisor = hypervisor

    def wait_all(self, max_ns: Optional[int] = None) -> None:
        """Run the *hypervisor* (all co-resident VMs progress) until every
        job of this instance exited.  ``max_ns`` bounds host time."""
        self.hypervisor.run_until_exit(self.tasks, max_ns=max_ns)

    def terminate(self) -> None:
        if self.state is InstanceState.TERMINATED:
            return
        super().terminate()
        self.terminated_ns = self.hypervisor.clock.now

    @property
    def uptime_ns(self) -> int:
        """Uptime in *host* wall time (what instance-hours bill); the
        guest's own clock runs slow by exactly the steal time."""
        end = (self.terminated_ns if self.terminated_ns is not None
               else self.hypervisor.clock.now)
        return end - self.launched_ns

    @property
    def steal_ns(self) -> int:
        return self.vm.steal_ns

    def billed_usage(self) -> CpuUsage:
        """The hypervisor's tick-sampled bill for this VM."""
        return CpuUsage(self.vm.billed_utime_ns, self.vm.billed_stime_ns)

    def metered_usage(self) -> CpuUsage:
        return self.billed_usage()

    def __repr__(self) -> str:
        return (f"VmInstance({self.name!r}, owner={self.owner!r}, "
                f"{self.state.value})")
