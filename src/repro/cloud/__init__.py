"""Utility-computing instance layer (the paper's §VII future work).

The paper closes with "in the future, more attacks on virtual machine
model will be studied."  This package extends the reproduction in that
direction: customers rent *instances* (billing domains of tasks sharing
one physical machine) and are billed either per instance-hour of uptime
(Amazon EC2's model, §II) or per metered CPU-second.  The attacks transfer:

* under CPU metering, the Section IV attacks inflate the instance's bill
  exactly as they inflate a process's;
* under uptime billing, *any* co-located contention the provider creates
  stretches the victim's wall-clock time — no accounting subversion is
  even needed, which is why uptime billing is the least trustworthy metric
  of all (it equals turnaround time, which §III-B already rejects).

With ``CloudProvider(virtualization=True)`` instances become real VMs
behind vCPUs of the credit hypervisor (:mod:`repro.virt`): the provider
meters at the hypervisor (host-clock uptime, tick-sampled CPU billing),
and the VM-level scheduling attack shifts co-residents' cycles onto the
victim's bill (docs/virt.md).
"""

from .instance import Instance, InstanceState, VmInstance
from .provider import CloudProvider

__all__ = ["Instance", "InstanceState", "VmInstance", "CloudProvider"]
