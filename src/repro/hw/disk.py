"""Swap/backing disk with asynchronous DMA completion.

The kernel submits page-sized transfers; after the modelled latency the disk
raises IRQ 14 and the completion callback runs (waking the faulting task).
Like a real elevator with anticipatory/CFQ-style policy, *reads* (someone is
blocked on them) are dispatched ahead of queued writes (background
writeback) — without this, swap-ins starve behind the reclaim writeback
stream and the exception-flooding experiment degenerates.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..config import DiskConfig
from ..sim.clock import Clock
from ..sim.events import EventQueue
from .irq import IRQ_DISK, InterruptController


class Disk:
    """Single-spindle block device with read-priority scheduling."""

    def __init__(self, cfg: DiskConfig, clock: Clock, events: EventQueue,
                 pic: InterruptController) -> None:
        self._cfg = cfg
        self._clock = clock
        self._events = events
        self._pic = pic
        self._reads: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._writes: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._busy = False
        self._pending_completion: Optional[Callable[[], None]] = None
        self.reads = 0
        self.writes = 0
        self.pages_transferred = 0

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_depth(self) -> int:
        return len(self._reads) + len(self._writes) + (1 if self._busy else 0)

    def submit(self, pages: int, write: bool,
               on_complete: Callable[[], None]) -> None:
        """Queue a transfer of ``pages`` pages; ``on_complete`` runs after
        the completion IRQ fires."""
        if pages <= 0:
            raise ValueError("transfer must cover at least one page")
        if write:
            self.writes += 1
            self._writes.append((pages, on_complete))
        else:
            self.reads += 1
            self._reads.append((pages, on_complete))
        self.pages_transferred += pages
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        queue = self._reads if self._reads else self._writes
        if not queue:
            self._busy = False
            return
        self._busy = True
        pages, on_complete = queue.popleft()
        latency = self._cfg.base_latency_ns + pages * self._cfg.per_page_ns
        self._events.schedule(
            self._clock.now + latency,
            lambda: self._complete(on_complete),
            name="disk-complete")

    def _complete(self, on_complete: Callable[[], None]) -> None:
        # The IRQ handler (registered by the kernel) consumes handler time
        # and then calls back into us to run the transfer completion.
        self._pending_completion = on_complete
        self._pic.raise_irq(IRQ_DISK)
        self._start_next()

    def take_completion(self) -> Optional[Callable[[], None]]:
        """Called by the kernel's IRQ-14 handler to collect the completion."""
        cb = self._pending_completion
        self._pending_completion = None
        return cb
