"""Hardware model: CPU, interrupt controller, timer, NIC, disk, RAM, machine."""

from .cpu import CPU, CPUMode, DebugRegisters, Watchpoint
from .irq import IRQ_DISK, IRQ_NIC, IRQ_TIMER, InterruptController
from .memory import PhysicalMemory
from .timer import TimerDevice
from .nic import NetworkCard, PacketFlood
from .disk import Disk

__all__ = [
    "CPU",
    "CPUMode",
    "DebugRegisters",
    "Watchpoint",
    "InterruptController",
    "IRQ_TIMER",
    "IRQ_NIC",
    "IRQ_DISK",
    "PhysicalMemory",
    "TimerDevice",
    "NetworkCard",
    "PacketFlood",
    "Disk",
]
