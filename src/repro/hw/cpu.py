"""The simulated CPU: privilege modes, cycle/time conversion, TSC, DR0-DR7.

The paper's testbed is one core of an Intel E7200 @ 2.53 GHz.  We model a
single core whose only architectural state that matters to the attacks is:

* the privilege mode (user vs kernel) — it decides utime vs stime at a tick;
* the time-stamp counter — the paper's §VI-B proposes TSC-based fine-grained
  metering as a defense;
* the debug registers DR0..DR3/DR7 — the execution-thrashing attack plants a
  hardware watchpoint through ``ptrace(POKEUSER, DRx, ...)``.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..config import NS_PER_SEC
from ..errors import ConfigError, SimulationError


class CPUMode(enum.Enum):
    """Processor privilege mode."""

    USER = "user"
    KERNEL = "kernel"


class Watchpoint:
    """One armed debug-register slot (a DR0..DR3 + DR7 pair)."""

    __slots__ = ("vaddr", "length", "write_only")

    def __init__(self, vaddr: int, length: int = 4, write_only: bool = False) -> None:
        if length not in (1, 2, 4, 8):
            raise ConfigError(f"watchpoint length must be 1/2/4/8, got {length}")
        self.vaddr = int(vaddr)
        self.length = length
        self.write_only = bool(write_only)

    def matches(self, vaddr: int, write: bool) -> bool:
        if self.write_only and not write:
            return False
        return self.vaddr <= vaddr < self.vaddr + self.length

    def __repr__(self) -> str:
        kind = "W" if self.write_only else "RW"
        return f"Watchpoint(0x{self.vaddr:x},{self.length},{kind})"


class DebugRegisters:
    """The four hardware breakpoint slots of an x86 core.

    Each task has its own copy (saved/restored at context switch, like the
    per-thread debug state Linux keeps); the CPU holds the active copy.
    """

    SLOTS = 4

    def __init__(self) -> None:
        self._slots: List[Optional[Watchpoint]] = [None] * self.SLOTS

    def set_slot(self, index: int, wp: Optional[Watchpoint]) -> None:
        if not 0 <= index < self.SLOTS:
            raise ConfigError(f"debug register slot {index} out of range")
        self._slots[index] = wp

    def get_slot(self, index: int) -> Optional[Watchpoint]:
        if not 0 <= index < self.SLOTS:
            raise ConfigError(f"debug register slot {index} out of range")
        return self._slots[index]

    def clear(self) -> None:
        self._slots = [None] * self.SLOTS

    @property
    def armed(self) -> bool:
        return any(s is not None for s in self._slots)

    def hit(self, vaddr: int, write: bool) -> Optional[int]:
        """Return the index of the first matching slot, or None."""
        for i, wp in enumerate(self._slots):
            if wp is not None and wp.matches(vaddr, write):
                return i
        return None

    def copy(self) -> "DebugRegisters":
        clone = DebugRegisters()
        clone._slots = list(self._slots)
        return clone


class CPU:
    """A single simulated core."""

    def __init__(self, freq_hz: int) -> None:
        if freq_hz <= 0:
            raise ConfigError("CPU frequency must be positive")
        self.freq_hz = int(freq_hz)
        self.mode = CPUMode.KERNEL  # boots in kernel mode
        #: Active debug registers (loaded from the running task at switch-in).
        self.debug = DebugRegisters()
        #: Interrupts-enabled flag; the kernel masks IRQs inside handlers.
        self.irqs_enabled = True
        #: Total cycles retired; drives the TSC.
        self._cycles = 0
        #: Optional read-side TSC distortion (drift/step/freeze), installed
        #: by the fault layer.  Applied only when the TSC is *read*; the
        #: retired-cycle counter itself — the metering ground truth — is
        #: never touched.
        self.tsc_fault = None

    # ---- time/cycle conversion -------------------------------------------

    def cycles_to_ns(self, cycles: int) -> int:
        """Convert a cycle count to nanoseconds (ceiling, >=1 for cycles>0).

        Ceiling keeps time strictly advancing for any nonzero work, so the
        event loop can never livelock on zero-length slices.
        """
        if cycles < 0:
            raise SimulationError("negative cycle count")
        if cycles == 0:
            return 0
        ns = (cycles * NS_PER_SEC + self.freq_hz - 1) // self.freq_hz
        return max(1, ns)

    def ns_to_cycles(self, ns: int) -> int:
        """Convert nanoseconds to cycles (floor)."""
        if ns < 0:
            raise SimulationError("negative duration")
        return ns * self.freq_hz // NS_PER_SEC

    # ---- TSC --------------------------------------------------------------

    def retire_cycles(self, cycles: int) -> None:
        """Advance the TSC as work executes."""
        if cycles < 0:
            raise SimulationError("cannot retire negative cycles")
        self._cycles += int(cycles)

    def read_tsc(self) -> int:
        """The rdtsc instruction: cycles since boot."""
        cycles = self._cycles
        fault = self.tsc_fault
        return fault.transform(cycles) if fault is not None else cycles

    def wall_tsc(self, now_ns: int) -> int:
        """The invariant-TSC clocksource reading at wall time ``now_ns``.

        Modern cores keep the TSC counting at nominal frequency through
        idle and frequency scaling (constant_tsc/nonstop_tsc), which is
        what lets a clocksource watchdog timestamp wall intervals with it.
        The retired-cycle counter stops during idle, so the clocksource
        view is derived from the wall clock instead — and is where the
        fault layer's drift/step/freeze distortion shows up.
        """
        cycles = self.ns_to_cycles(now_ns)
        fault = self.tsc_fault
        return fault.transform(cycles) if fault is not None else cycles
