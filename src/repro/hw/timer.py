"""Programmable interval timer: the source of the accounting jiffy.

Fires IRQ 0 every ``tick_ns`` of virtual time.  Ticks are anchored to
absolute multiples of the period (boot-relative), so even if a handler runs
late the schedule never drifts — exactly the property the tick-sampling
accounting scheme depends on, and the one the scheduling attack games.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ConfigError
from ..sim.clock import Clock
from ..sim.events import EventHandle, EventQueue
from .irq import IRQ_TIMER, InterruptController


class TimerDevice:
    """Periodic tick generator.

    ``offset_ns`` shifts the absolute tick grid — SMP machines stagger the
    per-CPU timers by ``i * tick_ns / nproc`` the way Linux spreads its
    per-CPU ticks, which is also what makes cross-CPU tick dodging a
    physically meaningful attack.  ``handler`` bypasses the PIC and invokes
    the callback directly (used for per-CPU local-APIC-style delivery on
    SMP machines); when None the timer raises IRQ 0 as before.
    """

    def __init__(self, tick_ns: int, clock: Clock, events: EventQueue,
                 pic: InterruptController, offset_ns: int = 0,
                 handler: Optional[Callable[[], None]] = None) -> None:
        if tick_ns <= 0:
            raise ConfigError("tick_ns must be positive")
        if not 0 <= offset_ns < tick_ns:
            raise ConfigError("offset_ns must be in [0, tick_ns)")
        self.tick_ns = int(tick_ns)
        self.offset_ns = int(offset_ns)
        self._clock = clock
        self._events = events
        self._pic = pic
        self._handler = handler
        self._next_tick: Optional[EventHandle] = None
        self.ticks_fired = 0
        self._running = False
        #: Optional fault injector (see repro.faults): consulted at each
        #: grid instant to fire, drop or delay the tick.  The grid itself
        #: is never perturbed — a dropped or delayed tick does not move
        #: its successors, exactly like a masked tick on real hardware.
        self.fault = None
        self.ticks_lost = 0
        self.ticks_delayed = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._next_tick is not None:
            self._next_tick.cancel()
            self._next_tick = None

    def next_tick_time(self) -> Optional[int]:
        return self._next_tick.time_ns if self._next_tick is not None else None

    def _schedule_next(self) -> None:
        # Anchor to the absolute grid: the next multiple of tick_ns (shifted
        # by the stagger offset) strictly after "now", regardless of how
        # late the previous handler ran.
        now = self._clock.now
        next_time = ((now - self.offset_ns) // self.tick_ns + 1) \
            * self.tick_ns + self.offset_ns
        self._next_tick = self._events.schedule(
            next_time, self._fire, name="timer-tick")

    def _fire(self) -> None:
        if not self._running:
            return
        fault = self.fault
        if fault is not None:
            verdict = fault.decide(self._clock.now)
            if verdict != 0:
                # The next tick stays on the absolute grid either way.
                self._schedule_next()
                if verdict < 0:
                    self.ticks_lost += 1
                else:
                    self._events.schedule(self._clock.now + verdict,
                                          self._fire_delayed,
                                          name="timer-tick-delayed")
                return
        self.ticks_fired += 1
        if self._handler is not None:
            self._handler()
        else:
            self._pic.raise_irq(IRQ_TIMER)
        self._schedule_next()

    def _fire_delayed(self) -> None:
        if not self._running:
            return
        self.ticks_fired += 1
        self.ticks_delayed += 1
        if self._handler is not None:
            self._handler()
        else:
            self._pic.raise_irq(IRQ_TIMER)
