"""Network adapter and external traffic generation.

The interrupt-flooding attack (paper §IV-B3) sends junk IP packets from a
second PC; every received packet raises an IRQ whose handler time is billed
to whatever process happens to be running.  :class:`PacketFlood` plays the
role of the second PC: an event source delivering packets at a configurable
rate with optional exponential jitter.
"""

from __future__ import annotations

from typing import Optional

from ..config import NS_PER_SEC
from ..errors import ConfigError
from ..sim.clock import Clock
from ..sim.events import EventHandle, EventQueue
from ..sim.rng import DeterministicRng
from .irq import IRQ_NIC, InterruptController


class NetworkCard:
    """A NIC that raises IRQ 11 per received packet."""

    def __init__(self, pic: InterruptController) -> None:
        self._pic = pic
        self.packets_received = 0
        self.bytes_received = 0

    def receive_packet(self, size_bytes: int = 1500) -> None:
        """Deliver one packet from the wire (called by traffic sources)."""
        self.packets_received += 1
        self.bytes_received += size_bytes
        self._pic.raise_irq(IRQ_NIC)


class PacketFlood:
    """External host blasting packets at the NIC at ``rate_pps``."""

    def __init__(self, nic: NetworkCard, clock: Clock, events: EventQueue,
                 rate_pps: float, rng: Optional[DeterministicRng] = None,
                 jitter: bool = False, packet_bytes: int = 1500) -> None:
        if rate_pps <= 0:
            raise ConfigError("flood rate must be positive")
        self._nic = nic
        self._clock = clock
        self._events = events
        self._mean_gap_ns = NS_PER_SEC / rate_pps
        self._rng = rng
        self._jitter = jitter and rng is not None
        self._packet_bytes = packet_bytes
        self._next: Optional[EventHandle] = None
        self._running = False
        self.packets_sent = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._next is not None:
            self._next.cancel()
            self._next = None

    def _gap_ns(self) -> int:
        if self._jitter:
            return self._rng.expovariate_ns("nic-flood", self._mean_gap_ns)
        return max(1, int(self._mean_gap_ns))

    def _schedule_next(self) -> None:
        self._next = self._events.schedule(
            self._clock.now + self._gap_ns(), self._fire, name="nic-packet")

    def _fire(self) -> None:
        if not self._running:
            return
        self.packets_sent += 1
        self._nic.receive_packet(self._packet_bytes)
        self._schedule_next()
