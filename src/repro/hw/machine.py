"""The machine: hardware assembly plus the main simulation loop.

The loop alternates between two activities:

1. firing due events (timer ticks, packet arrivals, disk completions) —
   each may consume handler time and request a reschedule;
2. running the current task's op stream up to the next event time.

Because the engine stops *exactly* at event boundaries, a timer tick always
observes the true instantaneous state of the CPU — which task is current
and in which mode — making tick-sampled accounting behave exactly as it
does on real hardware, free of host-interpreter jitter.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..config import MachineConfig, default_config
from ..errors import DeadlockError, SimulationError
from ..kernel.kernel import Kernel
from ..kernel.process import Task, TaskState
from ..kernel.shell import Shell
from ..sim.clock import Clock
from ..sim.events import EventQueue
from ..sim.rng import DeterministicRng
from ..sim.tracing import TraceLog
from .cpu import CPU
from .disk import Disk
from .irq import InterruptController
from .nic import NetworkCard, PacketFlood
from .timer import TimerDevice

#: Budget used when no event is pending (cannot happen with the timer on,
#: but keeps the loop total even if a test stops the timer).
_IDLE_SLICE_NS = 10_000_000


class Machine:
    """A complete simulated computer."""

    def __init__(self, cfg: Optional[MachineConfig] = None,
                 trace: Iterable[str] = (),
                 invariants=None,
                 faults=None,
                 timesync=None) -> None:
        """``invariants`` enables the runtime invariant checker: False/None
        (off), True (raise on first violation), ``"collect"`` (record
        violations on ``machine.invariant_checker.violations``), or a
        pre-built :class:`~repro.verify.InvariantChecker`.

        ``faults`` is an optional :class:`~repro.faults.FaultPlan` (or a
        mapping for :meth:`FaultPlan.from_dict`): deterministic hardware
        misbehaviour injected into the timer, TSC, interrupt lines and
        /proc, plus the clocksource-watchdog defense.  An empty plan is
        treated exactly like no plan: no injector or watchdog is installed
        and the machine is bit-identical to a fault-free one.

        ``timesync`` is an optional :class:`~repro.timesync.TimeSyncSpec`
        (or mapping): the simulated network time plane — a PTP/NTP daemon
        disciplining this host's clock over an attackable link.  An inert
        spec is treated exactly like no spec: nothing is constructed and
        the machine is bit-identical to a pre-timesync one.
        """
        from ..faults import normalize_plan
        from ..timesync import normalize_timesync

        self.cfg = cfg or default_config()
        self.cfg.validate()
        self.fault_plan = normalize_plan(faults)
        self.timesync_spec = normalize_timesync(timesync)
        self.clock = Clock()
        self.events = EventQueue()
        self.rng = DeterministicRng(self.cfg.seed)
        self.trace_log = TraceLog(enabled=trace)
        self.cpu = CPU(self.cfg.cpu_freq_hz)
        self.cpus = [self.cpu] + [CPU(self.cfg.cpu_freq_hz)
                                  for _ in range(self.cfg.nproc - 1)]
        self.pic = InterruptController()
        self.timer = TimerDevice(self.cfg.tick_ns, self.clock, self.events,
                                 self.pic)
        self.timers = [self.timer]
        self.nic = NetworkCard(self.pic)
        self.disk = Disk(self.cfg.disk, self.clock, self.events, self.pic)
        self.kernel = Kernel(self.cfg, self.clock, self.events, self.cpu,
                             self.pic, self.disk, self.nic, self.rng,
                             self.trace_log)
        if self.cfg.nproc > 1:
            # Per-CPU local timers, staggered across the jiffy the way
            # Linux spreads its per-CPU ticks, delivered straight to the
            # kernel's per-CPU tick path (local-APIC style) instead of
            # through the shared PIC line.  CPU 0 keeps offset 0 so the
            # timekeeping jiffy grid is unchanged.
            self.timer._handler = lambda: self.kernel.timer_interrupt(0)
            for i in range(1, self.cfg.nproc):
                self.timers.append(TimerDevice(
                    self.cfg.tick_ns, self.clock, self.events, self.pic,
                    offset_ns=i * self.cfg.tick_ns // self.cfg.nproc,
                    handler=(lambda i=i: self.kernel.timer_interrupt(i))))
            self.kernel.init_smp(self.cpus, self.timers)
        self.watchdog = None
        self.irq_storm = None
        tolerated = (self.fault_plan.tolerated_categories()
                     if self.fault_plan is not None else ())
        self.invariant_checker = self._make_checker(invariants, tolerated)
        if self.invariant_checker is not None:
            self.invariant_checker.attach(self.kernel)
        if self.fault_plan is not None:
            self._install_faults(self.fault_plan)
        self.timesync = None
        if self.timesync_spec is not None:
            from ..timesync.host import MachineTimeSync

            self.timesync = MachineTimeSync(self.timesync_spec, self)
        for timer in self.timers:
            timer.start()

    @staticmethod
    def _make_checker(invariants, tolerated=()):
        if not invariants:
            return None
        from ..verify.invariants import InvariantChecker

        if isinstance(invariants, InvariantChecker):
            if tolerated:
                invariants.tolerate(*tolerated)
            return invariants
        if invariants == "collect":
            return InvariantChecker(mode="collect", tolerated=tolerated)
        return InvariantChecker(tolerated=tolerated)

    def _install_faults(self, plan) -> None:
        from ..faults import IrqStorm, StaleProcfs, TickFaultInjector, TscFault
        from ..kernel.timekeeping import ClocksourceWatchdog

        def _target(name, devices):
            idx = getattr(plan, name)
            if idx is None:
                return devices[0]
            if idx >= self.cfg.nproc:
                raise SimulationError(
                    f"fault plan targets {name}={idx} but the machine "
                    f"has nproc={self.cfg.nproc}")
            return devices[idx]

        self._faulted_timer = _target("tick_cpu", self.timers)
        if plan.has_tick_faults():
            self._faulted_timer.fault = TickFaultInjector(
                plan, self.rng.stream("faults:tick"), self.cfg.tick_ns,
                trace_log=self.trace_log)
        if plan.has_tsc_faults():
            _target("tsc_cpu", self.cpus).tsc_fault = TscFault(plan)
        if plan.irq_storm_pps > 0:
            self.irq_storm = IrqStorm(
                plan, self.clock, self.events, self.pic,
                self.rng.stream("faults:irq"), trace_log=self.trace_log)
            self.irq_storm.start()
        if plan.procfs_staleness_ns > 0:
            self.kernel.procfs_fault = StaleProcfs(plan.procfs_staleness_ns)
        if plan.watchdog:
            self.watchdog = ClocksourceWatchdog(
                self.cpu, self.clock, self.kernel.timekeeper,
                self.cfg.tick_ns, timer=self.timer)
            self.kernel.watchdog = self.watchdog

    def fault_stats(self) -> dict:
        """Integer counters describing injected faults and the watchdog's
        reaction; empty when no fault plan is active."""
        if self.fault_plan is None:
            return {}
        faulted_timer = getattr(self, "_faulted_timer", self.timer)
        stats = {
            "fault_ticks_lost": faulted_timer.ticks_lost,
            "fault_ticks_delayed": faulted_timer.ticks_delayed,
            "fault_jiffies_caught_up": self.kernel.timekeeper.jiffies_caught_up,
        }
        if self.irq_storm is not None:
            stats["fault_spurious_irqs"] = self.irq_storm.spurious_fired
        if self.kernel.procfs_fault is not None:
            stats["fault_stale_proc_reads"] = \
                self.kernel.procfs_fault.stale_reads
        if self.watchdog is not None:
            stats["watchdog_checks"] = self.watchdog.checks
            stats["watchdog_unstable"] = int(self.watchdog.unstable)
            stats["watchdog_uncertainty_ns"] = \
                self.watchdog.total_uncertainty_ns()
            counts = self.watchdog.trust_counts()
            stats["watchdog_intervals_trusted"] = counts["trusted"]
            stats["watchdog_intervals_degraded"] = counts["degraded"]
            stats["watchdog_intervals_untrusted"] = counts["untrusted"]
            if self.watchdog.flagged_at_jiffy is not None:
                stats["watchdog_flagged_at_jiffy"] = \
                    self.watchdog.flagged_at_jiffy
            if self.watchdog.unstable_cpu is not None:
                stats["watchdog_unstable_cpu"] = self.watchdog.unstable_cpu
        else:
            # No watchdog means nobody graded the corruption: surface the
            # raw injected damage as an uncertainty bound so the billing
            # layer still refuses to issue a silently-TRUSTED invoice.
            damage = ((faulted_timer.ticks_lost + faulted_timer.ticks_delayed)
                      * self.cfg.tick_ns)
            if damage:
                stats["fault_uncertainty_ns"] = damage
        return stats

    def check_invariants(self) -> None:
        """Run a full invariant sweep now (no-op when checking is off)."""
        if self.invariant_checker is not None:
            self.invariant_checker.check_full()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def new_shell(self, env: Optional[dict] = None) -> Shell:
        return Shell(self.kernel, env=env)

    def packet_flood(self, rate_pps: float, jitter: bool = False) -> PacketFlood:
        return PacketFlood(self.nic, self.clock, self.events, rate_pps,
                           rng=self.rng, jitter=jitter)

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def _drain_due_events(self) -> None:
        while True:
            next_time = self.events.next_time()
            if next_time is None or next_time > self.clock.now:
                return
            self.events.run_due(self.clock.now)

    def step(self) -> bool:
        """One loop iteration.  Returns False when nothing can progress."""
        if self.cfg.nproc > 1:
            return self._step_smp()
        if self.clock.now > self.cfg.max_time_ns:
            raise SimulationError(
                f"simulation exceeded max_time_ns at {self.clock.now}ns")
        self._drain_due_events()

        kernel = self.kernel
        current = kernel.current
        if (kernel.need_resched or current is None
                or current.state is not TaskState.RUNNING):
            kernel.schedule()
            current = kernel.current

        next_time = self.events.next_time()
        checker = self.invariant_checker
        if current is None:
            if next_time is None:
                return False  # fully idle, nothing scheduled
            idle_ns = next_time - self.clock.now
            self.clock.advance_to(next_time)
            if checker is not None and idle_ns > 0:
                checker.on_idle_advance(idle_ns)
            return True

        budget = (next_time - self.clock.now
                  if next_time is not None else _IDLE_SLICE_NS)
        if budget <= 0:
            return True  # events due right now; drained next iteration
        kernel.engine.run(current, budget)
        if checker is not None:
            checker.on_step()
        return True

    # ------------------------------------------------------------------
    # the SMP loop (lockstep time slices on one virtual clock)
    # ------------------------------------------------------------------

    def _step_smp(self) -> bool:
        """One SMP slice: [now, next event).  Every CPU runs the same wall
        window "in parallel" — simulated serially by silently rewinding the
        clock to the slice start for each CPU, letting it consume (firing
        on_advance, so each CPU accounts its own capacity), then jumping
        the clock to the slice barrier without re-firing on_advance.
        Migrations and load balancing apply at the barrier only, so a task
        can never run on two CPUs inside one wall window.
        """
        if self.clock.now > self.cfg.max_time_ns:
            raise SimulationError(
                f"simulation exceeded max_time_ns at {self.clock.now}ns")
        # Due events (staggered per-CPU ticks, packets, disk completions)
        # bank-switch to their CPU and may consume handler time.
        self._drain_due_events()

        kernel = self.kernel
        checker = self.invariant_checker
        clock = self.clock
        t0 = clock.now
        next_time = self.events.next_time()
        any_ran = False
        end_max = t0
        for idx in range(self.cfg.nproc):
            kernel.set_active_cpu(idx)
            if checker is not None:
                checker.on_cpu_slice(idx, t0)
            clock._now = t0  # parallel slice start (silent rewind)
            end, ran = self._run_cpu_slice(t0, next_time)
            any_ran = any_ran or ran
            if end > end_max:
                end_max = end
        if next_time is not None and next_time > end_max:
            end_max = next_time
        if not any_ran and next_time is None:
            clock._now = end_max
            return False  # fully idle, nothing scheduled
        # Slice barrier: one silent jump — each CPU already fired
        # on_advance for its own share of the window.
        clock._now = end_max
        if checker is not None:
            checker.on_cpu_slice(kernel.cpu_index, end_max)
        kernel.flush_migrations()
        kernel.load_balance()
        return True

    def _run_cpu_slice(self, t0: int, next_time: Optional[int]):
        """Run the active CPU from ``t0`` up to ``next_time``; returns
        (local end time, whether any task executed)."""
        kernel = self.kernel
        checker = self.invariant_checker
        clock = self.clock
        ran = False
        spins = 0
        while True:
            current = kernel.current
            if (kernel.need_resched or current is None
                    or current.state is not TaskState.RUNNING):
                kernel.schedule()
                current = kernel.current
            now = clock.now
            if current is None:
                if next_time is None or next_time <= now:
                    return now, ran
                # Idle fill to the barrier, attributed to this CPU.
                self.clock.advance_to(next_time)
                if checker is not None:
                    checker.on_idle_advance(next_time - now)
                return next_time, ran
            limit = next_time if next_time is not None else t0 + _IDLE_SLICE_NS
            budget = limit - now
            if budget <= 0:
                return now, ran
            kernel.engine.run(current, budget)
            ran = True
            if checker is not None:
                checker.on_step()
            if clock.now == now:
                spins += 1
                if spins > 100_000:
                    raise SimulationError(
                        f"cpu{kernel.cpu_index} slice made no progress "
                        f"at {now}ns (pid "
                        f"{current.pid if current else None})")
            else:
                spins = 0

    def run_for(self, duration_ns: int) -> None:
        """Advance virtual time by ``duration_ns``."""
        deadline = self.clock.now + duration_ns
        while self.clock.now < deadline:
            if not self.step():
                idle_ns = deadline - self.clock.now
                self.clock.advance_to(deadline)
                if self.invariant_checker is not None and idle_ns > 0:
                    self.invariant_checker.on_idle_advance(idle_ns)
                return

    def run_until(self, predicate: Callable[[], bool],
                  max_ns: Optional[int] = None) -> None:
        """Run until ``predicate()`` holds.  Raises on deadline/deadlock."""
        deadline = (self.clock.now + max_ns) if max_ns is not None else None
        while not predicate():
            if deadline is not None and self.clock.now >= deadline:
                raise SimulationError(
                    f"run_until deadline exceeded at {self.clock.now}ns")
            if not self.step():
                raise DeadlockError(
                    "nothing can progress but the predicate is unsatisfied")

    def run_until_exit(self, tasks: Sequence[Task],
                       max_ns: Optional[int] = None) -> None:
        """Run until every task in ``tasks`` has exited."""
        targets = list(tasks)

        def done() -> bool:
            return all(t.state in (TaskState.ZOMBIE, TaskState.DEAD)
                       for t in targets)

        self.run_until(done, max_ns=max_ns)

    def run_to_completion(self, max_ns: Optional[int] = None) -> None:
        """Run until no task is alive."""
        self.run_until(self.kernel.all_finished, max_ns=max_ns)
