"""Physical memory: a frame allocator with per-frame reverse-mapping info.

Frames hold no data (guest programs are op streams, not byte arrays); what
matters for the exception-flooding experiment is *which* frames exist, who
owns them, and their referenced/dirty bits for the clock reclaim algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..errors import SimulationError


class Frame:
    """One physical page frame."""

    __slots__ = ("pfn", "owner_asid", "vpn", "referenced", "dirty", "pinned")

    def __init__(self, pfn: int) -> None:
        self.pfn = pfn
        #: Address-space id and virtual page currently mapped here (rmap).
        self.owner_asid: Optional[int] = None
        self.vpn: Optional[int] = None
        self.referenced = False
        self.dirty = False
        #: Pinned frames (kernel pages) are never reclaimed.
        self.pinned = False

    @property
    def free(self) -> bool:
        return self.owner_asid is None and not self.pinned

    def __repr__(self) -> str:
        if self.pinned:
            return f"Frame({self.pfn}, pinned)"
        if self.free:
            return f"Frame({self.pfn}, free)"
        return f"Frame({self.pfn}, asid={self.owner_asid}, vpn={self.vpn})"


class PhysicalMemory:
    """All RAM frames plus a free list and a clock hand for reclaim."""

    def __init__(self, total_frames: int, kernel_reserved_frames: int = 64) -> None:
        if total_frames <= kernel_reserved_frames:
            raise SimulationError("not enough frames for the kernel reservation")
        self.frames: List[Frame] = list(map(Frame, range(total_frames)))
        self._free: Deque[int] = deque(range(kernel_reserved_frames,
                                             total_frames))
        for frame in self.frames[:kernel_reserved_frames]:
            frame.pinned = True
        self._clock_hand = kernel_reserved_frames
        self.kernel_reserved = kernel_reserved_frames

    @property
    def total_frames(self) -> int:
        return len(self.frames)

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def used_frames(self) -> int:
        return self.total_frames - self.kernel_reserved - self.free_frames

    def alloc(self, asid: int, vpn: int) -> Optional[Frame]:
        """Take a free frame and bind it to (asid, vpn); None if exhausted."""
        if not self._free:
            return None
        frame = self.frames[self._free.popleft()]
        frame.owner_asid = asid
        frame.vpn = vpn
        frame.referenced = True
        frame.dirty = False
        return frame

    def release(self, pfn: int) -> None:
        """Return a frame to the free list."""
        frame = self.frames[pfn]
        if frame.pinned:
            raise SimulationError(f"cannot release pinned frame {pfn}")
        if frame.free:
            raise SimulationError(f"double free of frame {pfn}")
        frame.owner_asid = None
        frame.vpn = None
        frame.referenced = False
        frame.dirty = False
        self._free.append(pfn)

    def clock_scan(self) -> Tuple[Optional[Frame], int]:
        """One pass of the clock algorithm: return (victim frame, frames
        examined).

        Clears referenced bits as the hand sweeps; returns the first
        unreferenced, unpinned, in-use frame.  The scan count lets the
        kernel charge direct-reclaim CPU time to the allocating task, which
        is a real (and billable) cost of memory pressure.  The frame is
        None only if nothing is reclaimable (everything pinned/free).
        """
        n = self.total_frames
        for scanned in range(1, 2 * n + 1):
            frame = self.frames[self._clock_hand]
            self._clock_hand = (self._clock_hand + 1) % n
            if frame.pinned or frame.free:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return frame, scanned
        return None, 2 * n

    def frames_of(self, asid: int) -> List[Frame]:
        return [f for f in self.frames if f.owner_asid == asid]
