"""Interrupt controller (a minimal PIC/APIC model).

Devices raise IRQ lines; the kernel registers one handler per line.  Lines
raised while interrupts are masked stay pending and are replayed when the
kernel unmasks.  Per-line statistics feed ``/proc``-style reporting and the
interrupt-flooding experiment.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict

from ..errors import SimulationError

#: Conventional line assignments (mirroring legacy x86 IRQ numbering).
IRQ_TIMER = 0
IRQ_NIC = 11
IRQ_DISK = 14


class InterruptController:
    """Routes raised IRQ lines to registered kernel handlers."""

    def __init__(self) -> None:
        self._handlers: Dict[int, Callable[[int], None]] = {}
        self._pending: Deque[int] = deque()
        self._masked = False
        #: Per-line delivery counts (like /proc/interrupts).
        self.counts: Dict[int, int] = {}
        #: Lines dropped because no handler was registered.
        self.spurious = 0
        #: Per-line CPU affinity (like /proc/irq/N/smp_affinity).  Lines
        #: default to CPU 0; on SMP machines the kernel's device-IRQ
        #: handlers consult this to pick the CPU that eats the handler
        #: time — the surface the IRQ-steering attack manipulates.
        self._affinity: Dict[int, int] = {}

    def set_affinity(self, line: int, cpu: int) -> None:
        self._affinity[line] = int(cpu)

    def affinity(self, line: int) -> int:
        return self._affinity.get(line, 0)

    def register(self, line: int, handler: Callable[[int], None]) -> None:
        if line in self._handlers:
            raise SimulationError(f"IRQ line {line} already has a handler")
        self._handlers[line] = handler

    @property
    def masked(self) -> bool:
        return self._masked

    def mask(self) -> None:
        """Disable interrupt delivery (cli)."""
        self._masked = True

    def unmask(self) -> None:
        """Re-enable delivery (sti) and replay anything pending."""
        self._masked = False
        while self._pending and not self._masked:
            self._dispatch(self._pending.popleft())

    def raise_irq(self, line: int) -> None:
        """Assert ``line``; delivered now or queued if masked."""
        if self._masked:
            self._pending.append(line)
            return
        self._dispatch(line)

    def _dispatch(self, line: int) -> None:
        handler = self._handlers.get(line)
        if handler is None:
            self.spurious += 1
            return
        self.counts[line] = self.counts.get(line, 0) + 1
        # Handlers run with further interrupts masked, like a real top half.
        self._masked = True
        try:
            handler(line)
        finally:
            self._masked = False
        while self._pending and not self._masked:
            self._dispatch(self._pending.popleft())

    def pending_count(self) -> int:
        return len(self._pending)
