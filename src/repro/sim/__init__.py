"""Discrete-event simulation core: virtual clock, event queue, RNG, tracing."""

from .clock import Clock
from .events import Event, EventHandle, EventQueue
from .rng import DeterministicRng
from .tracing import TraceLog, TraceRecord

__all__ = [
    "Clock",
    "Event",
    "EventHandle",
    "EventQueue",
    "DeterministicRng",
    "TraceLog",
    "TraceRecord",
]
