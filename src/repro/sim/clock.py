"""The simulated wall clock.

All simulated time is integer nanoseconds since boot.  Only the machine's
main loop advances the clock; everything else reads it.  Using integers
keeps the simulation exactly reproducible (no float drift), which is the
point of reproducing tick-alignment attacks in a simulator.
"""

from __future__ import annotations

from ..errors import SimulationError


class Clock:
    """Monotonic integer-nanosecond clock."""

    __slots__ = ("_now", "on_advance")

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise SimulationError("clock cannot start before zero")
        self._now = int(start_ns)
        #: Optional observer called with each positive delta — the invariant
        #: checker's independent record that time actually moved.
        self.on_advance = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds since boot."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in (float) seconds, for reporting only."""
        return self._now / 1e9

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise SimulationError(f"cannot advance clock by {delta_ns} ns")
        self._now += int(delta_ns)
        if self.on_advance is not None and delta_ns:
            self.on_advance(int(delta_ns))
        return self._now

    def advance_to(self, t_ns: int) -> int:
        """Jump forward to absolute time ``t_ns`` and return it."""
        if t_ns < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={t_ns}")
        delta = int(t_ns) - self._now
        self._now = int(t_ns)
        if self.on_advance is not None and delta:
            self.on_advance(delta)
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now}ns)"
