"""Structured trace log for the simulator.

The kernel and hardware emit :class:`TraceRecord` entries for interesting
events (context switches, ticks, faults, signals...).  Tracing is off by
default because experiments generate millions of events; tests and the
examples enable it with category filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Category used by the invariant checker for violation reports.  Records
#: in this category are always stored, even when the category was not
#: enabled: a broken conservation law must never be silently dropped.
INVARIANT_CATEGORY = "invariant"

#: Category used by the hardware fault injectors (lost/delayed ticks, TSC
#: distortion, spurious IRQs) and the clocksource watchdog.  Distinct from
#: the pre-existing ``"fault"`` category (page faults), so hardware-fault
#: events keep their own bucket in counters and in the capacity-``dropped``
#: per-category breakdown instead of folding into the memory one.
HW_FAULT_CATEGORY = "hw-fault"

#: Categories stored regardless of the enabled set.
ALWAYS_STORED_CATEGORIES = frozenset({INVARIANT_CATEGORY})


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time_ns: int
    category: str
    message: str
    pid: Optional[int] = None
    data: Tuple[Tuple[str, object], ...] = ()

    def get(self, key: str, default=None):
        for k, v in self.data:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        pid = f" pid={self.pid}" if self.pid is not None else ""
        extras = "".join(f" {k}={v}" for k, v in self.data)
        return f"[{self.time_ns:>12}ns] {self.category}:{pid} {self.message}{extras}"


class TraceLog:
    """Collects trace records, with per-category enablement and counters.

    Counters are always maintained (they are cheap and several invariants in
    the test suite rely on them); record bodies are only stored for enabled
    categories.
    """

    def __init__(self, enabled: Iterable[str] = (), capacity: int = 1_000_000) -> None:
        self._enabled: Set[str] = set(enabled)
        self._records: List[TraceRecord] = []
        self._counters: Dict[str, int] = {}
        self._dropped_by_category: Dict[str, int] = {}
        self._capacity = capacity
        self.dropped = 0
        self._recompute_stored()

    def _recompute_stored(self) -> None:
        """Precompute the store decision so the (dominant) disabled-category
        emit path is one counter bump and one set-membership test."""
        self._store_all = "*" in self._enabled
        self._stored = self._enabled | ALWAYS_STORED_CATEGORIES

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)
        self._recompute_stored()

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)
        self._recompute_stored()

    def enabled(self, category: str) -> bool:
        return category in self._enabled or "*" in self._enabled

    def emit(self, time_ns: int, category: str, message,
             pid: Optional[int] = None, **data) -> None:
        counters = self._counters
        counters[category] = counters.get(category, 0) + 1
        if not self._store_all and category not in self._stored:
            return
        if len(self._records) >= self._capacity:
            # Count every record that could not be stored, per attempt, so
            # capacity exhaustion stays visible in sweep telemetry.
            self.dropped += 1
            self._dropped_by_category[category] = \
                self._dropped_by_category.get(category, 0) + 1
            return
        if callable(message):
            # Lazy message: hot call sites pass a thunk so the format work
            # only happens for records that are actually stored.
            message = message()
        self._records.append(TraceRecord(
            time_ns=time_ns, category=category, message=message, pid=pid,
            data=tuple(sorted(data.items()))))

    def count(self, category: str) -> int:
        return self._counters.get(category, 0)

    @property
    def counters(self) -> Dict[str, int]:
        """All per-category counters, plus the reserved ``dropped`` key (the
        number of enabled records lost to capacity — always present)."""
        out = dict(self._counters)
        out["dropped"] = self.dropped
        return out

    def dropped_by_category(self) -> Dict[str, int]:
        """Per-category breakdown of records lost to capacity."""
        return dict(self._dropped_by_category)

    def records(self, category: Optional[str] = None,
                pid: Optional[int] = None) -> List[TraceRecord]:
        out = self._records
        if category is not None:
            out = [r for r in out if r.category == category]
        if pid is not None:
            out = [r for r in out if r.pid == pid]
        return list(out)

    def clear(self) -> None:
        self._records.clear()
        self._counters.clear()
        self._dropped_by_category.clear()
        self.dropped = 0
