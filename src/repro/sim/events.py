"""Deterministic event queue.

Events scheduled for the same instant fire in scheduling order (FIFO), which
makes every run bit-for-bit reproducible.  Cancellation is lazy: a cancelled
event stays in the heap but is skipped on pop, the standard trick for
heap-based priority queues.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback.  Created via :meth:`EventQueue.schedule`."""

    __slots__ = ("time_ns", "seq", "callback", "name", "cancelled")

    def __init__(self, time_ns: int, seq: int,
                 callback: Callable[[], None], name: str) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        # Tuple-free: heap sifts compare events on every schedule/pop.
        if self.time_ns != other.time_ns:
            return self.time_ns < other.time_ns
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name!r} @ {self.time_ns}ns, {state})"


class EventHandle:
    """A caller-facing handle used to cancel a scheduled event."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: "EventQueue") -> None:
        self._event = event
        self._queue = queue

    @property
    def time_ns(self) -> int:
        return self._event.time_ns

    @property
    def pending(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it had not fired/cancelled."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        self._queue._note_cancel(self._event)
        return True


class EventQueue:
    """Time-ordered queue of simulation events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time_ns: int, callback: Callable[[], None],
                 name: str = "event") -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``time_ns``."""
        if time_ns < 0:
            raise SimulationError(f"cannot schedule event at t={time_ns}")
        event = Event(int(time_ns), self._seq, callback, name)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def _note_cancel(self, event: Event) -> None:
        self._live -= 1

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def next_time(self) -> Optional[int]:
        """Time of the earliest pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time_ns if self._heap else None

    def pop_due(self, now_ns: int) -> Optional[Event]:
        """Pop the earliest event with ``time_ns <= now_ns``, if any."""
        self._drop_cancelled()
        if self._heap and self._heap[0].time_ns <= now_ns:
            event = heapq.heappop(self._heap)
            self._live -= 1
            # Mark consumed so a late handle.cancel() is a no-op.
            event.cancelled = True
            return event
        return None

    def run_due(self, now_ns: int) -> int:
        """Fire every event due at or before ``now_ns``.  Returns the count.

        Callbacks may schedule further events; those also fire if they fall
        within ``now_ns`` (this models cascading interrupt work happening
        "at" the same instant).
        """
        fired = 0
        while True:
            event = self.pop_due(now_ns)
            if event is None:
                return fired
            event.callback()
            fired += 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
