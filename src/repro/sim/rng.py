"""Seeded random number generation for the simulator.

A thin wrapper over :class:`random.Random` that namespaces independent
streams, so adding randomness to one subsystem (say, packet jitter) does not
perturb the draws seen by another (say, workload data).  Stream derivation is
stable across runs and across Python versions because it hashes the name with
a fixed algorithm rather than relying on ``hash()``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class DeterministicRng:
    """A registry of named, independently seeded random streams."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self._seed}:{name}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def randint(self, name: str, lo: int, hi: int) -> int:
        return self.stream(name).randint(lo, hi)

    def expovariate_ns(self, name: str, mean_ns: float) -> int:
        """An exponentially distributed interval, at least 1 ns."""
        draw = self.stream(name).expovariate(1.0 / mean_ns)
        return max(1, int(draw))
