"""Configuration dataclasses for the simulated machine and kernel.

The defaults model the paper's testbed: a DELL OptiPlex 755 with one core of
an Intel E7200 @ 2.53 GHz running Linux 2.6.29 (Ubuntu 8.10).  Kernel-path
costs are order-of-magnitude figures for that era, expressed in CPU cycles so
they scale with the configured clock rate.  Absolute values do not matter for
the reproduction (see DESIGN.md §2); what matters is that kernel service is
orders of magnitude cheaper per event than the user workloads, as the paper's
Section V-C observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

#: Number of nanoseconds in one second, used throughout the time arithmetic.
NS_PER_SEC = 1_000_000_000


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of kernel code paths and memory operations.

    Every cost is in CPU cycles.  The execution engine converts cycles to
    simulated nanoseconds via the CPU frequency.
    """

    # Mode switches and scheduling.
    syscall_entry_cycles: int = 300
    syscall_exit_cycles: int = 300
    context_switch_cycles: int = 4_000
    schedule_pick_cycles: int = 800

    # Interrupts and exceptions.
    irq_entry_cycles: int = 600
    timer_handler_cycles: int = 2_500
    nic_handler_cycles: int = 9_000
    #: Disk completion: top half plus the block softirq it raises.
    disk_handler_cycles: int = 20_000
    #: do_debug(): exception entry, DR7 decode, notifier chain.
    debug_exception_cycles: int = 9_000
    minor_fault_cycles: int = 3_500
    major_fault_cycles: int = 9_000

    # Signals and tracing.
    signal_deliver_cycles: int = 2_000
    signal_return_cycles: int = 1_200
    #: ptrace_stop() in the tracee's context: tasklist locking, tracer
    #: notification, context save.  Billed to the victim at every traced
    #: stop — a big slice of the thrashing attack's per-hit theft.
    ptrace_stop_cycles: int = 8_000
    ptrace_request_cycles: int = 2_500

    # Process lifecycle.  fork+exit on a 2008 Core 2 cost on the order of
    # 100 us together (COW setup, teardown, reaping) — these figures matter
    # because they set how much work the scheduling attack's fork chain
    # transfers per cycle.
    fork_cycles: int = 120_000
    execve_cycles: int = 120_000
    exit_cycles: int = 80_000
    wait_cycles: int = 4_000

    # Dynamic linking (charged to the process, per the paper's §III-C).
    linker_base_cycles: int = 60_000
    linker_per_library_cycles: int = 25_000
    linker_per_symbol_cycles: int = 900

    # Library calls (PLT indirection).
    lib_call_cycles: int = 40

    # Memory.
    mem_access_cycles: int = 6
    page_zero_cycles: int = 1_200
    swap_out_setup_cycles: int = 2_000
    #: Direct-reclaim LRU scan cost, charged to the allocating task per
    #: frame the clock hand examines (how memory pressure turns into the
    #: victim's system time).
    reclaim_scan_cycles_per_frame: int = 60

    def validate(self) -> None:
        for name, value in vars(self).items():
            if not isinstance(value, int) or value < 0:
                raise ConfigError(f"cost {name} must be a non-negative int, got {value!r}")


@dataclass(frozen=True)
class SchedulerConfig:
    """Parameters shared by the run-queue scheduler implementations."""

    #: Which scheduler class to instantiate: "cfs", "o1" or "rr".
    kind: str = "cfs"
    #: CFS: targeted scheduling latency (ns) for the whole run queue.
    sched_latency_ns: int = 20_000_000
    #: CFS: minimum slice any task gets before preemption (ns).
    min_granularity_ns: int = 4_000_000
    #: CFS: wakeup preemption granularity (ns); 5 ms in 2.6.29.
    wakeup_granularity_ns: int = 5_000_000
    #: O(1)/RR: base timeslice (ns) of a nice-0 task.
    base_timeslice_ns: int = 100_000_000

    def validate(self) -> None:
        if self.kind not in ("cfs", "o1", "rr"):
            raise ConfigError(f"unknown scheduler kind {self.kind!r}")
        for name in ("sched_latency_ns", "min_granularity_ns",
                     "wakeup_granularity_ns", "base_timeslice_ns"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Physical memory and paging parameters."""

    page_size: int = 4096
    #: Physical RAM in bytes (default 64 MiB: scaled-down analogue of the
    #: testbed's 2 GiB, matching the scaled workloads).
    ram_bytes: int = 64 * 1024 * 1024
    #: Swap space in bytes.
    swap_bytes: int = 256 * 1024 * 1024
    #: Fraction of frames the reclaimer tries to keep free.
    free_target_fraction: float = 0.02

    def validate(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigError("page_size must be a positive power of two")
        if self.ram_bytes < 16 * self.page_size:
            raise ConfigError("ram_bytes too small to boot")
        if self.swap_bytes < 0:
            raise ConfigError("swap_bytes must be non-negative")
        if not 0.0 <= self.free_target_fraction < 0.5:
            raise ConfigError("free_target_fraction out of range")

    @property
    def total_frames(self) -> int:
        return self.ram_bytes // self.page_size

    @property
    def swap_pages(self) -> int:
        return self.swap_bytes // self.page_size


@dataclass(frozen=True)
class DiskConfig:
    """Latency model of the swap/backing disk.

    Swap I/O is mostly short-seek/sequential (the kernel allocates swap
    slots in clusters), so the per-request overhead is far below a full
    random seek.
    """

    #: Fixed per-request latency (short seek + controller), ns.
    base_latency_ns: int = 300_000
    #: Additional latency per page transferred (~80 MB/s media rate), ns.
    per_page_ns: int = 50_000

    def validate(self) -> None:
        if self.base_latency_ns < 0 or self.per_page_ns < 0:
            raise ConfigError("disk latencies must be non-negative")


@dataclass(frozen=True)
class MachineConfig:
    """Top-level configuration of the simulated machine."""

    #: CPU clock in Hz (paper: Intel E7200 @ 2.53 GHz, one core enabled).
    cpu_freq_hz: int = 2_530_000_000
    #: Number of CPUs.  1 reproduces the paper's uniprocessor testbed and
    #: follows the exact pre-SMP code paths (bit-identical results); N > 1
    #: enables per-CPU run queues, staggered per-CPU timers, IRQ affinity
    #: and the load balancer (see docs/smp.md).
    nproc: int = 1
    #: Timer interrupt frequency; Ubuntu 8.10 desktop kernels used HZ=250
    #: but the paper's analysis ("1 to 10 milliseconds") spans 100-1000.
    hz: int = 250
    #: Accounting scheme: "tick" (vulnerable default), "tsc" (fine-grained)
    #: or "dual" (bill by ticks, audit by TSC); optionally combined with
    #: process-aware interrupt accounting.
    accounting: str = "tick"
    #: Bill interrupt-handler time to the current task (Linux classic) or to
    #: a system account (Zhang & West process-aware accounting).
    process_aware_irq_accounting: bool = False
    #: Charge context-switch cost to the outgoing ("prev") or incoming
    #: ("next") task.  Linux's __schedule() mostly runs in prev's context.
    charge_switch_to: str = "prev"
    #: Random seed for the deterministic RNG.
    seed: int = 2010
    #: Stop the simulation if virtual time passes this bound (safety net).
    max_time_ns: int = 3_600 * NS_PER_SEC

    costs: CostModel = field(default_factory=CostModel)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)

    def validate(self) -> None:
        if self.cpu_freq_hz <= 0:
            raise ConfigError("cpu_freq_hz must be positive")
        if not isinstance(self.nproc, int) or not 1 <= self.nproc <= 64:
            raise ConfigError(f"nproc must be an int in [1, 64], got {self.nproc!r}")
        if not 10 <= self.hz <= 10_000:
            raise ConfigError("hz must be in [10, 10000]")
        if self.accounting not in ("tick", "tsc", "dual"):
            raise ConfigError(f"unknown accounting scheme {self.accounting!r}")
        if self.charge_switch_to not in ("prev", "next"):
            raise ConfigError("charge_switch_to must be 'prev' or 'next'")
        if self.max_time_ns <= 0:
            raise ConfigError("max_time_ns must be positive")
        self.costs.validate()
        self.scheduler.validate()
        self.memory.validate()
        self.disk.validate()

    @property
    def tick_ns(self) -> int:
        """Length of one jiffy in nanoseconds."""
        return NS_PER_SEC // self.hz

    def with_(self, **changes) -> "MachineConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of the ``repro serve`` metering daemon."""

    #: Bind address for the JSON API.
    host: str = "127.0.0.1"
    #: Listen port; 0 asks the OS for an ephemeral port.
    port: int = 8787
    #: Path of the SQLite WAL usage store (created on first boot).
    db: str = "repro-usage.db"
    #: Worker threads executing tenant submissions.
    jobs: int = 2
    #: Relative margin the tenant audit grants the meter before calling a
    #: bill overbilled (fraction of the oracle's own-work time).
    audit_tolerance_fraction: float = 0.1
    #: Absolute floor of that margin, ns — absorbs tick quantisation on
    #: short runs.
    audit_tolerance_floor_ns: int = 5_000_000
    #: How long SQLite waits on a locked database before raising, ms.
    #: Lets two serve processes share one store file (docs/chaos.md).
    busy_timeout_ms: int = 5_000
    #: Seconds SIGTERM/SIGINT shutdown waits for in-flight jobs to finish
    #: before abandoning them (they stay retryable in the store).
    drain_timeout_s: float = 30.0

    def validate(self) -> None:
        if not self.host:
            raise ConfigError("serve host must be non-empty")
        if not 0 <= self.port <= 65_535:
            raise ConfigError("serve port must be in [0, 65535]")
        if not self.db:
            raise ConfigError("serve db path must be non-empty")
        if self.jobs < 1:
            raise ConfigError("serve jobs must be >= 1")
        if (self.audit_tolerance_fraction < 0
                or self.audit_tolerance_floor_ns < 0):
            raise ConfigError("audit tolerances must be non-negative")
        if self.busy_timeout_ms < 0:
            raise ConfigError("busy_timeout_ms must be non-negative")
        if self.drain_timeout_s < 0:
            raise ConfigError("drain_timeout_s must be non-negative")


def default_config(**changes) -> MachineConfig:
    """Build a validated :class:`MachineConfig`, applying optional overrides.

    Nested sections can be overridden by passing replacement dataclasses,
    e.g. ``default_config(memory=MemoryConfig(ram_bytes=2**25))``.
    """
    cfg = MachineConfig(**changes) if changes else MachineConfig()
    cfg.validate()
    return cfg
