"""The chaos gauntlet: prove the resilience claims against live faults.

``repro chaos`` boots one *real* serve daemon per shard — each with the
chaos plan's store/worker/HTTP fault injectors installed — points the
sharded fleet client at them with one endpoint deliberately dead, and
asserts the properties docs/chaos.md promises, live:

* the sweep completes: every live shard comes home despite injected
  store errors, worker crashes and HTTP faults (absorbed), and the dark
  shard is *declared* in the merged report's coverage section;
* crash-and-retry never double-bills — every surviving store passes its
  integrity check (conservation law included);
* chaos changes *when* answers arrive, never *what* they are: each
  surviving shard's aggregate state is bit-identical to a chaos-free
  in-process run of the same host span;
* the empty plan is an identity: ``normalize_chaos`` collapses it to
  None, and a fully-covered sharded sweep reproduces the serial report
  byte for byte.

Every observation lands in the same ``[PASS]/[FAIL]`` check list the
serve selftest uses, and ``repro chaos`` exits non-zero on any failure.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Any, Dict, List, Optional

from ..fleet import FleetSpec, fleet_key, run_fleet
from ..fleet.shard import ShardClient, ShardOutcome, merged_report, \
    shard_fleet_local, shard_ranges
from ..serve.api import ReproServer
from ..serve.service import MeteringService
from ..serve.store import UsageStore
from ..verify.chaos import check_chaos_report
from .inject import ChaosInjector, ChaosStoreProxy
from .plan import ChaosPlan, gauntlet_plan, normalize_chaos
from .resilience import BackoffPolicy, ResilientStore

#: Gauntlet fleet specs: small enough for CI, rich enough to populate
#: every mix stratum and make the fault probabilities bite many times.
QUICK_FLEET = dict(hosts=6, guests=1, prevalence=0.4, seed=7, scale=0.02)
FULL_FLEET = dict(hosts=10, guests=2, prevalence=0.3, seed=11, scale=0.04)


def _canon(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True)


def _dead_endpoint() -> str:
    """An address nothing listens on (bound once to reserve, then freed) —
    the gauntlet's hard-down shard endpoint."""
    sock = socket.socket()
    try:
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
    finally:
        sock.close()
    return f"http://127.0.0.1:{port}"


class _ChaoticServer:
    """One serve daemon with the full chaos stack installed:
    ``UsageStore → ChaosStoreProxy → ResilientStore → MeteringService``,
    plus HTTP- and worker-level injection from the same seeded injector."""

    def __init__(self, index: int, db: str, plan: ChaosPlan) -> None:
        self.index = index
        self.base_store = UsageStore(db)
        self.injector = ChaosInjector(plan, scope=f"gauntlet{index}")
        resilient = ResilientStore.from_plan(
            ChaosStoreProxy(self.base_store, self.injector), plan)
        self.service = MeteringService(resilient, jobs=2,
                                       chaos=self.injector)
        self.server = ReproServer(self.service, chaos=self.injector)
        self.server.start_background()

    @property
    def endpoint(self) -> str:
        return self.server.address

    def close(self) -> None:
        self.server.close()


def run_gauntlet(db_dir: str, intensity: float = 0.4, shards: int = 3,
                 seed: int = 2010, quick: bool = False,
                 quiet: bool = False) -> Dict[str, Any]:
    """Run the full gauntlet; return the report doc (``passed``,
    ``checks``, the plan, coverage and injected-fault counts)."""
    checks: List[Dict[str, Any]] = []

    def check(name: str, passed: bool, detail: str) -> None:
        checks.append({"name": name, "passed": bool(passed),
                       "detail": detail})
        if not quiet:
            print(f"  [{'PASS' if passed else 'FAIL'}] {name} ({detail})")

    os.makedirs(db_dir, exist_ok=True)
    fleet = FleetSpec(**(QUICK_FLEET if quick else FULL_FLEET))
    down = shards - 1
    plan = gauntlet_plan(intensity, seed=seed, down_shards=(down,))
    ranges = shard_ranges(fleet.hosts, shards)

    servers: List[Optional[_ChaoticServer]] = []
    endpoints: List[str] = []
    for index in range(shards):
        if index in plan.down_shards:
            servers.append(None)
            endpoints.append(_dead_endpoint())
        else:
            server = _ChaoticServer(
                index, os.path.join(db_dir, f"shard{index}.db"), plan)
            servers.append(server)
            endpoints.append(server.endpoint)

    client = ShardClient(endpoints, policy=BackoffPolicy.from_plan(plan),
                         deadline_s=60.0 if quick else 180.0,
                         poll_interval_s=0.02, failover=False)
    outcomes: List[Optional[ShardOutcome]] = [None] * shards

    def run_one(index: int) -> None:
        outcomes[index] = client.run_shard(fleet, index, ranges[index])

    try:
        threads = [threading.Thread(target=run_one, args=(i,),
                                    name=f"gauntlet-shard-{i}")
                   for i in range(shards)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        done = [o for o in outcomes if o is not None]
        report = merged_report(fleet, done, shards)

        live = [o for o in done if o.index not in plan.down_shards]
        dark = [o for o in done if o.index in plan.down_shards]
        check("every live shard completes under chaos",
              all(o.status == "ok" for o in live),
              "; ".join(f"shard {o.index}: {o.status}"
                        f" ({o.error or 'clean'})" for o in live))
        check("the dark shard fails within its bounded budget",
              all(o.status == "failed" for o in dark),
              f"statuses={[o.status for o in dark]}")

        injected = {f"shard{s.index}": s.injector.injected_by_site()
                    for s in servers if s is not None}
        injected_total = sum(sum(counts.values())
                             for counts in injected.values())
        absorbed = sum(o.faults_absorbed for o in live)
        check("faults were actually injected",
              injected_total > 0,
              f"{injected_total} injected: {injected}")
        check("client absorbed faults on the way",
              absorbed > 0, f"{absorbed} absorbed across live shards")

        coverage = report["coverage"]
        dark_hosts = sum(hi - lo for i, (lo, hi) in enumerate(ranges)
                         if i in plan.down_shards)
        check("report declares the coverage gap",
              coverage["grade"] == "PARTIAL"
              and coverage["hosts_covered"] == fleet.hosts - dark_hosts
              and report.get("population_covered")
              == coverage["population_covered"],
              f"grade={coverage['grade']} "
              f"hosts={coverage['hosts_covered']}/{coverage['hosts_total']}")
        problems = check_chaos_report(report)
        check("coverage arithmetic verifies", not problems,
              f"problems={problems}" if problems else
              "check_chaos_report found nothing")

        for server in servers:
            if server is None:
                continue
            integrity = server.base_store.integrity_check()
            check(f"shard {server.index} store: no double billing",
                  integrity["ok"], f"problems={integrity['problems']}")

        for outcome in live:
            reference = run_fleet(fleet, host_range=outcome.host_range)
            check(f"shard {outcome.index} state bit-identical to "
                  f"chaos-free run",
                  outcome.state is not None
                  and _canon(outcome.state) == _canon(reference.to_state()),
                  f"hosts {outcome.host_range[0]}-{outcome.host_range[1]}, "
                  f"{outcome.faults_absorbed} faults absorbed on the way")
    finally:
        for server in servers:
            if server is not None:
                server.close()

    # -- empty-plan identity (no servers involved) -------------------------
    check("empty plan normalises to None (identity path)",
          normalize_chaos(ChaosPlan(seed=seed)) is None
          and normalize_chaos(None) is None
          and normalize_chaos(plan) is plan,
          "normalize_chaos keeps the chaos-free path wrapper-free")
    check("unsharded fleet key unchanged by the sharding plumbing",
          fleet_key(fleet) == fleet_key(fleet, host_range=None),
          fleet_key(fleet)[:16])

    serial = run_fleet(fleet).report()
    local = shard_fleet_local(fleet, shards)
    local_coverage = local.pop("coverage")
    # distinct_runs / failed_runs count simulations *executed*, which
    # depends on how the hosts were partitioned (one identity can appear
    # in several shards); every population statistic must be exact.
    execution_telemetry = ("distinct_runs", "failed_runs")
    serial_stats = {k: v for k, v in serial.items()
                    if k not in execution_telemetry}
    local_stats = {k: v for k, v in local.items()
                   if k not in execution_telemetry}
    check("fully-covered sharded statistics byte-identical to serial",
          _canon(local_stats) == _canon(serial_stats)
          and local_coverage["grade"] == "TRUSTED",
          f"grade={local_coverage['grade']}, "
          f"{len(_canon(serial_stats))} bytes compared")

    passed = all(entry["passed"] for entry in checks)
    return {
        "command": "chaos",
        "quick": quick,
        "intensity": intensity,
        "shards": shards,
        "plan": plan.to_dict(),
        "passed": passed,
        "checks": checks,
        "coverage": report["coverage"],
        "injected": injected,
    }
