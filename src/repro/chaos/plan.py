"""Declarative, seeded, spec-serializable *service-plane* chaos plans.

Where :class:`~repro.faults.FaultPlan` injects hardware misbehaviour into
the simulated machine, a :class:`ChaosPlan` injects infrastructure
misbehaviour into the metering service that bills it: SQLite-level store
errors and latency ("database is locked", slow commits), worker crashes
and hangs inside the serve executor, and HTTP-level faults (5xx,
connection resets, slow or truncated responses, whole shards held dark).
The plan also carries the knobs of the resilience machinery that is
expected to survive it — retry budget, exponential backoff with seeded
jitter, circuit-breaker thresholds, per-request deadlines — so a chaos
sweep compares offense and defense point for point, exactly like the
``watchdog`` flag on a fault plan.

Determinism: the plan itself carries no randomness.  Probabilistic
faults draw from dedicated named ``random.Random`` streams
(``chaos:<seed>:<site>``, see :class:`~repro.chaos.inject.ChaosInjector`),
so a plan plus a seed reproduces the same fault decisions in the same
order at every site.

The all-defaults plan is the *empty* plan: :func:`normalize_chaos`
collapses it to ``None``, no proxy or wrapper is ever installed, and the
serving path is byte-identical to a build without a chaos layer at all —
the same identity-neutrality contract the fault and timesync planes keep.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class ChaosPlan:
    """One serving run's worth of deliberate infrastructure faults.

    All-defaults (with any resilience-knob setting) is the *empty* plan:
    nothing is injected and nothing is wrapped.
    """

    #: Seed of the ``chaos:<seed>:<site>`` fault-decision streams.
    seed: int = 0

    # -- store faults (the SQLite layer under the service) -----------------
    #: Probability a store operation raises ``sqlite3.OperationalError``
    #: ("database is locked") before touching the database.
    store_error_prob: float = 0.0
    #: Probability a store operation is delayed by ``store_slow_ms``.
    store_slow_prob: float = 0.0
    store_slow_ms: float = 0.0

    # -- worker faults (the serve executor) --------------------------------
    #: Probability a worker crashes (raises) at the top of a job attempt.
    worker_crash_prob: float = 0.0
    #: Probability a worker stalls for ``worker_hang_ms`` before running.
    worker_hang_prob: float = 0.0
    worker_hang_ms: float = 0.0

    # -- HTTP faults (the daemon's front door) -----------------------------
    #: Probability a request is answered with an injected 503.
    http_error_prob: float = 0.0
    #: Probability a response is truncated mid-body (connection reset).
    http_reset_prob: float = 0.0
    #: Probability a response is delayed by ``http_slow_ms``.
    http_slow_prob: float = 0.0
    http_slow_ms: float = 0.0
    #: Shard indices whose endpoint is hard-down for the whole run (the
    #: gauntlet binds nothing there; the client must declare the gap).
    down_shards: Tuple[int, ...] = ()

    # -- resilience (the defense; never makes a plan non-empty) ------------
    #: Bounded retry budget per operation/request.
    retries: int = 5
    #: Exponential backoff: base * multiplier**attempt, capped at max.
    backoff_base_ms: float = 5.0
    backoff_multiplier: float = 2.0
    backoff_max_ms: float = 200.0
    #: Seeded jitter, as a fraction of the computed delay.
    jitter_fraction: float = 0.1
    #: Circuit breaker: consecutive failures before the circuit opens,
    #: and how long it stays open before a half-open probe.
    breaker_threshold: int = 8
    breaker_reset_s: float = 0.25
    #: Per-request deadline for shard clients and the gauntlet.
    request_deadline_s: float = 60.0

    def __post_init__(self) -> None:
        for name in ("store_error_prob", "store_slow_prob",
                     "worker_crash_prob", "worker_hang_prob",
                     "http_error_prob", "http_reset_prob", "http_slow_prob",
                     "jitter_fraction"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
        for name in ("store_slow_ms", "worker_hang_ms", "http_slow_ms",
                     "backoff_base_ms", "backoff_max_ms", "breaker_reset_s",
                     "request_deadline_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if not isinstance(self.retries, int) or self.retries < 0:
            raise ConfigError(f"retries must be a non-negative integer, "
                              f"got {self.retries!r}")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if (not isinstance(self.breaker_threshold, int)
                or self.breaker_threshold < 1):
            raise ConfigError(f"breaker_threshold must be a positive "
                              f"integer, got {self.breaker_threshold!r}")
        if self.store_slow_prob > 0 and self.store_slow_ms <= 0:
            raise ConfigError("store_slow_prob needs a positive "
                              "store_slow_ms")
        if self.worker_hang_prob > 0 and self.worker_hang_ms <= 0:
            raise ConfigError("worker_hang_prob needs a positive "
                              "worker_hang_ms")
        if self.http_slow_prob > 0 and self.http_slow_ms <= 0:
            raise ConfigError("http_slow_prob needs a positive "
                              "http_slow_ms")
        if not isinstance(self.down_shards, tuple):
            object.__setattr__(self, "down_shards",
                               tuple(self.down_shards))
        for shard in self.down_shards:
            if not isinstance(shard, int) or shard < 0:
                raise ConfigError(f"down_shards entries must be shard "
                                  f"indices >= 0, got {shard!r}")

    # -- structure queries -------------------------------------------------

    def has_store_faults(self) -> bool:
        return self.store_error_prob > 0 or self.store_slow_prob > 0

    def has_worker_faults(self) -> bool:
        return self.worker_crash_prob > 0 or self.worker_hang_prob > 0

    def has_http_faults(self) -> bool:
        return (self.http_error_prob > 0 or self.http_reset_prob > 0
                or self.http_slow_prob > 0 or bool(self.down_shards))

    def is_empty(self) -> bool:
        """True when the plan injects nothing (resilience knobs alone do
        not make a plan non-empty: with no fault to survive, the defense
        is inert by construction)."""
        return not (self.has_store_faults() or self.has_worker_faults()
                    or self.has_http_faults())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full plain-data form (every field, defaults included)."""
        doc = {f.name: getattr(self, f.name) for f in fields(self)}
        doc["down_shards"] = list(self.down_shards)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ChaosPlan":
        """Inverse of :meth:`to_dict`; unknown keys fail loudly so a typo
        in a plan never silently runs chaos-free."""
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(f"unknown chaos plan field(s) "
                              f"{sorted(unknown)}; have {sorted(known)}")
        kwargs = dict(doc)
        if "down_shards" in kwargs:
            kwargs["down_shards"] = tuple(kwargs["down_shards"])
        return cls(**kwargs)

    def describe(self) -> str:
        """Short human summary of the active injectors."""
        parts = []
        if self.store_error_prob > 0:
            parts.append(f"store-error p={self.store_error_prob:g}")
        if self.store_slow_prob > 0:
            parts.append(f"store-slow p={self.store_slow_prob:g}"
                         f"@{self.store_slow_ms:g}ms")
        if self.worker_crash_prob > 0:
            parts.append(f"worker-crash p={self.worker_crash_prob:g}")
        if self.worker_hang_prob > 0:
            parts.append(f"worker-hang p={self.worker_hang_prob:g}"
                         f"@{self.worker_hang_ms:g}ms")
        if self.http_error_prob > 0:
            parts.append(f"http-5xx p={self.http_error_prob:g}")
        if self.http_reset_prob > 0:
            parts.append(f"http-reset p={self.http_reset_prob:g}")
        if self.http_slow_prob > 0:
            parts.append(f"http-slow p={self.http_slow_prob:g}"
                         f"@{self.http_slow_ms:g}ms")
        if self.down_shards:
            parts.append("down-shards "
                         + ",".join(str(s) for s in self.down_shards))
        if not parts:
            return "no chaos"
        return (", ".join(parts)
                + f" (retries {self.retries}, breaker "
                  f"{self.breaker_threshold}@{self.breaker_reset_s:g}s)")


def normalize_chaos(chaos) -> "ChaosPlan | None":
    """Coerce a chaos argument (None, mapping or plan) to an active
    :class:`ChaosPlan`, collapsing empty plans to None so the zero-chaos
    serving path stays byte-for-byte identical to a service without a
    chaos layer."""
    if chaos is None:
        return None
    plan = chaos if isinstance(chaos, ChaosPlan) \
        else ChaosPlan.from_dict(dict(chaos))
    return None if plan.is_empty() else plan


def gauntlet_plan(intensity: float, seed: int = 0,
                  down_shards: Tuple[int, ...] = ()) -> ChaosPlan:
    """The canonical one-knob plan the ``repro chaos`` gauntlet runs:
    every fault class scales with ``intensity`` while the latencies stay
    small enough that retries resolve in milliseconds, not minutes."""
    if intensity < 0:
        raise ConfigError("chaos intensity must be >= 0")
    return ChaosPlan(
        seed=seed,
        store_error_prob=min(0.9, round(intensity, 6)),
        store_slow_prob=min(0.5, round(intensity / 2, 6)),
        store_slow_ms=2.0 if intensity > 0 else 0.0,
        worker_crash_prob=min(0.5, round(intensity / 2, 6)),
        http_error_prob=min(0.5, round(intensity / 2, 6)),
        http_reset_prob=min(0.25, round(intensity / 4, 6)),
        http_slow_prob=min(0.5, round(intensity / 2, 6)),
        http_slow_ms=5.0 if intensity > 0 else 0.0,
        down_shards=tuple(down_shards),
    )
