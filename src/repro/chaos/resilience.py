"""The machinery that survives a :class:`~repro.chaos.plan.ChaosPlan`.

Three small, composable pieces, each injectable with fake clocks and
sleeps so every behaviour is unit-testable without wall time:

* :class:`BackoffPolicy` — deterministic bounded exponential backoff with
  seeded jitter.  Same policy + same RNG stream = same delay schedule.
* :func:`retry_call` — run a callable under a policy, retrying only the
  declared-retryable exceptions (store retries are safe *because* every
  retried store operation is idempotent by design: billing has the
  ``ON CONFLICT DO NOTHING`` ledger insert, job creation dedups on the
  idempotency key, state updates are absolute).
* :class:`CircuitBreaker` — CLOSED → OPEN after N consecutive failures,
  OPEN fails fast (:class:`CircuitOpenError`) until the reset window
  passes, then HALF_OPEN admits one probe which closes or re-opens it.

:class:`ResilientStore` composes all three around any
:class:`~repro.serve.store.UsageStore`-shaped object.  It is only ever
installed when a non-empty chaos plan asks for it — the empty-plan
serving path never constructs one, which is what keeps the zero-chaos
hot path free of even a single extra attribute lookup.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from ..errors import ReproError
from .plan import ChaosPlan

#: Breaker states, in escalation order.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitOpenError(ReproError):
    """Fail-fast refusal: the breaker is open and the reset window has
    not passed — the caller should back off instead of hammering a store
    that is already drowning."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff with optional seeded jitter."""

    retries: int = 5
    base_ms: float = 5.0
    multiplier: float = 2.0
    max_ms: float = 200.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_ms < 0 or self.max_ms < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")

    @classmethod
    def from_plan(cls, plan: ChaosPlan) -> "BackoffPolicy":
        return cls(retries=plan.retries, base_ms=plan.backoff_base_ms,
                   multiplier=plan.backoff_multiplier,
                   max_ms=plan.backoff_max_ms,
                   jitter_fraction=plan.jitter_fraction)

    def delay_ms(self, attempt: int,
                 rng: Optional[random.Random] = None) -> float:
        """Delay before retry number ``attempt`` (0-based), in ms.

        Jitter is symmetric (±jitter_fraction) and drawn from the caller's
        stream, so a seeded stream reproduces the whole delay schedule.
        """
        raw = min(self.max_ms, self.base_ms * self.multiplier ** attempt)
        if rng is not None and self.jitter_fraction > 0:
            raw *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return raw


#: Exceptions :func:`retry_call` treats as transient by default: the
#: injected (and real) SQLite contention errors.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = \
    (sqlite3.OperationalError,)


def retry_call(fn: Callable[[], Any],
               policy: BackoffPolicy,
               retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
               rng: Optional[random.Random] = None,
               sleep: Callable[[float], None] = time.sleep,
               on_retry: Optional[Callable[[int, BaseException],
                                           None]] = None) -> Any:
    """Call ``fn`` under the policy's bounded retry budget.

    Only ``retry_on`` exceptions are retried; everything else — including
    domain errors like ``KeyError`` on an unknown job — propagates on the
    first throw.  After the budget is exhausted the last transient error
    propagates unchanged, so callers see the real failure, not a wrapper.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay_ms(attempt, rng) / 1000.0)
            attempt += 1


class CircuitBreaker:
    """CLOSED/OPEN/HALF_OPEN breaker with an injectable clock.

    Thread-safe; one breaker guards one downstream dependency.  ``allow``
    raises :class:`CircuitOpenError` while open, admits exactly one probe
    per reset window once it elapses (half-open), and the probe's
    ``success``/``failure`` closes or re-opens the circuit.
    """

    def __init__(self, threshold: int = 8, reset_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_s < 0:
            raise ValueError("reset_s must be >= 0")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.trips = 0

    @classmethod
    def from_plan(cls, plan: ChaosPlan,
                  clock: Callable[[], float] = time.monotonic
                  ) -> "CircuitBreaker":
        return cls(threshold=plan.breaker_threshold,
                   reset_s=plan.breaker_reset_s, clock=clock)

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return BREAKER_CLOSED
            if self._clock() - self._opened_at >= self.reset_s:
                return BREAKER_HALF_OPEN
            return BREAKER_OPEN

    @property
    def is_open(self) -> bool:
        return self.state != BREAKER_CLOSED

    def allow(self) -> None:
        """Admit the call or raise :class:`CircuitOpenError`."""
        with self._lock:
            if self._opened_at is None:
                return
            if self._clock() - self._opened_at < self.reset_s:
                raise CircuitOpenError(
                    f"circuit open after {self._failures} consecutive "
                    f"failures; retry after {self.reset_s:g}s")
            if self._probing:
                raise CircuitOpenError("circuit half-open; a probe is "
                                       "already in flight")
            self._probing = True  # this caller is the half-open probe

    def success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.threshold:
                if self._opened_at is None:
                    self.trips += 1
                self._opened_at = self._clock()

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` through the breaker (admission + outcome record)."""
        self.allow()
        try:
            result = fn()
        except BaseException:
            self.failure()
            raise
        self.success()
        return result


#: Store methods the resilient wrapper retries.  Every one is idempotent
#: by the store's own design (see the module docstring), which is the
#: precondition for blind retry being correct.
RESILIENT_METHODS = frozenset({
    "register_tenant", "tenant", "tenants", "set_quota",
    "create_job", "set_job_state", "job", "jobs_for_tenant",
    "job_state_counts", "bill_job", "mark_deadline_exceeded",
    "ledger_for_tenant", "ledger_entry_for_job", "ledger_total_ns",
    "ledger_count", "billed_ns_by_tenant_trust", "find_result_by_spec",
})


class ResilientStore:
    """Retry + circuit-breaker front over a ``UsageStore``-shaped object.

    Transparent to callers: every attribute resolves on the wrapped
    store, and the methods in :data:`RESILIENT_METHODS` are re-issued
    under the backoff policy when they raise a transient SQLite error,
    behind one shared circuit breaker.  Counters (``retries_total``,
    ``breaker``) feed ``/metrics`` and the gauntlet's absorbed-fault
    accounting.
    """

    def __init__(self, store: Any,
                 policy: Optional[BackoffPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self._store = store
        self.policy = policy or BackoffPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._rng = rng or random.Random("chaos:resilient-store")
        self._sleep = sleep
        self._count_lock = threading.Lock()
        self.retries_total = 0

    @classmethod
    def from_plan(cls, store: Any, plan: ChaosPlan) -> "ResilientStore":
        return cls(store, policy=BackoffPolicy.from_plan(plan),
                   breaker=CircuitBreaker.from_plan(plan),
                   rng=random.Random(f"chaos:{plan.seed}:backoff"))

    def _on_retry(self, attempt: int, exc: BaseException) -> None:
        with self._count_lock:
            self.retries_total += 1

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._store, name)
        if name not in RESILIENT_METHODS or not callable(attr):
            return attr

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            return self.breaker.call(
                lambda: retry_call(lambda: attr(*args, **kwargs),
                                   self.policy, rng=self._rng,
                                   sleep=self._sleep,
                                   on_retry=self._on_retry))
        return wrapped
