"""Seeded fault injection for the serving plane.

A :class:`ChaosInjector` turns a non-empty
:class:`~repro.chaos.plan.ChaosPlan` into concrete fault decisions, one
dedicated ``random.Random`` stream per site (``chaos:<seed>:store``,
``chaos:<seed>:worker``, ``chaos:<seed>:http``) so the decision sequence
at each site is reproducible regardless of what the other sites draw.
Everything injected is counted (``injected`` per site) — the gauntlet's
"every fault absorbed or declared" invariant needs the denominator.

:class:`ChaosStoreProxy` sits *under* the
:class:`~repro.chaos.resilience.ResilientStore`: it fires the injector's
store fault before delegating, so an injected ``OperationalError`` is
indistinguishable from real SQLite contention — and, crucially, fires
*before* any side effect, so a retried operation never half-executed.
Real mid-operation failures are covered separately by the store's own
crash hooks; the proxy models the contention/latency class.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from .plan import ChaosPlan


class WorkerCrash(RuntimeError):
    """An injected worker crash: the job attempt dies before billing."""


class ChaosInjector:
    """Draw seeded fault decisions for one serving process."""

    def __init__(self, plan: ChaosPlan, scope: str = "chaos",
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self.scope = scope
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {}
        #: Injected-fault counters, keyed by ``<site>.<kind>``.
        self.injected: Dict[str, int] = {}

    def _hit(self, site: str, kind: str, prob: float) -> bool:
        """One seeded draw on the site's stream; counts on a hit."""
        if prob <= 0:
            return False
        with self._lock:
            rng = self._rngs.get(site)
            if rng is None:
                rng = random.Random(f"{self.scope}:{self.plan.seed}:{site}")
                self._rngs[site] = rng
            hit = rng.random() < prob
            if hit:
                key = f"{site}.{kind}"
                self.injected[key] = self.injected.get(key, 0) + 1
            return hit

    def injected_total(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def injected_by_site(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.injected)

    # -- sites -------------------------------------------------------------

    def store_fault(self, op: str) -> None:
        """Fire before a store operation: may raise the classic
        contention error or stall the commit path."""
        if self._hit("store", "error", self.plan.store_error_prob):
            raise sqlite3.OperationalError(
                f"database is locked (chaos: {op})")
        if self._hit("store", "slow", self.plan.store_slow_prob):
            self._sleep(self.plan.store_slow_ms / 1000.0)

    def worker_fault(self) -> None:
        """Fire at the top of a job attempt on the serve executor."""
        if self._hit("worker", "crash", self.plan.worker_crash_prob):
            raise WorkerCrash("chaos: worker crashed before billing")
        if self._hit("worker", "hang", self.plan.worker_hang_prob):
            self._sleep(self.plan.worker_hang_ms / 1000.0)

    def http_fault(self) -> Optional[Tuple[str, float]]:
        """Fire per HTTP request.  Returns None (no fault) or
        ``("error"|"reset", 0)`` / ``("slow", delay_ms)`` for the handler
        to act on — the injector never touches sockets itself."""
        if self._hit("http", "error", self.plan.http_error_prob):
            return ("error", 0.0)
        if self._hit("http", "reset", self.plan.http_reset_prob):
            return ("reset", 0.0)
        if self._hit("http", "slow", self.plan.http_slow_prob):
            return ("slow", self.plan.http_slow_ms)
        return None


#: Store methods the proxy injects faults in front of — the read and
#: write paths a real contended SQLite file would throw on.  Reservation
#: bookkeeping (purely in-memory) and diagnostics are exempt.
FAULTED_STORE_METHODS = frozenset({
    "register_tenant", "tenant", "tenants", "set_quota",
    "create_job", "set_job_state", "job", "jobs_for_tenant",
    "job_state_counts", "bill_job", "mark_deadline_exceeded",
    "ledger_for_tenant", "ledger_entry_for_job", "ledger_total_ns",
    "ledger_count", "billed_ns_by_tenant_trust", "find_result_by_spec",
})


class ChaosStoreProxy:
    """Delegating proxy that fires store faults before each operation."""

    def __init__(self, store: Any, injector: ChaosInjector) -> None:
        self._store = store
        self.chaos_injector = injector

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._store, name)
        if name not in FAULTED_STORE_METHODS or not callable(attr):
            return attr
        injector = self.chaos_injector

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            injector.store_fault(name)
            return attr(*args, **kwargs)
        return wrapped
